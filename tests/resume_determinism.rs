//! Crash-safe resume determinism: a campaign killed at an arbitrary case
//! index and resumed from its checkpoint file must converge to a report
//! **byte-identical** (under `render_report`) to an uninterrupted run —
//! serially and for any partitioned worker count — and the stateful
//! oracles must reach the same verdicts whether the backend offers a
//! snapshot facility or forces the SQL-text setup-replay fallback.

use sqlancerpp::core::{
    load_checkpoint, render_report, Campaign, CampaignConfig, CampaignReport, DbmsConnection,
    DialectQuirks, OracleKind, QueryResult, StateCheckpoint, StatementOutcome, StorageMetrics,
    SupervisorConfig,
};
use sqlancerpp::sim::{
    preset_by_name, run_campaign_partitioned, run_campaign_partitioned_pooled,
    run_campaign_partitioned_supervised, shard_checkpoint_path, DialectPreset, ExecutionPath,
    FaultyConfig,
};
use std::path::PathBuf;

fn storm_preset(dialect: &str) -> DialectPreset {
    preset_by_name(dialect)
        .unwrap()
        .with_infra_faults(FaultyConfig::storm())
}

fn resume_config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(8)
        .queries_per_database(25)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(false)
        .build()
}

/// A unique scratch path for one test's checkpoint file.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sqlancerpp_resume_{}_{name}", std::process::id()))
}

fn cleanup(base: &PathBuf, shards: usize) {
    let _ = std::fs::remove_file(base);
    for index in 0..shards {
        let _ = std::fs::remove_file(shard_checkpoint_path(base, index));
    }
}

#[test]
fn killed_serial_campaign_resumes_to_byte_identical_report() {
    let config = resume_config(0xC0FFEE);
    let path = scratch("serial");
    cleanup(&path, 0);

    // The uninterrupted reference: supervised, but never checkpointed.
    let mut conn = storm_preset("sqlite").instantiate_for_path(ExecutionPath::Ast);
    let reference =
        Campaign::new(config.clone()).run_supervised(&mut conn, &SupervisorConfig::default());
    let reference_text = render_report(&reference);
    assert!(
        reference.robustness.incidents > 0,
        "the storm should land at least one fault in this campaign"
    );

    for kill_at in [7u64, 23u64] {
        let checkpointing = SupervisorConfig {
            checkpoint_every: 5,
            checkpoint_path: Some(path.clone()),
            ..SupervisorConfig::default()
        };
        // Run until the simulated kill. Like a real crash, everything since
        // the last cadence checkpoint is lost with the process.
        let killed = SupervisorConfig {
            stop_after_cases: Some(kill_at),
            ..checkpointing.clone()
        };
        let mut conn = storm_preset("sqlite").instantiate_for_path(ExecutionPath::Ast);
        let partial = Campaign::new(config.clone()).run_supervised(&mut conn, &killed);
        assert!(partial.metrics.test_cases <= kill_at + config.databases as u64);

        // A new process: fresh campaign, fresh connection, checkpoint file.
        let checkpoint = load_checkpoint(&path).expect("cadence checkpoint was written");
        let mut conn = storm_preset("sqlite").instantiate_for_path(ExecutionPath::Ast);
        let resumed = Campaign::new(config.clone()).resume(&mut conn, &checkpointing, checkpoint);
        assert_eq!(
            render_report(&resumed),
            reference_text,
            "kill at case {kill_at}: resumed report diverged from the uninterrupted run"
        );
        cleanup(&path, 0);
    }
}

#[test]
fn killed_partitioned_campaign_resumes_identically_for_any_worker_count() {
    let mut config = resume_config(0xFEED);
    config.databases = 3;
    let preset = storm_preset("mariadb");
    let reference = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, 1);
    let reference_text = render_report(&reference.report);

    for threads in [1usize, 3usize] {
        let path = scratch(&format!("partitioned_{threads}"));
        cleanup(&path, config.databases);
        let checkpointing = SupervisorConfig {
            checkpoint_every: 4,
            checkpoint_path: Some(path.clone()),
            ..SupervisorConfig::default()
        };
        let killed = SupervisorConfig {
            stop_after_cases: Some(9),
            ..checkpointing.clone()
        };
        let partial = run_campaign_partitioned_supervised(
            &preset,
            &config,
            ExecutionPath::Ast,
            threads,
            &killed,
        );
        assert!(partial.report.metrics.test_cases < reference.report.metrics.test_cases);

        // Re-invoking the same partitioned campaign finds the per-shard
        // checkpoint files and resumes each shard to completion.
        let resumed = run_campaign_partitioned_supervised(
            &preset,
            &config,
            ExecutionPath::Ast,
            threads,
            &checkpointing,
        );
        assert_eq!(
            render_report(&resumed.report),
            reference_text,
            "{threads}-thread partitioned resume diverged from the uninterrupted run"
        );
        cleanup(&path, config.databases);
    }
}

/// Forwards everything but denies the snapshot facility, forcing the
/// stateful oracles onto the SQL-text setup-replay fallback.
struct NoSnapshot(Box<dyn DbmsConnection>);

impl DbmsConnection for NoSnapshot {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn execute(&mut self, sql: &str) -> StatementOutcome {
        self.0.execute(sql)
    }
    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        self.0.query(sql)
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn quirks(&self) -> DialectQuirks {
        self.0.quirks()
    }
    fn execute_ast(&mut self, stmt: &sqlancerpp::ast::Statement) -> StatementOutcome {
        self.0.execute_ast(stmt)
    }
    fn query_ast(&mut self, select: &sqlancerpp::ast::Select) -> Result<QueryResult, String> {
        self.0.query_ast(select)
    }
    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        self.0.open_session()
    }
    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        self.0.storage_metrics()
    }
    fn begin_case(&mut self, case_seed: u64) {
        self.0.begin_case(case_seed);
    }
    fn virtual_ticks(&self) -> u64 {
        self.0.virtual_ticks()
    }
    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        None
    }
    fn restore(&mut self, _checkpoint: &StateCheckpoint) -> bool {
        false
    }
}

#[test]
fn setup_replay_fallback_reaches_the_same_verdicts_as_snapshot_restore() {
    let config = CampaignConfig::builder()
        .seed(0xAB5E)
        .databases(2)
        .ddl_per_database(8)
        .queries_per_database(20)
        .oracles(vec![OracleKind::Rollback, OracleKind::Isolation])
        .reduce_bugs(false)
        .build();
    let run = |deny_snapshots: bool| -> CampaignReport {
        let preset = preset_by_name("sqlite").unwrap();
        let inner = preset.instantiate_for_path(ExecutionPath::Ast);
        if deny_snapshots {
            let mut conn = NoSnapshot(inner);
            Campaign::new(config.clone()).run(&mut conn)
        } else {
            let mut conn = inner;
            Campaign::new(config.clone()).run(&mut conn)
        }
    };
    let with_snapshots = run(false);
    let without_snapshots = run(true);
    // Verdicts, case counts and bug reports must agree exactly. (The
    // storage counters legitimately differ: the fallback path re-executes
    // the setup SQL where the snapshot path restores a clone, and that
    // extra engine work is precisely what the counters measure.)
    assert_eq!(with_snapshots.reports, without_snapshots.reports);
    assert_eq!(
        with_snapshots.validity_series,
        without_snapshots.validity_series
    );
    assert_eq!(
        with_snapshots.metrics.test_cases,
        without_snapshots.metrics.test_cases
    );
    assert_eq!(
        with_snapshots.metrics.valid_test_cases,
        without_snapshots.metrics.valid_test_cases
    );
    assert_eq!(
        with_snapshots.metrics.detected_bug_cases,
        without_snapshots.metrics.detected_bug_cases
    );
    assert_eq!(
        with_snapshots.metrics.prioritized_bugs,
        without_snapshots.metrics.prioritized_bugs
    );
    assert_eq!(
        with_snapshots.metrics.isolation_schedules,
        without_snapshots.metrics.isolation_schedules
    );
    assert_eq!(
        with_snapshots.metrics.conflict_aborts,
        without_snapshots.metrics.conflict_aborts
    );
    assert!(with_snapshots.metrics.test_cases > 0);
}

#[test]
fn killed_pooled_flaky_campaign_resumes_with_breaker_state() {
    let mut config = resume_config(0xB4EA);
    config.databases = 3;
    let preset = preset_by_name("sqlite")
        .unwrap()
        .with_infra_faults(FaultyConfig::flaky());
    let driver = preset.driver(ExecutionPath::Ast);

    // The uninterrupted reference must actually exercise the breakers:
    // probe crashes and post-respawn flapping trip them and the backoff
    // schedule recovers them.
    let reference =
        run_campaign_partitioned_pooled(&driver, &config, 1, 2, &SupervisorConfig::default());
    let reference_text = render_report(&reference.report);
    assert!(
        reference.report.robustness.breaker_trips > 0,
        "the flaky storm should trip at least one breaker in this campaign"
    );

    for threads in [1usize, 3usize] {
        let path = scratch(&format!("pooled_flaky_{threads}"));
        cleanup(&path, config.databases);
        let checkpointing = SupervisorConfig {
            checkpoint_every: 4,
            checkpoint_path: Some(path.clone()),
            ..SupervisorConfig::default()
        };
        let killed = SupervisorConfig {
            stop_after_cases: Some(9),
            ..checkpointing.clone()
        };
        let partial = run_campaign_partitioned_pooled(&driver, &config, threads, 2, &killed);
        assert!(partial.report.metrics.test_cases < reference.report.metrics.test_cases);

        // The checkpoint files written mid-storm carry the pool's breaker
        // and backoff state, so the resumed pool re-opens mid-backoff
        // instead of forgetting the slot was misbehaving.
        let carried = (0..config.databases)
            .filter_map(|index| load_checkpoint(&shard_checkpoint_path(&path, index)).ok())
            .any(|checkpoint| checkpoint.resilience.is_some());
        assert!(
            carried,
            "at least one shard checkpoint must carry the breaker ledger"
        );

        let resumed = run_campaign_partitioned_pooled(&driver, &config, threads, 2, &checkpointing);
        assert_eq!(
            render_report(&resumed.report),
            reference_text,
            "{threads}-thread pooled flaky resume diverged from the uninterrupted run"
        );
        cleanup(&path, config.databases);
    }
}
