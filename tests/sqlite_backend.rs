//! Tests against the first real wire backend: the system `sqlite3` binary
//! driven over a subprocess pipe.
//!
//! Two properties are pinned here:
//!
//! 1. **Parity** — on dialect-neutral SQL, the text-only path over the
//!    simulated engine and the real sqlite3 subprocess reach the same
//!    verdicts (same accept/reject decisions, same rows).
//! 2. **Crash robustness** — killing the sqlite3 child mid-campaign
//!    produces `BackendCrash` incidents and retries, never a logic-bug
//!    report (the zero-false-positive bar the fault-storm suite holds the
//!    simulated infra faults to).
//!
//! Both tests self-skip with a visible notice when no working `sqlite3`
//! binary is on `PATH`.

use sqlancerpp::core::{
    Campaign, CampaignConfig, Capability, DbmsConnection, Driver, IncidentKind, OracleKind, Pool,
    QueryResult, StatementOutcome, SupervisorConfig,
};
use sqlancerpp::sim::{preset_by_name, ExecutionPath};
use sqlancerpp::sqlite::{SqliteProcConnection, SqliteProcDriver};

fn sqlite_available() -> bool {
    let available = SqliteProcDriver::system().available();
    if !available {
        eprintln!("sqlite_backend tests: SKIPPED (no working sqlite3 binary on PATH)");
    }
    available
}

/// Dialect-neutral statements: plain integer/text tables, literal inserts,
/// and queries whose semantics are fixed by the SQL standard. Both backends
/// must agree on every accept/reject verdict and on every row set.
const NEUTRAL_SETUP: &[&str] = &[
    "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
    "INSERT INTO t0 VALUES (1, 'a')",
    "INSERT INTO t0 VALUES (2, 'b')",
    "INSERT INTO t0 VALUES (NULL, 'a')",
    "INSERT INTO t0 VALUES (-3, NULL)",
    "CREATE TABLE t1 (c0 INTEGER)",
    "INSERT INTO t1 VALUES (1)",
    "INSERT INTO t1 VALUES (2)",
];

const NEUTRAL_QUERIES: &[&str] = &[
    "SELECT c0 FROM t0 WHERE c0 > 0 ORDER BY c0",
    "SELECT c1 FROM t0 WHERE c1 = 'a' ORDER BY c1",
    "SELECT c0 FROM t0 WHERE c0 IS NULL",
    "SELECT COUNT(*) FROM t0",
    "SELECT t0.c0 FROM t0, t1 WHERE t0.c0 = t1.c0 ORDER BY t0.c0",
    "SELECT c0 + 1 FROM t1 ORDER BY c0",
    "SELECT DISTINCT c1 FROM t0 WHERE c1 IS NOT NULL ORDER BY c1",
];

/// Statements both dialects must reject (the error *messages* may differ;
/// the verdict may not).
const NEUTRAL_REJECTS: &[&str] = &[
    "SELECT c0 FROM missing_table",
    "CREATE TABLE t0 (c0 INTEGER)",
    "SELECT FROM WHERE",
];

fn sorted_rows(result: QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = result.rows.iter().map(|row| format!("{row:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn real_sqlite_and_simulated_text_path_agree_on_neutral_statements() {
    if !sqlite_available() {
        return;
    }
    let preset = preset_by_name("sqlite").expect("sqlite preset exists");
    let mut sim = preset.instantiate_for_path(ExecutionPath::Text);
    let mut real: Box<dyn DbmsConnection> = Box::new(
        SqliteProcConnection::spawn("sqlite3").expect("sqlite3 spawns after availability probe"),
    );

    for stmt in NEUTRAL_SETUP {
        let sim_ok = matches!(sim.execute(stmt), StatementOutcome::Success);
        let real_ok = matches!(real.execute(stmt), StatementOutcome::Success);
        assert!(sim_ok, "simulated engine rejected neutral setup: {stmt}");
        assert!(real_ok, "real sqlite3 rejected neutral setup: {stmt}");
    }
    for query in NEUTRAL_QUERIES {
        let sim_rows = sorted_rows(sim.query(query).unwrap_or_else(|err| {
            panic!("simulated engine rejected neutral query {query}: {err}")
        }));
        let real_rows =
            sorted_rows(real.query(query).unwrap_or_else(|err| {
                panic!("real sqlite3 rejected neutral query {query}: {err}")
            }));
        assert_eq!(sim_rows, real_rows, "row divergence on: {query}");
    }
    for stmt in NEUTRAL_REJECTS {
        assert!(
            matches!(sim.execute(stmt), StatementOutcome::Failure(_)),
            "simulated engine accepted a statement sqlite rejects: {stmt}"
        );
        assert!(
            matches!(real.execute(stmt), StatementOutcome::Failure(_)),
            "real sqlite3 accepted: {stmt}"
        );
    }
}

/// Wraps the subprocess connection and kills the `sqlite3` child on a fixed
/// in-case statement cadence, simulating a backend that segfaults under
/// load. Kills only fire inside test cases (never during setup replay), the
/// same discipline the simulated fault injector follows.
struct KillerConnection {
    inner: SqliteProcConnection,
    in_case: bool,
    statements: u64,
    period: u64,
}

impl KillerConnection {
    fn maybe_kill(&mut self) {
        if !self.in_case {
            return;
        }
        self.statements += 1;
        if self.statements.is_multiple_of(self.period) {
            self.inner.kill_backend();
        }
    }
}

impl DbmsConnection for KillerConnection {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        self.maybe_kill();
        self.inner.execute(sql)
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        self.maybe_kill();
        self.inner.query(sql)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn begin_case(&mut self, case_seed: u64) {
        self.in_case = case_seed != 0;
        self.inner.begin_case(case_seed);
    }
}

struct KillerDriver {
    period: u64,
}

impl Driver for KillerDriver {
    fn name(&self) -> &str {
        "sqlite-proc-killer"
    }

    fn capability(&self) -> Capability {
        Capability::text_only()
    }

    fn connect(&self) -> Result<Box<dyn DbmsConnection>, String> {
        Ok(Box::new(KillerConnection {
            inner: SqliteProcConnection::spawn("sqlite3")?,
            in_case: false,
            statements: 0,
            period: self.period,
        }))
    }
}

#[test]
fn killing_the_sqlite_child_yields_backend_crashes_and_zero_logic_bugs() {
    if !sqlite_available() {
        return;
    }
    let mut config = CampaignConfig::builder()
        .seed(0x1CE9)
        .databases(2)
        .ddl_per_database(8)
        .queries_per_database(40)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(false)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;

    let mut pool = Pool::new(std::sync::Arc::new(KillerDriver { period: 37 }), 2)
        .expect("killer pool connects");
    let mut campaign = Campaign::new(config);
    let report = campaign.run_pooled(&mut pool, &SupervisorConfig::default());

    assert!(
        report.reports.is_empty(),
        "a killed subprocess must never surface as a logic bug: {:?}",
        report
            .reports
            .iter()
            .map(|r| r.description.as_str())
            .collect::<Vec<_>>()
    );
    assert!(
        report
            .incidents
            .iter()
            .any(|incident| incident.kind == IncidentKind::BackendCrash),
        "expected BackendCrash incidents, got {:?}",
        report.incidents
    );
    assert!(
        report.robustness.retries > 0,
        "crashed cases must be retried"
    );
    assert!(!report.degraded, "sporadic crashes must not quarantine");
    assert!(report.metrics.valid_test_cases > 0);
}
