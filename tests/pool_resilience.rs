//! Self-healing connection layer: a driver that lies about its
//! capabilities is probed at connect time and downgraded before the
//! generator learns anything, and a wire fault inside the pool's
//! sync-log replay surfaces as a supervision incident plus a retry —
//! never as a half-built slot leaking into verdicts or checkpoints.

use sqlancerpp::core::supervisor::IncidentKind;
use sqlancerpp::core::{
    load_checkpoint, render_report, silence_infra_panics, BackendEvent, Campaign, CampaignConfig,
    Capability, DbmsConnection, DialectQuirks, Driver, EngineCoverage, OracleKind, Pool,
    QueryResult, ResilienceEvent, StateCheckpoint, StatementOutcome, StorageMetrics,
    SupervisorConfig, INFRA_MARKER,
};
use sqlancerpp::sim::{
    preset_by_name, run_campaign_partitioned_pooled, ExecutionPath, FaultyConfig,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn resilience_config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .seed(seed)
        .databases(3)
        .ddl_per_database(8)
        .queries_per_database(25)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(false)
        .build()
}

/// A backend whose static capability claims transaction support but whose
/// runtime rejects every transaction-control statement — the capability
/// lie, with no other fault armed.
fn lying_only() -> FaultyConfig {
    FaultyConfig {
        lie_transactions: true,
        ..FaultyConfig::default()
    }
}

#[test]
fn lying_driver_is_probed_downgraded_and_fuzzed_clean() {
    silence_infra_panics();
    let preset = preset_by_name("sqlite")
        .expect("sqlite preset exists")
        .with_infra_faults(lying_only());
    let driver = preset.driver(ExecutionPath::Ast);

    // The static claim says transactions; the connect-time probe says no.
    assert!(
        driver.capability().transactions,
        "the lie needs a static transaction claim to contradict"
    );
    let pool = Pool::new(Arc::clone(&driver), 2).expect("a lying backend still connects");
    assert!(
        !pool.capability().transactions,
        "the probe must downgrade the lied-about transaction support"
    );
    // Savepoints have no portable probe without transactions, so the
    // static claim stands — they are unreachable anyway once transaction
    // statements are suppressed.
    assert_eq!(pool.capability().savepoints, driver.capability().savepoints);
    assert!(
        pool.drift_details()
            .iter()
            .any(|detail| detail.starts_with("transactions:")),
        "the static-vs-probed disagreement must be recorded, got {:?}",
        pool.drift_details()
    );
    drop(pool);

    // The campaign runs to completion on the downgraded capability: the
    // rollback oracle self-suppresses instead of spraying rejected BEGINs.
    let config = resilience_config(0x11E5);
    let supervision = SupervisorConfig::default();
    let run = run_campaign_partitioned_pooled(&driver, &config, 1, 2, &supervision).report;
    assert!(run.metrics.test_cases > 0, "the campaign must actually run");
    assert!(
        !run.degraded && run.robustness.quarantines == 0 && run.robustness.infra_failures == 0,
        "a probed-and-downgraded campaign must not degrade (quarantines {}, infra_failures {})",
        run.robustness.quarantines,
        run.robustness.infra_failures
    );
    for bug in &run.reports {
        assert!(
            !bug.description.contains(INFRA_MARKER)
                && !bug.description.contains("infra_capability_lie"),
            "the capability lie surfaced as a logic bug: {}",
            bug.description
        );
    }
    // The drift is re-announced once per database boundary, so resumed
    // and partitioned runs ledger it identically.
    assert_eq!(
        run.robustness.capability_drifts, config.databases as u64,
        "expected one capability-drift incident per database"
    );
    assert!(run
        .incidents
        .iter()
        .any(|incident| incident.kind == IncidentKind::CapabilityDrift));

    // Pool size and worker count stay non-observables while drifting.
    let baseline = render_report(&run);
    for (threads, pool_size) in [(1usize, 1usize), (2, 4)] {
        let again =
            run_campaign_partitioned_pooled(&driver, &config, threads, pool_size, &supervision);
        assert_eq!(
            baseline,
            render_report(&again.report),
            "lying-driver report drifted at {threads} workers, pool size {pool_size}"
        );
    }
}

/// Wraps a driver and injects exactly one `infra:`-marked statement
/// failure into the first statement replayed during a pool re-sync of a
/// secondary slot (the `begin_case(0)` → `reset` → `execute` sequence on
/// any connection after the pool's first) — a dropped wire frame inside
/// the sync-log replay itself.
struct DroppedFrameDriver {
    inner: Arc<dyn Driver>,
    armed: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
}

impl DroppedFrameDriver {
    fn new(inner: Arc<dyn Driver>) -> DroppedFrameDriver {
        DroppedFrameDriver {
            inner,
            armed: Arc::new(AtomicBool::new(true)),
            connections: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl Driver for DroppedFrameDriver {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn capability(&self) -> Capability {
        self.inner.capability()
    }
    fn connect(&self) -> Result<Box<dyn DbmsConnection>, String> {
        let index = self.connections.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(DroppedFrameConnection {
            inner: self.inner.connect()?,
            armed: Arc::clone(&self.armed),
            secondary: index > 0,
            safe_mode: true,
            replaying: false,
        }))
    }
}

struct DroppedFrameConnection {
    inner: Box<dyn DbmsConnection>,
    armed: Arc<AtomicBool>,
    secondary: bool,
    safe_mode: bool,
    replaying: bool,
}

impl DbmsConnection for DroppedFrameConnection {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn execute(&mut self, sql: &str) -> StatementOutcome {
        if self.secondary && self.replaying && self.armed.swap(false, Ordering::Relaxed) {
            return StatementOutcome::Failure(format!(
                "{INFRA_MARKER} wire frame dropped inside sync replay (injected)"
            ));
        }
        self.inner.execute(sql)
    }
    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        self.inner.query(sql)
    }
    fn reset(&mut self) {
        // Only a safe-mode reset precedes a sync-log replay; an oracle's
        // in-case rebuild resets under the case's own seed.
        self.replaying = self.safe_mode;
        self.inner.reset();
    }
    fn quirks(&self) -> DialectQuirks {
        self.inner.quirks()
    }
    fn execute_ast(&mut self, stmt: &sqlancerpp::ast::Statement) -> StatementOutcome {
        self.inner.execute_ast(stmt)
    }
    fn query_ast(&mut self, select: &sqlancerpp::ast::Select) -> Result<QueryResult, String> {
        self.inner.query_ast(select)
    }
    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        self.inner.open_session()
    }
    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        self.inner.storage_metrics()
    }
    fn begin_case(&mut self, case_seed: u64) {
        self.safe_mode = case_seed == 0;
        if !self.safe_mode {
            self.replaying = false;
        }
        self.inner.begin_case(case_seed);
    }
    fn virtual_ticks(&self) -> u64 {
        self.inner.virtual_ticks()
    }
    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        self.inner.checkpoint()
    }
    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        self.inner.restore(checkpoint)
    }
    fn drain_backend_events(&mut self) -> Vec<BackendEvent> {
        self.inner.drain_backend_events()
    }
    fn engine_coverage(&self) -> Option<EngineCoverage> {
        self.inner.engine_coverage()
    }
    fn drain_resilience_events(&mut self) -> Vec<ResilienceEvent> {
        self.inner.drain_resilience_events()
    }
    fn note_case_outcome(&mut self, case_seed: u64, infra_failed: bool) {
        self.inner.note_case_outcome(case_seed, infra_failed);
    }
    fn resilience_checkpoint(&self) -> Option<String> {
        self.inner.resilience_checkpoint()
    }
    fn restore_resilience(&mut self, data: &str) -> bool {
        self.inner.restore_resilience(data)
    }
    fn note_database_boundary(&mut self) {
        self.inner.note_database_boundary();
    }
}

#[test]
fn dropped_frame_inside_sync_replay_raises_incident_and_never_leaks_into_verdicts() {
    silence_infra_panics();
    let preset = preset_by_name("sqlite").expect("sqlite preset exists");
    let config = resilience_config(0xD20F);
    let supervision = SupervisorConfig::default();

    // Clean reference: same campaign, same pool size, no wire fault.
    let mut pool = Pool::new(preset.driver(ExecutionPath::Ast), 2).expect("clean pool connects");
    let clean = Campaign::new(config.clone()).run_pooled(&mut pool, &supervision);

    // Faulty run: the first sync-log replay of the secondary slot drops
    // a frame mid-replay.
    let faulty_driver: Arc<dyn Driver> =
        Arc::new(DroppedFrameDriver::new(preset.driver(ExecutionPath::Ast)));
    let mut pool = Pool::new(Arc::clone(&faulty_driver), 2).expect("faulty pool connects");
    let faulty = Campaign::new(config.clone()).run_pooled(&mut pool, &supervision);

    // The dropped frame is an incident plus a retry, and the campaign
    // absorbs it completely.
    assert!(
        faulty.robustness.incidents > clean.robustness.incidents,
        "the mid-replay drop must be ledgered as an incident"
    );
    assert!(
        faulty.robustness.retries > clean.robustness.retries,
        "the interrupted case must be retried"
    );
    assert!(
        !faulty.degraded
            && faulty.robustness.quarantines == 0
            && faulty.robustness.infra_failures == 0,
        "one dropped frame must not degrade the campaign"
    );
    // The interrupted sync never leaks a half-built slot into verdicts:
    // everything the oracles concluded matches the clean run exactly.
    assert_eq!(clean.reports, faulty.reports);
    assert_eq!(clean.validity_series, faulty.validity_series);
    assert_eq!(clean.metrics.test_cases, faulty.metrics.test_cases);
    assert_eq!(
        clean.metrics.valid_test_cases,
        faulty.metrics.valid_test_cases
    );
    assert_eq!(
        clean.metrics.detected_bug_cases,
        faulty.metrics.detected_bug_cases
    );

    // Checkpoints written around the incident never contain half-built
    // slot state: kill after the fault, resume on a clean driver, and the
    // final report is byte-identical to the uninterrupted faulty run.
    let path =
        std::env::temp_dir().join(format!("sqlancerpp_pool_resilience_{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let checkpointing = SupervisorConfig {
        checkpoint_every: 5,
        checkpoint_path: Some(path.clone()),
        ..SupervisorConfig::default()
    };
    let killed = SupervisorConfig {
        stop_after_cases: Some(20),
        ..checkpointing.clone()
    };
    let killed_driver: Arc<dyn Driver> =
        Arc::new(DroppedFrameDriver::new(preset.driver(ExecutionPath::Ast)));
    let mut pool = Pool::new(killed_driver, 2).expect("pool connects");
    let _ = Campaign::new(config.clone()).run_pooled(&mut pool, &killed);
    let checkpoint = load_checkpoint(&path).expect("cadence checkpoint was written");
    assert!(
        checkpoint.resilience.is_some(),
        "the checkpoint must carry the pool's breaker/backoff state"
    );
    let mut pool = Pool::new(preset.driver(ExecutionPath::Ast), 2).expect("pool connects");
    let resumed =
        Campaign::new(config.clone()).resume_pooled(&mut pool, &checkpointing, checkpoint);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        render_report(&resumed),
        render_report(&faulty),
        "resume after the mid-replay drop diverged from the uninterrupted run"
    );
}
