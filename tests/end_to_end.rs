//! Workspace-level integration tests: the full SQLancer++ pipeline running
//! against the simulated DBMS fleet.

use sqlancerpp::core::{
    check_norec, check_tlp, replay_validity, Campaign, CampaignConfig, DbmsConnection, FeatureKind,
    GeneratorConfig, OracleKind,
};
use sqlancerpp::sim::{fleet, preset_by_name};

fn quick_config(seed: u64, queries: usize) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(1)
        .ddl_per_database(12)
        .queries_per_database(queries)
        .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

#[test]
fn campaign_runs_against_every_fleet_dialect() {
    for preset in fleet() {
        let mut dbms = preset.instantiate();
        let mut campaign = Campaign::new(quick_config(1, 30));
        let report = campaign.run(&mut dbms);
        assert!(
            report.metrics.ddl_statements > 0 && report.metrics.test_cases > 0,
            "campaign did nothing on {}",
            preset.profile.name
        );
        assert!(
            report.metrics.ddl_successes > 0,
            "no DDL succeeded on {}",
            preset.profile.name
        );
    }
}

#[test]
fn oracles_find_no_bugs_on_a_fault_free_dialect() {
    // A permissive dialect with no injected faults must never trigger the
    // oracles, whatever the generator produces (a soundness property of the
    // whole pipeline: engine, oracles and generator together).
    let profile = sqlancerpp::sim::DialectProfile::permissive(
        "faultfree",
        sqlancerpp::engine::TypingMode::Dynamic,
    );
    let mut dbms = sqlancerpp::sim::SimulatedDbms::new(profile, vec![]);
    let mut campaign = Campaign::new(quick_config(17, 200));
    let report = campaign.run(&mut dbms);
    assert_eq!(
        report.metrics.detected_bug_cases, 0,
        "false positives on a fault-free DBMS: {:#?}",
        report.reports
    );
    assert!(report.metrics.validity_rate() > 0.5);
}

#[test]
fn buggy_dialects_yield_prioritized_and_reduced_bug_reports() {
    // Across a few buggy dialects and seeds, the pipeline should find at
    // least one bug and every prioritized report should come with setup and
    // queries.
    let mut found = 0;
    for (seed, name) in [(2u64, "dolt"), (3, "umbra"), (5, "monetdb")] {
        let preset = preset_by_name(name).unwrap();
        let mut dbms = preset.instantiate();
        let mut campaign = Campaign::new(quick_config(seed, 250));
        let report = campaign.run(&mut dbms);
        found += report.metrics.detected_bug_cases;
        for bug in &report.reports {
            assert!(!bug.queries.is_empty());
            assert!(!bug.features.is_empty());
        }
        assert!(report.metrics.prioritized_bugs <= report.metrics.detected_bug_cases);
    }
    assert!(found > 0, "no bugs found across three buggy dialects");
}

#[test]
fn ground_truth_resolution_matches_injected_bugs() {
    let preset = preset_by_name("umbra").unwrap();
    let mut dbms = preset.instantiate();
    let mut campaign = Campaign::new(quick_config(8, 300));
    let report = campaign.run(&mut dbms);
    let injected: Vec<&str> = dbms.injected_bugs().iter().map(|b| b.id).collect();
    for case in &report.prioritized_cases {
        for cause in dbms.ground_truth_bugs(case) {
            assert!(
                injected.contains(&cause),
                "resolved cause {cause} is not an injected bug of umbra"
            );
        }
    }
}

#[test]
fn listing_2_replace_bug_scenario_round_trips_through_the_stack() {
    // The paper's Listing 2 script parses, executes on the SQLite-like
    // dialect, and the oracles agree with the engine's reference behaviour
    // when the REPLACE fault is absent.
    let profile = sqlancerpp::sim::DialectProfile::permissive(
        "sqlite-sound",
        sqlancerpp::engine::TypingMode::Dynamic,
    );
    let mut dbms = sqlancerpp::sim::SimulatedDbms::new(profile, vec![]);
    assert!(dbms
        .execute("CREATE TABLE t0(c0 TEXT, PRIMARY KEY (c0))")
        .is_success());
    assert!(dbms.execute("INSERT INTO t0 (c0) VALUES (1)").is_success());
    let with_pred = dbms
        .query("SELECT * FROM t0 WHERE t0.c0 = REPLACE(1, ' ', 0)")
        .unwrap();
    let negated = dbms
        .query("SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE(1, ' ', 0)")
        .unwrap();
    assert_eq!(with_pred.row_count() + negated.row_count(), 1);
}

#[test]
fn replaying_cases_across_dialects_reports_partial_validity() {
    let source = preset_by_name("dolt").unwrap();
    let mut dbms = source.instantiate();
    let mut campaign = Campaign::new(quick_config(21, 250));
    let report = campaign.run(&mut dbms);
    if report.prioritized_cases.is_empty() {
        // Nothing to replay with this seed; the dedicated experiment binary
        // uses larger budgets.
        return;
    }
    let mut target = preset_by_name("cratedb").unwrap().instantiate();
    for case in &report.prioritized_cases {
        let validity = replay_validity(&mut target, case);
        assert!((0.0..=1.0).contains(&validity));
    }
}

#[test]
fn adaptive_generator_learns_profile_that_transfers_across_runs() {
    // Learn a profile on one campaign, persist it, reload it, and verify the
    // learned counts survive the round trip (Figure 5's "persisted in a file
    // and loaded in future executions").
    let preset = preset_by_name("cratedb").unwrap();
    let mut dbms = preset.instantiate();
    let mut campaign = Campaign::new(quick_config(4, 200));
    let _ = campaign.run(&mut dbms);
    let text = sqlancerpp::core::profile_to_string(&campaign.generator.stats);
    let restored = sqlancerpp::core::profile_from_string(&text).unwrap();
    let (attempts, _) = restored.query_totals();
    assert!(attempts > 0);
}

#[test]
fn oracle_checks_are_deterministic_for_a_fixed_state() {
    let preset = preset_by_name("sqlite").unwrap();
    let mut dbms = preset.instantiate();
    dbms.execute("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)");
    dbms.execute("INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (NULL, 'b')");
    let mut generator = sqlancerpp::core::AdaptiveGenerator::new(10, GeneratorConfig::default());
    generator.apply_success(
        &sqlancerpp::parser::parse_statement("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)").unwrap(),
    );
    for _ in 0..50 {
        let Some(query) = generator.generate_query() else {
            break;
        };
        let a = check_tlp(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        );
        let b = check_tlp(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        );
        assert_eq!(a, b);
        let c = check_norec(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        );
        let d = check_norec(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        );
        assert_eq!(c, d);
        generator.record_outcome(&query.features, FeatureKind::Query, a.is_valid());
    }
}
