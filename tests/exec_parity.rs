//! Execution-path parity: the AST fast path must be observationally
//! identical to the legacy text path on the entire simulated fleet, and the
//! parallel fleet runner must be byte-identical to the serial one.
//!
//! The text path renders every statement to SQL and re-parses it inside the
//! simulated DBMS (what a real wire-protocol backend requires); the AST
//! fast path hands the typed statement straight to the engine. If the two
//! ever disagree — verdicts, metrics, bug reports or learned suppression —
//! the fast path is changing test semantics, not just speed.

use sqlancerpp::core::{
    check_norec, check_tlp, Campaign, CampaignConfig, DbmsConnection, OracleKind,
    TextOnlyConnection,
};
use sqlancerpp::sim::{fleet, run_fleet_parallel, run_fleet_serial, ExecutionPath, SimulatedDbms};

fn parity_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(30)
        .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
        .reduce_bugs(true)
        .max_reduction_checks(16)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

/// Campaign verdicts, metrics and bug reports are identical between the
/// text path and the AST fast path on every fleet preset.
#[test]
fn campaign_outcomes_identical_between_text_and_ast_paths() {
    for preset in fleet() {
        let name = &preset.profile.name;

        let mut ast_campaign = Campaign::new(parity_config(11));
        let ast_report = ast_campaign.run(&mut preset.instantiate());

        let mut text_campaign = Campaign::new(parity_config(11));
        let text_report = text_campaign.run(&mut TextOnlyConnection::new(preset.instantiate()));

        assert_eq!(
            ast_report.metrics, text_report.metrics,
            "metrics diverge on {name}"
        );
        assert_eq!(
            ast_report.reports, text_report.reports,
            "bug reports diverge on {name}"
        );
        assert_eq!(
            ast_report.prioritized_cases, text_report.prioritized_cases,
            "prioritized cases diverge on {name}"
        );
        assert_eq!(
            ast_report.validity_series, text_report.validity_series,
            "validity series diverge on {name}"
        );
        // The adaptive generator must have learned the same profile through
        // both paths (same suppressed features), otherwise later test cases
        // would silently drift.
        ast_campaign.generator.refresh_suppression();
        text_campaign.generator.refresh_suppression();
        assert_eq!(
            ast_campaign.generator.suppressed_query_features(),
            text_campaign.generator.suppressed_query_features(),
            "learned suppression diverges on {name}"
        );
    }
}

/// Single-oracle spot check: TLP and NoREC verdicts agree query by query
/// between the paths, including the Invalid error messages.
#[test]
fn oracle_verdicts_identical_per_query() {
    use sqlancerpp::core::{AdaptiveGenerator, GeneratorConfig};

    for preset in fleet() {
        let mut ast_conn: SimulatedDbms = preset.instantiate();
        let mut text_conn = TextOnlyConnection::new(preset.instantiate());
        let mut generator = AdaptiveGenerator::new(77, GeneratorConfig::default());
        let mut setup: Vec<String> = Vec::new();
        for _ in 0..10 {
            let stmt = generator.generate_ddl_statement();
            let a = ast_conn.execute_ast(&stmt.statement);
            let t = text_conn.execute_ast(&stmt.statement);
            assert_eq!(a, t, "DDL outcome diverges on {}", preset.profile.name);
            if a.is_success() {
                generator.apply_success(&stmt.statement);
                setup.push(stmt.sql.clone());
            }
        }
        for i in 0..25 {
            let Some(query) = generator.generate_query() else {
                break;
            };
            let (ast_outcome, text_outcome) = if i % 2 == 0 {
                (
                    check_tlp(
                        &mut ast_conn,
                        &query.select,
                        &query.predicate,
                        &query.features,
                        &setup,
                    ),
                    check_tlp(
                        &mut text_conn,
                        &query.select,
                        &query.predicate,
                        &query.features,
                        &setup,
                    ),
                )
            } else {
                (
                    check_norec(
                        &mut ast_conn,
                        &query.select,
                        &query.predicate,
                        &query.features,
                        &setup,
                    ),
                    check_norec(
                        &mut text_conn,
                        &query.select,
                        &query.predicate,
                        &query.features,
                        &setup,
                    ),
                )
            };
            assert_eq!(
                ast_outcome, text_outcome,
                "oracle verdict diverges on {} for query {}",
                preset.profile.name, query.select
            );
        }
    }
}

/// The closure-compiled expression evaluator (the default engine
/// configuration, `ExecutionPath::Ast`) is observationally identical to
/// the tree-walking reference evaluator (`ExecutionPath::AstTreeWalk`) on
/// the full 18-dialect fleet: same metrics, same bug reports, same
/// prioritized cases, same validity series. This is the end-to-end arm of
/// the compiled↔tree parity contract (the expression-level arm lives in
/// `tests/compile_parity.rs`).
#[test]
fn campaign_outcomes_identical_between_compiled_and_treewalk_evaluators() {
    let presets = fleet();
    let config = parity_config(31);
    let compiled = run_fleet_serial(&presets, &config, ExecutionPath::Ast);
    let tree = run_fleet_serial(&presets, &config, ExecutionPath::AstTreeWalk);
    assert_eq!(compiled.reports.len(), tree.reports.len());
    for (c, t) in compiled.reports.iter().zip(&tree.reports) {
        assert_eq!(c.dbms_name, t.dbms_name, "dialect order diverges");
        assert_eq!(
            c.metrics, t.metrics,
            "metrics diverge on {} — compiled evaluator changed semantics",
            c.dbms_name
        );
        assert_eq!(
            c.reports, t.reports,
            "bug reports diverge on {}",
            c.dbms_name
        );
        assert_eq!(
            c.prioritized_cases, t.prioritized_cases,
            "prioritized cases diverge on {}",
            c.dbms_name
        );
        assert_eq!(
            c.validity_series, t.validity_series,
            "validity series diverge on {}",
            c.dbms_name
        );
    }
    assert_eq!(compiled.totals, tree.totals);
}

/// The parallel fleet runner produces exactly the serial runner's output on
/// the full 18-dialect fleet: same dialect order, same metrics, same bug
/// reports, same totals.
#[test]
fn parallel_fleet_run_is_byte_identical_to_serial() {
    let presets = fleet();
    let config = parity_config(23);
    let serial = run_fleet_serial(&presets, &config, ExecutionPath::Ast);
    let parallel = run_fleet_parallel(&presets, &config, ExecutionPath::Ast, 8);
    assert_eq!(serial.reports.len(), parallel.reports.len());
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(s.dbms_name, p.dbms_name, "dialect order diverges");
        assert_eq!(s.metrics, p.metrics, "metrics diverge on {}", s.dbms_name);
        assert_eq!(
            s.reports, p.reports,
            "bug reports diverge on {}",
            s.dbms_name
        );
        assert_eq!(
            s.prioritized_cases, p.prioritized_cases,
            "prioritized cases diverge on {}",
            s.dbms_name
        );
        assert_eq!(
            s.validity_series, p.validity_series,
            "validity series diverge on {}",
            s.dbms_name
        );
    }
    assert_eq!(serial.totals, parallel.totals);
}
