//! Two-plane observability contracts.
//!
//! Deterministic plane: the trace summary (statement/verdict counters and
//! virtual-tick latency histograms) is assembled from per-event tick
//! *deltas*, so its rendering must be **byte-identical** for any worker
//! count, any pool size and both execution paths — tracing observes the
//! campaign, it never becomes an observable itself.
//!
//! Flight recorder: a campaign killed at an arbitrary case and resumed
//! from its checkpoint replays the same deterministic event stream, so
//! every bug case's recorded history in the reference run must reappear —
//! event for event — in the killed or resumed run's recorder.

use sqlancerpp::core::{
    load_checkpoint, render_trace_summary, validate_jsonl, Campaign, CampaignConfig,
    CampaignReport, CaseRecord, FlightRecorder, OracleKind, SupervisorConfig, TraceEventKind,
    TraceHandle, Tracer,
};
use sqlancerpp::sim::{
    preset_by_name, run_campaign_partitioned_traced, DialectPreset, ExecutionPath, FaultyConfig,
};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

fn storm_preset(dialect: &str) -> DialectPreset {
    preset_by_name(dialect)
        .unwrap()
        .with_infra_faults(FaultyConfig::storm())
}

fn trace_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(8)
        .queries_per_database(40)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(16)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

/// Runs a supervised serial campaign with a flight-recorder tracer and
/// returns the report plus the (sealed) tracer.
fn run_traced_supervised(
    preset: &DialectPreset,
    config: &CampaignConfig,
    supervision: &SupervisorConfig,
) -> (CampaignReport, Tracer) {
    let tracer = Rc::new(RefCell::new(Tracer::new().with_flight_recorder(16)));
    let handle: TraceHandle = tracer.clone();
    let mut campaign = Campaign::new(config.clone());
    campaign.set_trace(Some(handle));
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    let report = campaign.run_supervised(&mut conn, supervision);
    drop(campaign);
    let tracer = Rc::try_unwrap(tracer)
        .expect("campaign released its trace handle")
        .into_inner();
    (report, tracer)
}

/// Resumes a killed campaign from its checkpoint with a fresh tracer (a
/// new process has no memory of the old one's recorder).
fn resume_traced(
    preset: &DialectPreset,
    config: &CampaignConfig,
    supervision: &SupervisorConfig,
    path: &std::path::Path,
) -> (CampaignReport, Tracer) {
    let checkpoint = load_checkpoint(path).expect("cadence checkpoint was written");
    let tracer = Rc::new(RefCell::new(Tracer::new().with_flight_recorder(16)));
    let handle: TraceHandle = tracer.clone();
    let mut campaign = Campaign::new(config.clone());
    campaign.set_trace(Some(handle));
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    let report = campaign.resume(&mut conn, supervision, checkpoint);
    drop(campaign);
    let tracer = Rc::try_unwrap(tracer)
        .expect("campaign released its trace handle")
        .into_inner();
    (report, tracer)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sqlancerpp_trace_{}_{name}", std::process::id()))
}

#[test]
fn trace_summary_is_byte_identical_for_any_worker_and_pool_count() {
    let config = trace_config(0x7ACE);
    let preset = storm_preset("dolt");
    let mut baselines = Vec::new();
    for path in [ExecutionPath::Ast, ExecutionPath::Text] {
        let driver = preset.driver(path);
        let supervision = SupervisorConfig::default();
        let (_, baseline_summary) =
            run_campaign_partitioned_traced(&driver, &config, 1, 1, &supervision);
        let baseline = render_trace_summary(&baseline_summary);
        assert!(
            baseline.contains("verdicts"),
            "summary should render verdict counters:\n{baseline}"
        );
        for threads in [1usize, 2] {
            for pool_size in [1usize, 2, 4] {
                let (_, summary) = run_campaign_partitioned_traced(
                    &driver,
                    &config,
                    threads,
                    pool_size,
                    &supervision,
                );
                assert_eq!(
                    baseline,
                    render_trace_summary(&summary),
                    "{path:?} trace summary drifted at {threads} threads, pool size {pool_size}"
                );
            }
        }
        baselines.push(baseline);
    }
    // Statement costs are charged at the shared text/AST funnel, so the
    // execution path is not an observable either.
    assert_eq!(
        baselines[0], baselines[1],
        "text and AST paths must produce identical trace summaries"
    );
}

#[test]
fn storm_fault_hitting_an_oracle_rebuild_does_not_break_pool_invariance() {
    // Regression: a garble/drop fault whose trigger landed inside the
    // rollback oracle's in-case setup rebuild used to be silently
    // swallowed, leaving a half-built state checkpointed on one slot. The
    // sync log never saw the corruption, so re-synced slots diverged and
    // reports (and trace summaries) depended on the pool size. This budget
    // and seed reproduced the drift at pool size 2.
    let mut config = trace_config(0x7247CE);
    config.ddl_per_database = 10;
    config.queries_per_database = 120;
    config.max_reduction_checks = 24;
    let preset = storm_preset("dolt");
    let driver = preset.driver(ExecutionPath::Ast);
    let supervision = SupervisorConfig::default();
    let (serial, serial_summary) =
        run_campaign_partitioned_traced(&driver, &config, 1, 1, &supervision);
    let (sharded, sharded_summary) =
        run_campaign_partitioned_traced(&driver, &config, 2, 2, &supervision);
    assert_eq!(
        sqlancerpp::core::render_report(&serial.report),
        sqlancerpp::core::render_report(&sharded.report),
        "campaign reports must not depend on worker or pool counts"
    );
    assert_eq!(
        render_trace_summary(&serial_summary),
        render_trace_summary(&sharded_summary),
        "trace summaries must not depend on worker or pool counts"
    );
}

/// Every pinned (bug/incident) case of the reference recorder, by seed.
fn pinned_by_seed(recorder: &FlightRecorder) -> Vec<&CaseRecord> {
    recorder.pinned().iter().collect()
}

#[test]
fn flight_recorder_replays_identical_bug_histories_across_kill_and_resume() {
    let config = trace_config(0xF117);
    let preset = storm_preset("dolt");
    let path = scratch("kill_resume");
    let _ = std::fs::remove_file(&path);

    let (reference, reference_tracer) =
        run_traced_supervised(&preset, &config, &SupervisorConfig::default());
    let reference_recorder = reference_tracer.recorder().unwrap();
    assert!(
        reference.metrics.detected_bug_cases > 0,
        "this campaign should detect bugs"
    );
    assert!(
        !reference_recorder.pinned().is_empty(),
        "bug cases must be pinned in the flight recorder"
    );

    let checkpointing = SupervisorConfig {
        checkpoint_every: 5,
        checkpoint_path: Some(path.clone()),
        ..SupervisorConfig::default()
    };
    let killed_config = SupervisorConfig {
        stop_after_cases: Some(11),
        ..checkpointing.clone()
    };
    let (_, killed_tracer) = run_traced_supervised(&preset, &config, &killed_config);
    let (resumed, resumed_tracer) = resume_traced(&preset, &config, &checkpointing, &path);
    assert_eq!(
        sqlancerpp::core::render_report(&resumed),
        sqlancerpp::core::render_report(&reference),
        "resume must converge to the reference report"
    );

    let killed_recorder = killed_tracer.recorder().unwrap();
    let resumed_recorder = resumed_tracer.recorder().unwrap();
    for record in pinned_by_seed(reference_recorder) {
        let replayed = killed_recorder
            .pinned_by_seed(record.case_seed)
            .into_iter()
            .chain(resumed_recorder.pinned_by_seed(record.case_seed))
            .any(|candidate| candidate == record);
        assert!(
            replayed,
            "case seed {:#x} ({} at case {}): no identical record in the killed or resumed \
             flight recorder",
            record.case_seed,
            record.outcome(),
            record.case_index
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_detected_bug_has_a_complete_jsonl_history() {
    let mut config = trace_config(0x0B5E);
    config.reduce_bugs = false;
    let preset = storm_preset("dolt");
    let jsonl_path = scratch("jsonl");
    let _ = std::fs::remove_file(&jsonl_path);

    let progress_calls = Rc::new(RefCell::new(0u64));
    let calls = progress_calls.clone();
    let tracer = Rc::new(RefCell::new(
        Tracer::new()
            .with_jsonl_path(jsonl_path.clone())
            .with_progress(5, move |snapshot| {
                assert!(!snapshot.dialect.is_empty());
                *calls.borrow_mut() += 1;
            }),
    ));
    let handle: TraceHandle = tracer.clone();
    let mut campaign = Campaign::new(config.clone());
    campaign.set_trace(Some(handle));
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    let report = campaign.run_supervised(&mut conn, &SupervisorConfig::default());
    drop(campaign);
    let tracer = Rc::try_unwrap(tracer).ok().unwrap().into_inner();

    assert!(report.metrics.detected_bug_cases > 0);
    assert!(
        *progress_calls.borrow() > 0,
        "progress callback never fired"
    );

    // In-memory recorder: one pinned bug record per detected bug case, and
    // the prioritizer's keep/drop decisions are part of the history.
    let recorder = tracer.recorder().unwrap();
    let bug_records: Vec<_> = recorder
        .pinned()
        .iter()
        .filter(|record| record.outcome() == "bug")
        .collect();
    assert_eq!(
        bug_records.len() as u64,
        report.metrics.detected_bug_cases,
        "every detected bug case must have a pinned flight-recorder history"
    );
    let kept: u64 = bug_records
        .iter()
        .filter(|record| {
            record
                .events
                .iter()
                .any(|event| matches!(event.kind, TraceEventKind::Prioritized { kept: true }))
        })
        .count() as u64;
    assert_eq!(
        kept, report.metrics.prioritized_bugs,
        "kept prioritization decisions must match the report"
    );

    // The JSONL flush at campaign end wrote a self-consistent document.
    let text = std::fs::read_to_string(&jsonl_path).expect("jsonl was flushed at campaign end");
    let lines = validate_jsonl(&text).expect("flight-recorder JSONL must be well-formed");
    // Header + one line per sealed record + telemetry footer.
    assert!(lines as usize >= 2 + bug_records.len());
    assert_eq!(
        text,
        tracer.jsonl().unwrap(),
        "file matches the in-memory document"
    );
    let _ = std::fs::remove_file(&jsonl_path);
}
