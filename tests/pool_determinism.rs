//! Pool-size invariance: the deterministic connection pool checks a test
//! case out of slot `case_seed % size`, re-syncing stale slots by SQL
//! replay, so the campaign's verdict stream — and therefore the rendered
//! report — must be **byte-identical** for any pool size. The pool size is
//! purely a throughput knob, never an observable.

use sqlancerpp::core::{render_report, CampaignConfig, OracleKind, SupervisorConfig};
use sqlancerpp::sim::{
    fleet_drivers, preset_by_name, run_campaign_partitioned_pooled, run_fleet_serial_drivers,
    ExecutionPath,
};

fn pool_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(40)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(16)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

fn fleet_renderings(path: ExecutionPath, pool_size: usize) -> Vec<String> {
    let drivers = fleet_drivers(path);
    let fleet = run_fleet_serial_drivers(&drivers, &pool_config(0xB001), pool_size);
    fleet.reports.iter().map(render_report).collect()
}

#[test]
fn serial_fleet_reports_are_byte_identical_for_any_pool_size() {
    for path in [ExecutionPath::Ast, ExecutionPath::Text] {
        let baseline = fleet_renderings(path, 1);
        for pool_size in [2, 4] {
            let rendered = fleet_renderings(path, pool_size);
            assert_eq!(
                baseline, rendered,
                "{path:?} fleet report drifted at pool size {pool_size}"
            );
        }
    }
}

#[test]
fn partitioned_campaign_is_byte_identical_for_any_pool_size() {
    let preset = preset_by_name("sqlite").expect("sqlite preset exists");
    let driver = preset.driver(ExecutionPath::Text);
    let supervision = SupervisorConfig::default();
    let config = pool_config(0xB002);
    let baseline = render_report(
        &run_campaign_partitioned_pooled(&driver, &config, 2, 1, &supervision).report,
    );
    for pool_size in [2, 4] {
        for threads in [1, 2] {
            let run =
                run_campaign_partitioned_pooled(&driver, &config, threads, pool_size, &supervision);
            assert_eq!(
                baseline,
                render_report(&run.report),
                "partitioned report drifted at pool size {pool_size}, {threads} threads"
            );
        }
    }
}
