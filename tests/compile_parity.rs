//! Compiled↔tree-walker differential property suite.
//!
//! The closure-compiled expression evaluator must be observationally
//! identical to the tree-walking reference evaluator: same values, same
//! errors (kind *and* message), and the same final coverage sets —
//! otherwise the compiled fast path would change test semantics, not just
//! speed, and the paper's metamorphic-oracle guarantees would silently
//! rot. This suite drives randomized expressions over randomized rows
//! through both evaluators under every typing discipline, execution mode
//! and a battery of injected evaluation faults, asserting value-for-value
//! and error-for-error equivalence.
//!
//! The offline build environment has no `proptest`, so the tests use a
//! seeded RNG and explicit case loops (same convention as
//! `property_tests.rs`): every run checks the same deterministic case set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlancerpp::ast::{
    row_fingerprint, BinaryOp, CaseBranch, DataType, Expr, ScalarFunction, Value,
};
use sqlancerpp::engine::{
    compile_expr, Database, EngineConfig, Evaluator, ExecutionMode, RelationBinding, Scope,
};

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5u8) {
        0 => Value::Null,
        1 => Value::Integer(rng.gen_range(-100i64..100)),
        2 => Value::Boolean(rng.gen_bool(0.5)),
        3 => {
            let len = rng.gen_range(0..=5usize);
            let alphabet = ['a', 'b', 'A', '%', '_', '1', ' '];
            Value::Text(
                (0..len)
                    .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                    .collect(),
            )
        }
        _ => {
            if rng.gen_bool(0.4) {
                Value::Real(rng.gen_range(-100i64..100) as f64)
            } else {
                Value::Real(rng.gen_range(-100.0f64..100.0))
            }
        }
    }
}

/// A column leaf: usually resolvable, occasionally qualified, occasionally
/// unknown (so constant-error plans are exercised too).
fn arb_column(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..8u8) {
        0 => Expr::qualified_column("t0", "c1"),
        1 => Expr::column("missing"),
        2 => Expr::qualified_column("t9", "c0"),
        n => Expr::column(format!("c{}", n % 3)),
    }
}

fn arb_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return if rng.gen_bool(0.5) {
            Expr::Literal(arb_value(rng))
        } else {
            arb_column(rng)
        };
    }
    match rng.gen_range(0..13u8) {
        0 => {
            let op = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Mod,
                BinaryOp::Concat,
                BinaryOp::BitAnd,
                BinaryOp::ShiftLeft,
            ][rng.gen_range(0..8usize)];
            arb_expr(rng, depth - 1).binary(op, arb_expr(rng, depth - 1))
        }
        1 => {
            let op = [
                BinaryOp::Eq,
                BinaryOp::Neq,
                BinaryOp::Lt,
                BinaryOp::Le,
                BinaryOp::Gt,
                BinaryOp::Ge,
                BinaryOp::NullSafeEq,
                BinaryOp::IsDistinctFrom,
            ][rng.gen_range(0..8usize)];
            arb_expr(rng, depth - 1).binary(op, arb_expr(rng, depth - 1))
        }
        2 => arb_expr(rng, depth - 1).and(arb_expr(rng, depth - 1)),
        3 => arb_expr(rng, depth - 1).or(arb_expr(rng, depth - 1)),
        4 => arb_expr(rng, depth - 1).not(),
        5 => arb_expr(rng, depth - 1).is_null(),
        6 => Expr::IsBool {
            expr: Box::new(arb_expr(rng, depth - 1)),
            target: rng.gen_bool(0.5),
            negated: rng.gen_bool(0.5),
        },
        7 => {
            let func = [
                ScalarFunction::Abs,
                ScalarFunction::Upper,
                ScalarFunction::Length,
                ScalarFunction::Coalesce,
                ScalarFunction::Nullif,
                ScalarFunction::Sqrt,
                ScalarFunction::Substr,
                ScalarFunction::Replace,
            ][rng.gen_range(0..8usize)];
            let arity = rng.gen_range(func.min_args()..=func.max_args().min(3));
            Expr::Function {
                func,
                args: (0..arity).map(|_| arb_expr(rng, depth - 1)).collect(),
            }
        }
        8 => Expr::Cast {
            expr: Box::new(arb_expr(rng, depth - 1)),
            data_type: [
                DataType::Integer,
                DataType::Real,
                DataType::Text,
                DataType::Boolean,
            ][rng.gen_range(0..4usize)],
        },
        9 => Expr::Between {
            expr: Box::new(arb_expr(rng, depth - 1)),
            low: Box::new(arb_expr(rng, depth - 1)),
            high: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
        10 => Expr::InList {
            expr: Box::new(arb_expr(rng, depth - 1)),
            list: (0..rng.gen_range(1..=3usize))
                .map(|_| arb_expr(rng, depth - 1))
                .collect(),
            negated: rng.gen_bool(0.5),
        },
        11 => Expr::Like {
            expr: Box::new(arb_expr(rng, depth - 1)),
            pattern: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
        _ => Expr::Case {
            operand: rng
                .gen_bool(0.5)
                .then(|| Box::new(arb_expr(rng, depth - 1))),
            branches: (0..rng.gen_range(1..=2usize))
                .map(|_| CaseBranch {
                    when: arb_expr(rng, depth - 1),
                    then: arb_expr(rng, depth - 1),
                })
                .collect(),
            else_expr: rng
                .gen_bool(0.5)
                .then(|| Box::new(arb_expr(rng, depth - 1))),
        },
    }
}

/// Two values agree when they are equal, or indistinguishable under the
/// oracle's row identity with the same storage class (covers NaN, which is
/// never `==` itself but must fingerprint identically on both paths).
fn values_agree(a: &Value, b: &Value) -> bool {
    a == b
        || (a.data_type() == b.data_type()
            && row_fingerprint(std::slice::from_ref(a)) == row_fingerprint(std::slice::from_ref(b)))
}

fn bindings() -> Vec<RelationBinding> {
    vec![
        RelationBinding::new(
            "t0",
            vec!["c0".to_string(), "c1".to_string(), "c2".to_string()],
        ),
        // A second relation that shares `c1`, so unqualified `c1` is
        // ambiguous — the compiled path must bake in the identical error.
        RelationBinding::new("t1", vec!["c1".to_string()]),
    ]
}

/// Drives `cases` random expressions over `rows_per_case` random rows
/// through both evaluators on separate databases with identical
/// configuration, asserting identical values, identical errors and —
/// because coverage is recorded on actual evaluation on both paths —
/// identical final coverage sets.
fn run_differential(seed: u64, config: &EngineConfig, mode: ExecutionMode, cases: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree_db = Database::new(config.clone());
    let compiled_db = Database::new(config.clone());
    let bindings = bindings();
    for case in 0..cases {
        let expr = arb_expr(&mut rng, 3);
        let compiled = compile_expr(&compiled_db, mode, &bindings, &expr);
        for _ in 0..4 {
            let row: Vec<Value> = (0..4).map(|_| arb_value(&mut rng)).collect();
            let scope = Scope::new(&bindings, &row);
            // Fresh evaluators per row, as the engine's sites do per
            // statement; both paths share the per-evaluator coercion gate
            // behaviour through `Evaluator` itself.
            let tree_ev = Evaluator::new(&tree_db, mode);
            let compiled_ev = Evaluator::new(&compiled_db, mode);
            let tree = tree_ev.eval(&expr, &scope);
            let fast = compiled.eval(&compiled_ev, &scope);
            match (&tree, &fast) {
                (Ok(a), Ok(b)) => assert!(
                    values_agree(a, b),
                    "case {case}: value divergence on {expr}\n  row: {row:?}\n  tree: {a:?}\n  compiled: {b:?}"
                ),
                (Err(a), Err(b)) => assert_eq!(
                    a, b,
                    "case {case}: error divergence on {expr} (row {row:?})"
                ),
                _ => panic!(
                    "case {case}: outcome divergence on {expr}\n  row: {row:?}\n  tree: {tree:?}\n  compiled: {fast:?}"
                ),
            }
        }
    }
    assert_eq!(
        tree_db.coverage_snapshot(),
        compiled_db.coverage_snapshot(),
        "coverage sets diverged between evaluators"
    );
}

#[test]
fn compiled_matches_tree_dynamic_typing() {
    run_differential(
        0xC0DE,
        &EngineConfig::dynamic(),
        ExecutionMode::Optimized,
        512,
    );
}

#[test]
fn compiled_matches_tree_strict_typing() {
    run_differential(
        0x51C7,
        &EngineConfig::strict(),
        ExecutionMode::Optimized,
        512,
    );
}

#[test]
fn compiled_matches_tree_reference_mode() {
    run_differential(
        0x4EF0,
        &EngineConfig::dynamic(),
        ExecutionMode::Reference,
        256,
    );
}

/// Evaluation-level injected faults (the ones that fire inside the
/// evaluator rather than the rewriter) must fire identically on both
/// paths, in both execution modes.
#[test]
fn compiled_matches_tree_under_evaluation_faults() {
    let faults = [
        "bad_like_underscore",
        "bad_integer_division",
        "bad_bitwise_inversion",
        "bad_text_coercion_sign",
        "bad_collation_comparison",
        "bad_nullif_null_handling",
        "bad_replace_type_affinity",
    ];
    for (i, fault) in faults.iter().enumerate() {
        for mode in [ExecutionMode::Optimized, ExecutionMode::Reference] {
            let config = EngineConfig::dynamic().with_faults(&[fault]);
            run_differential(0xFA17 + i as u64, &config, mode, 128);
        }
    }
}
