//! Coverage-atlas determinism contracts.
//!
//! The rendered atlas ([`render_atlas_report`]) is a pure function of the
//! campaign definition: byte-identical for any worker count, any pool
//! size, both execution paths, and across a kill-at-k resume. The
//! coverage-directed mode keeps the same property — its weight boosts are
//! derived from case seeds, never from wall clock or thread schedule.

use sqlancerpp::core::{
    load_checkpoint, render_atlas_report, render_report, Campaign, CampaignConfig, CampaignReport,
    OracleKind, SupervisorConfig,
};
use sqlancerpp::sim::{
    preset_by_name, run_campaign_partitioned_pooled, DialectPreset, ExecutionPath, FaultyConfig,
};
use std::path::PathBuf;

fn storm_preset(dialect: &str) -> DialectPreset {
    preset_by_name(dialect)
        .unwrap()
        .with_infra_faults(FaultyConfig::storm())
}

fn coverage_config(seed: u64) -> CampaignConfig {
    coverage_config_directed(seed, false)
}

fn coverage_config_directed(seed: u64, directed: bool) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(8)
        .queries_per_database(40)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(16)
        .coverage_directed(directed)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sqlancerpp_atlas_{}_{name}", std::process::id()))
}

#[test]
fn atlas_is_byte_identical_for_any_worker_pool_and_path() {
    let config = coverage_config(0xA71A5);
    let preset = storm_preset("dolt");
    let supervision = SupervisorConfig::default();
    let mut baselines = Vec::new();
    for path in [ExecutionPath::Ast, ExecutionPath::Text] {
        let driver = preset.driver(path);
        let reference = run_campaign_partitioned_pooled(&driver, &config, 1, 1, &supervision);
        let baseline = render_atlas_report(&reference.report);
        assert!(
            baseline.contains("oracle TLP") && baseline.contains("saturation novel"),
            "atlas should render oracle and saturation sections:\n{baseline}"
        );
        assert!(
            baseline.contains("engine statements"),
            "the simulated backend must surface engine-plane coverage:\n{baseline}"
        );
        for threads in [1usize, 2] {
            for pool_size in [1usize, 2, 4] {
                let run = run_campaign_partitioned_pooled(
                    &driver,
                    &config,
                    threads,
                    pool_size,
                    &supervision,
                );
                assert_eq!(
                    baseline,
                    render_atlas_report(&run.report),
                    "{path:?} atlas drifted at {threads} threads, pool size {pool_size}"
                );
            }
        }
        baselines.push(baseline);
    }
    // Coverage is charged at the shared text/AST funnel, so the execution
    // path is not an observable either.
    assert_eq!(
        baselines[0], baselines[1],
        "text and AST paths must produce identical atlases"
    );
}

fn run_supervised(
    preset: &DialectPreset,
    config: &CampaignConfig,
    supervision: &SupervisorConfig,
) -> CampaignReport {
    let mut campaign = Campaign::new(config.clone());
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    campaign.run_supervised(&mut conn, supervision)
}

#[test]
fn kill_at_k_resume_reports_the_same_atlas() {
    let config = coverage_config(0xC0FFEE);
    let preset = storm_preset("dolt");
    let path = scratch("kill_resume");
    let _ = std::fs::remove_file(&path);

    let reference = run_supervised(&preset, &config, &SupervisorConfig::default());
    let reference_atlas = render_atlas_report(&reference);
    assert!(
        reference.coverage.saturation.novel_features > 0,
        "the reference campaign should discover features"
    );

    let checkpointing = SupervisorConfig {
        checkpoint_every: 5,
        checkpoint_path: Some(path.clone()),
        ..SupervisorConfig::default()
    };
    // Kill at several depths: each k exercises a different split of the
    // per-database novelty stream (including mid-database kills, where the
    // atlas working state must resume from the checkpoint, not reset).
    // Every k lies past the first checkpoint cadence tick, so a resume
    // file always exists.
    for stop_after in [7u64, 11, 27] {
        let _ = std::fs::remove_file(&path);
        let killed_config = SupervisorConfig {
            stop_after_cases: Some(stop_after),
            ..checkpointing.clone()
        };
        let _ = run_supervised(&preset, &config, &killed_config);
        let checkpoint = load_checkpoint(&path).expect("cadence checkpoint was written");
        let mut campaign = Campaign::new(config.clone());
        let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
        let resumed = campaign.resume(&mut conn, &checkpointing, checkpoint);
        assert_eq!(
            render_report(&resumed),
            render_report(&reference),
            "kill at {stop_after}: resume must converge to the reference report"
        );
        assert_eq!(
            render_atlas_report(&resumed),
            reference_atlas,
            "kill at {stop_after}: resumed atlas must match the uninterrupted one"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn coverage_directed_mode_is_seed_stable_and_changes_generation() {
    let preset = storm_preset("dolt");
    let supervision = SupervisorConfig::default();
    let driver = preset.driver(ExecutionPath::Ast);

    let directed = coverage_config_directed(0xD12EC7, true);
    let uniform = coverage_config(0xD12EC7);

    let first = run_campaign_partitioned_pooled(&driver, &directed, 1, 1, &supervision);
    let again = run_campaign_partitioned_pooled(&driver, &directed, 2, 2, &supervision);
    assert_eq!(
        render_atlas_report(&first.report),
        render_atlas_report(&again.report),
        "directed mode must stay deterministic across workers and pools"
    );
    assert_eq!(
        render_report(&first.report),
        render_report(&again.report),
        "directed-mode reports must stay deterministic too"
    );

    let baseline = run_campaign_partitioned_pooled(&driver, &uniform, 1, 1, &supervision);
    assert_ne!(
        render_atlas_report(&first.report),
        render_atlas_report(&baseline.report),
        "the A/B knob must actually steer generation"
    );
}
