//! Randomized property tests over the whole stack: SQL rendering/parsing
//! round-trips, three-valued-logic invariants, optimizer semantics
//! preservation, result-fingerprint equivalence, and prioritizer
//! monotonicity.
//!
//! The offline build environment has no `proptest`, so these tests drive the
//! same properties with a seeded RNG and explicit case loops: every run
//! checks the same deterministic case set, and a failing case prints enough
//! context to be replayed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlancerpp::ast::{row_fingerprint, BinaryOp, Expr, TruthValue, Value};
use sqlancerpp::core::{
    regularized_incomplete_beta, AdaptiveGenerator, BugPrioritizer, Feature, FeatureSet,
    GeneratorConfig, PriorityDecision,
};
use sqlancerpp::engine::{Database, EngineConfig, Evaluator, ExecutionMode, Scope};
use sqlancerpp::parser::{parse_expression, parse_statement};

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5u8) {
        0 => Value::Null,
        1 => Value::Integer(rng.gen_range(-1000i64..1000)),
        2 => Value::Boolean(rng.gen_bool(0.5)),
        3 => {
            let len = rng.gen_range(0..=6usize);
            let alphabet: Vec<char> = ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain([' '])
                .collect();
            Value::Text(
                (0..len)
                    .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                    .collect(),
            )
        }
        _ => {
            // Mix integral and fractional reals so fingerprint normalisation
            // (1 vs 1.0) is exercised often.
            if rng.gen_bool(0.4) {
                Value::Real(rng.gen_range(-1000i64..1000) as f64)
            } else {
                Value::Real(rng.gen_range(-1000.0f64..1000.0))
            }
        }
    }
}

fn arb_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return Expr::Literal(arb_value(rng));
    }
    match rng.gen_range(0..7u8) {
        0 => arb_expr(rng, depth - 1).binary(BinaryOp::Add, arb_expr(rng, depth - 1)),
        1 => arb_expr(rng, depth - 1).binary(BinaryOp::Eq, arb_expr(rng, depth - 1)),
        2 => arb_expr(rng, depth - 1).and(arb_expr(rng, depth - 1)),
        3 => arb_expr(rng, depth - 1).or(arb_expr(rng, depth - 1)),
        4 => arb_expr(rng, depth - 1).not(),
        5 => arb_expr(rng, depth - 1).is_null(),
        _ => Expr::Between {
            expr: Box::new(arb_expr(rng, depth - 1)),
            low: Box::new(arb_expr(rng, depth - 1)),
            high: Box::new(arb_expr(rng, depth - 1)),
            negated: false,
        },
    }
}

/// Every expression the AST can express renders to SQL that the parser
/// accepts and that renders back to the same text (idempotent round-trip).
#[test]
fn expression_rendering_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xA57);
    for case in 0..256 {
        let expr = arb_expr(&mut rng, 3);
        let sql = expr.to_string();
        let reparsed = parse_expression(&sql)
            .unwrap_or_else(|e| panic!("case {case}: rendered SQL must parse: {sql} ({e})"));
        assert_eq!(reparsed.to_string(), sql, "case {case}");
    }
}

/// Three-valued logic: double negation is the identity, AND/OR are
/// commutative, and De Morgan's law holds.
#[test]
fn three_valued_logic_invariants() {
    let truths = [TruthValue::True, TruthValue::False, TruthValue::Unknown];
    for a in truths {
        for b in truths {
            assert_eq!(a.not().not(), a);
            assert_eq!(a.and(b), b.and(a));
            assert_eq!(a.or(b), b.or(a));
            assert_eq!(a.and(b).not(), a.not().or(b.not()));
        }
    }
}

/// Constant predicates keep their truth value across the optimizer's
/// predicate rewrites on a fault-free engine (the NoREC soundness property
/// at expression granularity). The rewriter is only ever applied in
/// predicate positions, so truth-value equivalence — not value equality —
/// is the preserved property.
#[test]
fn optimizer_is_semantics_preserving_without_faults() {
    let mut rng = StdRng::seed_from_u64(0x0B7);
    let db = Database::new(EngineConfig::dynamic());
    let evaluator = Evaluator::new(&db, ExecutionMode::Reference);
    let optimized_eval = Evaluator::new(&db, ExecutionMode::Optimized);
    for case in 0..256 {
        let expr = arb_expr(&mut rng, 3);
        let reference = evaluator.eval(&expr, &Scope::EMPTY);
        let rewritten = sqlancerpp::engine::rewrite_predicate(&db, expr.clone());
        let optimized = optimized_eval.eval(&rewritten, &Scope::EMPTY);
        match (reference, optimized) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    evaluator.truthiness(&a).unwrap(),
                    optimized_eval.truthiness(&b).unwrap(),
                    "case {case}: {expr}"
                );
            }
            (Err(_), _) | (_, Err(_)) => {
                // Domain errors (e.g. ASIN out of range) may be hit by one
                // side only when folding reorders evaluation; both sides
                // failing or one failing is acceptable, silent wrong values
                // are not.
            }
        }
    }
}

/// The hashed 128-bit row fingerprint agrees with the legacy string-based
/// `dedup_key` fingerprint on equality *and* inequality across randomized
/// rows — including the `1` vs `1.0` vs `true` normalisation the oracles
/// rely on.
#[test]
fn hashed_fingerprint_agrees_with_legacy_dedup_key() {
    let mut rng = StdRng::seed_from_u64(0xF1B);
    let legacy = |row: &[Value]| -> String {
        row.iter()
            .map(Value::dedup_key)
            .collect::<Vec<_>>()
            .join("\u{1}")
    };
    let mut equal_pairs = 0usize;
    for case in 0..4096 {
        let len = rng.gen_range(1..=3usize);
        let row_a: Vec<Value> = (0..len).map(|_| arb_value(&mut rng)).collect();
        // Half the time derive row_b from row_a (often equal under
        // normalisation), otherwise draw it independently.
        let row_b: Vec<Value> = if rng.gen_bool(0.5) {
            row_a
                .iter()
                .map(|v| match v {
                    // Swap equivalent representations to stress normalisation.
                    Value::Integer(i) if rng.gen_bool(0.5) => Value::Real(*i as f64),
                    Value::Boolean(b) if rng.gen_bool(0.5) => Value::Integer(i64::from(*b)),
                    other => other.clone(),
                })
                .collect()
        } else {
            (0..len).map(|_| arb_value(&mut rng)).collect()
        };
        let legacy_equal = legacy(&row_a) == legacy(&row_b);
        let hashed_equal = row_fingerprint(&row_a) == row_fingerprint(&row_b);
        assert_eq!(
            legacy_equal, hashed_equal,
            "case {case}: fingerprint disagreement on {row_a:?} vs {row_b:?}"
        );
        if legacy_equal {
            equal_pairs += 1;
        }
    }
    // Sanity: the generator actually produced a healthy mix of equal and
    // unequal rows, otherwise the property is vacuous.
    assert!(equal_pairs > 100, "too few equal pairs: {equal_pairs}");
}

/// Explicit normalisation cases: `1`, `1.0` and `true` fingerprint
/// identically; `1.5`, `'1'` and `NULL` do not.
#[test]
fn fingerprint_normalises_integral_reals_and_booleans() {
    let one = row_fingerprint(&[Value::Integer(1)]);
    assert_eq!(row_fingerprint(&[Value::Real(1.0)]), one);
    assert_eq!(row_fingerprint(&[Value::Boolean(true)]), one);
    assert_ne!(row_fingerprint(&[Value::Real(1.5)]), one);
    assert_ne!(row_fingerprint(&[Value::Text("1".into())]), one);
    assert_ne!(row_fingerprint(&[Value::Null]), one);
    assert_eq!(
        row_fingerprint(&[Value::Real(f64::NAN)]),
        row_fingerprint(&[Value::Real(-f64::NAN)]),
        "all NaNs fingerprint identically, as in the legacy key"
    );
}

/// The regularised incomplete beta function is a CDF: bounded by [0, 1] and
/// monotone in x.
#[test]
fn incomplete_beta_is_a_cdf() {
    let mut rng = StdRng::seed_from_u64(0xBE7A);
    for _ in 0..256 {
        let x = rng.gen_range(0.0f64..1.0);
        let y = rng.gen_range(0.0f64..1.0);
        let a = rng.gen_range(1.0f64..50.0);
        let b = rng.gen_range(1.0f64..50.0);
        let lo = x.min(y);
        let hi = x.max(y);
        let f_lo = regularized_incomplete_beta(lo, a, b);
        let f_hi = regularized_incomplete_beta(hi, a, b);
        assert!((0.0..=1.0 + 1e-9).contains(&f_lo));
        assert!(f_lo <= f_hi + 1e-9);
    }
}

/// Prioritizer invariant: a feature set identical to an already-kept one is
/// always classified as a duplicate, and adding features to a kept set never
/// makes it "new".
#[test]
fn prioritizer_subset_rule_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0x9817);
    for _ in 0..128 {
        let n = rng.gen_range(1..6usize);
        let base: FeatureSet = (0..n)
            .map(|_| {
                let c = (b'A' + rng.gen_range(0..6u8)) as char;
                Feature::new(c.to_string())
            })
            .collect();
        let extra = (b'G' + rng.gen_range(0..5u8)) as char;
        let mut superset = base.clone();
        superset.insert(Feature::new(extra.to_string()));
        let mut prioritizer = BugPrioritizer::new();
        assert_eq!(prioritizer.classify(&base), PriorityDecision::New);
        assert_eq!(
            prioritizer.classify(&base),
            PriorityDecision::PotentialDuplicate
        );
        assert_eq!(
            prioritizer.classify(&superset),
            PriorityDecision::PotentialDuplicate
        );
    }
}

/// Every statement the adaptive generator emits is parseable SQL — the
/// platform never sends garbage to the DBMS under test.
#[test]
fn generated_statements_always_parse() {
    for seed in 0..64u64 {
        let mut generator = AdaptiveGenerator::new(seed, GeneratorConfig::default());
        for _ in 0..6 {
            let stmt = generator.generate_ddl_statement();
            assert!(
                parse_statement(&stmt.sql).is_ok(),
                "unparseable: {}",
                stmt.sql
            );
            generator.apply_success(&stmt.statement);
        }
        for _ in 0..6 {
            if let Some(query) = generator.generate_query() {
                let sql = query.select.to_string();
                assert!(parse_statement(&sql).is_ok(), "unparseable: {sql}");
            }
        }
    }
}

/// The render → parse round-trip reaches a fixpoint after one iteration for
/// generated queries: the first parse may normalise (e.g. `(- 7)` folds into
/// the literal `-7`), but from then on render and parse are exact inverses.
/// Together with the execution parity suite this is what makes the text
/// path and the AST fast path interchangeable on the simulated fleet.
#[test]
fn generated_queries_round_trip_to_a_fixpoint() {
    for seed in 0..32u64 {
        let mut generator = AdaptiveGenerator::new(seed, GeneratorConfig::default());
        for _ in 0..8 {
            let stmt = generator.generate_ddl_statement();
            generator.apply_success(&stmt.statement);
        }
        for _ in 0..8 {
            if let Some(query) = generator.generate_query() {
                let sql = query.select.to_string();
                let normalized = parse_statement(&sql)
                    .expect("generated SQL parses")
                    .to_string();
                let reparsed = parse_statement(&normalized)
                    .expect("normalised SQL parses")
                    .to_string();
                assert_eq!(
                    reparsed, normalized,
                    "round-trip not a fixpoint for seed {seed}: {sql}"
                );
            }
        }
    }
}
