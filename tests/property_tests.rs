//! Property-based tests over the whole stack: SQL rendering/parsing
//! round-trips, three-valued-logic invariants, oracle soundness on
//! fault-free engines, and prioritizer monotonicity.

use proptest::prelude::*;
use sqlancerpp::ast::{BinaryOp, Expr, TruthValue, Value};
use sqlancerpp::core::{
    regularized_incomplete_beta, AdaptiveGenerator, BugPrioritizer, Feature, FeatureSet,
    GeneratorConfig, PriorityDecision,
};
use sqlancerpp::engine::{Database, EngineConfig, ExecutionMode, Evaluator, Scope};
use sqlancerpp::parser::{parse_expression, parse_statement};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(|v| Value::Integer(v % 1000)),
        any::<bool>().prop_map(Value::Boolean),
        "[a-zA-Z0-9 ]{0,6}".prop_map(Value::Text),
        (-1000.0f64..1000.0).prop_map(Value::Real),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    arb_value().prop_map(Expr::Literal)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_leaf();
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.binary(BinaryOp::Add, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.binary(BinaryOp::Eq, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            inner.clone().prop_map(|a| a.is_null()),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Between {
                expr: Box::new(a),
                low: Box::new(b),
                high: Box::new(c),
                negated: false,
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every expression the AST can express renders to SQL that the parser
    /// accepts and that renders back to the same text (idempotent
    /// round-trip).
    #[test]
    fn expression_rendering_round_trips(expr in arb_expr()) {
        let sql = expr.to_string();
        let reparsed = parse_expression(&sql).expect("rendered SQL must parse");
        prop_assert_eq!(reparsed.to_string(), sql);
    }

    /// Three-valued logic: double negation is the identity, and AND/OR are
    /// commutative.
    #[test]
    fn three_valued_logic_invariants(a in 0..3u8, b in 0..3u8) {
        let t = |x: u8| match x { 0 => TruthValue::True, 1 => TruthValue::False, _ => TruthValue::Unknown };
        let (a, b) = (t(a), t(b));
        prop_assert_eq!(a.not().not(), a);
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        // De Morgan.
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
    }

    /// Constant predicates keep their truth value across the optimizer's
    /// predicate rewrites on a fault-free engine (the NoREC soundness
    /// property at expression granularity). The rewriter is only ever
    /// applied in predicate positions, so truth-value equivalence — not
    /// value equality — is the preserved property.
    #[test]
    fn optimizer_is_semantics_preserving_without_faults(expr in arb_expr()) {
        let db = Database::new(EngineConfig::dynamic());
        let evaluator = Evaluator::new(&db, ExecutionMode::Reference);
        let reference = evaluator.eval(&expr, &Scope::EMPTY);
        let rewritten = sqlancerpp::engine::rewrite_predicate(&db, expr);
        let optimized_eval = Evaluator::new(&db, ExecutionMode::Optimized);
        let optimized = optimized_eval.eval(&rewritten, &Scope::EMPTY);
        match (reference, optimized) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    evaluator.truthiness(&a).unwrap(),
                    optimized_eval.truthiness(&b).unwrap()
                );
            }
            (Err(_), _) | (_, Err(_)) => {
                // Domain errors (e.g. ASIN out of range) may be hit by one
                // side only when folding reorders evaluation; both sides
                // failing or one failing is acceptable, silent wrong values
                // are not.
            }
        }
    }

    /// The regularised incomplete beta function is a CDF: bounded by [0, 1]
    /// and monotone in x.
    #[test]
    fn incomplete_beta_is_a_cdf(x in 0.0f64..1.0, y in 0.0f64..1.0, a in 1.0f64..50.0, b in 1.0f64..50.0) {
        let lo = x.min(y);
        let hi = x.max(y);
        let f_lo = regularized_incomplete_beta(lo, a, b);
        let f_hi = regularized_incomplete_beta(hi, a, b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f_lo));
        prop_assert!(f_lo <= f_hi + 1e-9);
    }

    /// Prioritizer invariant: a feature set identical to an already-kept one
    /// is always classified as a duplicate, and adding features to a kept
    /// set never makes it "new".
    #[test]
    fn prioritizer_subset_rule_is_monotone(names in proptest::collection::vec("[A-F]", 1..6), extra in "[G-K]") {
        let base: FeatureSet = names.iter().map(|n| Feature::new(n.clone())).collect();
        let mut superset = base.clone();
        superset.insert(Feature::new(extra));
        let mut prioritizer = BugPrioritizer::new();
        prop_assert_eq!(prioritizer.classify(&base), PriorityDecision::New);
        prop_assert_eq!(prioritizer.classify(&base), PriorityDecision::PotentialDuplicate);
        prop_assert_eq!(prioritizer.classify(&superset), PriorityDecision::PotentialDuplicate);
    }

    /// Every statement the adaptive generator emits is parseable SQL — the
    /// platform never sends garbage to the DBMS under test.
    #[test]
    fn generated_statements_always_parse(seed in 0u64..500) {
        let mut generator = AdaptiveGenerator::new(seed, GeneratorConfig::default());
        for _ in 0..6 {
            let stmt = generator.generate_ddl_statement();
            prop_assert!(parse_statement(&stmt.sql).is_ok(), "unparseable: {}", stmt.sql);
            generator.apply_success(&stmt.statement);
        }
        for _ in 0..6 {
            if let Some(query) = generator.generate_query() {
                let sql = query.select.to_string();
                prop_assert!(parse_statement(&sql).is_ok(), "unparseable: {sql}");
            }
        }
    }
}
