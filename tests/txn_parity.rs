//! Differential suite for the transaction tier.
//!
//! Three guarantees are enforced here:
//!
//! 1. **Tier parity** — the text path, the AST fast path and both
//!    expression-evaluation strategies (compiled, tree-walking) observe
//!    identical commit/rollback/savepoint outcomes, statement for statement
//!    and row for row, including under injected evaluation faults.
//! 2. **Detection** — a fleet campaign with the rollback oracle enabled
//!    detects all three injected transaction bugs (lost-rollback on `dolt`,
//!    phantom-commit on `monetdb`, savepoint-collapse on `firebird`), each
//!    bisected back to its ground-truth fault.
//! 3. **Soundness** — the same campaign produces zero rollback-oracle
//!    reports on every dialect that does not carry a transaction fault.

use sqlancerpp::ast::splitmix64;
use sqlancerpp::core::{Campaign, CampaignConfig, DbmsConnection, OracleKind, TextOnlyConnection};
use sqlancerpp::engine::{Database, Engine, EngineConfig, EvalStrategy, ExecutionMode, TypingMode};
use sqlancerpp::parser::parse_statement;
use sqlancerpp::sim::{fleet, DialectProfile, SimulatedDbms};

/// Transactional scripts covering commit, rollback, savepoints, DDL inside
/// transactions, and statements that fail mid-session.
fn txn_scripts() -> Vec<Vec<&'static str>> {
    vec![
        vec![
            "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
            "INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b')",
            "BEGIN",
            "INSERT INTO t0 (c0, c1) VALUES (3, 'c')",
            "UPDATE t0 SET c1 = 'x' WHERE c0 = 1",
            "ROLLBACK",
        ],
        vec![
            "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
            "INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b')",
            "BEGIN",
            "DELETE FROM t0 WHERE c0 = 2",
            "COMMIT",
        ],
        vec![
            "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
            "INSERT INTO t0 (c0, c1) VALUES (1, 'a')",
            "BEGIN",
            "INSERT INTO t0 (c0, c1) VALUES (2, 'b')",
            "SAVEPOINT sp1",
            "DELETE FROM t0",
            "UPDATE t0 SET c0 = 99 WHERE c1 = 'zzz'",
            "ROLLBACK TO sp1",
            "INSERT INTO t0 (c0, c1) VALUES (3, 'c')",
            "COMMIT",
        ],
        vec![
            "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
            "BEGIN",
            "CREATE TABLE t1 (c0 INTEGER)",
            "INSERT INTO t1 (c0) VALUES (7)",
            "ANALYZE t1",
            "ROLLBACK",
            // Errors after the rollback: t1 must be gone again.
            "INSERT INTO t1 (c0) VALUES (8)",
        ],
        vec![
            "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
            "INSERT INTO t0 (c0, c1) VALUES (1, 'a')",
            "BEGIN",
            "SAVEPOINT a",
            "UPDATE t0 SET c1 = 'b'",
            "SAVEPOINT b",
            "UPDATE t0 SET c1 = 'c'",
            "ROLLBACK TO a",
            "COMMIT",
            // Failing statements inside and outside transactions.
            "ROLLBACK",
            "SAVEPOINT ghost",
        ],
    ]
}

/// Runs a script on a connection, returning the per-statement success bits
/// and the final probe rows of every table the script created.
fn run_script(
    conn: &mut dyn DbmsConnection,
    script: &[&str],
    ast: bool,
) -> (Vec<bool>, Vec<String>) {
    conn.reset();
    let mut outcomes = Vec::new();
    for sql in script {
        let ok = if ast {
            let stmt = parse_statement(sql).expect("script statement parses");
            conn.execute_ast(&stmt).is_success()
        } else {
            conn.execute(sql).is_success()
        };
        outcomes.push(ok);
    }
    let mut probes = Vec::new();
    for table in ["t0", "t1"] {
        let probe = format!("SELECT * FROM {table}");
        match conn.query(&probe) {
            Ok(rs) => {
                let mut rows: Vec<String> = rs
                    .rows
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|v| v.dedup_key())
                            .collect::<Vec<_>>()
                            .join("|")
                    })
                    .collect();
                rows.sort();
                probes.push(format!("{table}: {rows:?}"));
            }
            Err(err) => probes.push(format!("{table}: ERR {err}")),
        }
    }
    (outcomes, probes)
}

/// Text vs AST vs compiled vs tree-walking: all four tier combinations must
/// agree on every script, with and without injected evaluation faults.
#[test]
fn all_execution_tiers_agree_on_transactional_scripts() {
    let fault_sets: Vec<Vec<&'static str>> = vec![
        vec![],
        // Evaluation-level faults: parity must survive them (they fire
        // identically on every tier).
        vec![
            "bad_collation_comparison",
            "bad_integer_division",
            "bad_text_coercion_sign",
        ],
        // Transaction faults themselves: wrong, but *consistently* wrong
        // across tiers.
        vec!["txn_lost_rollback"],
        vec!["txn_phantom_commit"],
        vec!["txn_savepoint_collapse"],
    ];
    for typing in [TypingMode::Dynamic, TypingMode::Strict] {
        for faults in &fault_sets {
            for (si, script) in txn_scripts().iter().enumerate() {
                let profile = DialectProfile::permissive("tierparity", typing);
                let make = |eval: EvalStrategy| {
                    SimulatedDbms::with_eval(profile.clone(), faults.clone(), eval)
                };
                let mut text = TextOnlyConnection::new(make(EvalStrategy::Compiled));
                let mut ast = make(EvalStrategy::Compiled);
                let mut tree = make(EvalStrategy::TreeWalk);
                let reference = run_script(&mut text, script, false);
                let got_ast = run_script(&mut ast, script, true);
                let got_tree = run_script(&mut tree, script, true);
                let ctx = format!("script {si}, typing {typing:?}, faults {faults:?}");
                assert_eq!(reference, got_ast, "text vs AST diverged: {ctx}");
                assert_eq!(
                    reference, got_tree,
                    "AST-compiled vs tree-walk diverged: {ctx}"
                );
            }
        }
    }
}

/// Property test: copy-on-write versioned storage is semantically
/// invisible. A pseudo-random transactional script executed through an
/// [`Engine`] session (the CoW snapshot-workspace path) must match, error
/// for error and row for row, the same script executed on a plain
/// [`Database`] (the PR 3 undo-log path that predates versioned storage) —
/// under every typing mode and every transaction/evaluation fault set.
#[test]
fn cow_engine_sessions_match_plain_database_semantics() {
    let pool: Vec<&str> = vec![
        "INSERT INTO t0 (c0, c1) VALUES (1, 'a')",
        "INSERT INTO t0 (c0, c1) VALUES (2, 'b'), (3, 'c')",
        "INSERT INTO t1 (c0) VALUES ((SELECT COUNT(*) FROM t0))",
        "UPDATE t0 SET c1 = 'x' WHERE c0 > 1",
        "UPDATE t1 SET c0 = c0 + 10",
        "DELETE FROM t0 WHERE c0 = 2",
        "DELETE FROM t1",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
        "SAVEPOINT sp1",
        "ROLLBACK TO sp1",
        "RELEASE SAVEPOINT sp1",
        "ANALYZE t0",
        "CREATE TABLE t2 (c0 INTEGER)",
        "DROP TABLE t2",
        "INSERT INTO t2 (c0) VALUES (9)",
    ];
    let fault_sets: Vec<Vec<&'static str>> = vec![
        vec![],
        vec!["txn_lost_rollback"],
        vec!["txn_phantom_commit"],
        vec!["txn_savepoint_collapse"],
        vec!["bad_integer_division", "bad_text_coercion_sign"],
    ];
    let probe = |table: &str| -> sqlancerpp::ast::Select {
        match parse_statement(&format!("SELECT * FROM {table}")).unwrap() {
            sqlancerpp::ast::Statement::Select(q) => *q,
            _ => unreachable!(),
        }
    };
    for typing in [TypingMode::Dynamic, TypingMode::Strict] {
        for faults in &fault_sets {
            for seed in 0..24u64 {
                let config = {
                    let mut config = EngineConfig {
                        typing,
                        ..EngineConfig::default()
                    };
                    for fault in faults {
                        config.faults.enable(fault);
                    }
                    config
                };
                // Draw a deterministic script from the pool.
                let mut state = splitmix64(0xC04E_u64 ^ seed);
                let mut script = vec![
                    "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)".to_string(),
                    "CREATE TABLE t1 (c0 INTEGER)".to_string(),
                ];
                for _ in 0..14 {
                    state = splitmix64(state);
                    script.push(pool[(state % pool.len() as u64) as usize].to_string());
                }

                // Arm 1: the plain single-connection database (undo-log txns
                // over storage, no engine, no sessions).
                let mut plain = Database::new(config.clone());
                let plain_outcomes: Vec<bool> = script
                    .iter()
                    .map(|sql| plain.execute_sql(sql).is_ok())
                    .collect();

                // Arm 2: an engine session over CoW versioned storage.
                let engine = Engine::new(config);
                let mut session = engine.session();
                let session_outcomes: Vec<bool> = script
                    .iter()
                    .map(|sql| {
                        session
                            .execute(&parse_statement(sql).expect("script parses"))
                            .is_ok()
                    })
                    .collect();

                let ctx = format!("typing {typing:?}, faults {faults:?}, seed {seed}");
                assert_eq!(plain_outcomes, session_outcomes, "outcomes diverged: {ctx}");
                for table in ["t0", "t1", "t2"] {
                    let plain_rows = plain
                        .query(&probe(table), ExecutionMode::Optimized)
                        .map(|rs| rs.multiset_fingerprint());
                    let session_rows = session
                        .query(&probe(table), ExecutionMode::Optimized)
                        .map(|rs| rs.multiset_fingerprint());
                    assert_eq!(
                        plain_rows.is_ok(),
                        session_rows.is_ok(),
                        "{table} existence diverged: {ctx}"
                    );
                    if let (Ok(plain_rows), Ok(session_rows)) = (plain_rows, session_rows) {
                        assert_eq!(plain_rows, session_rows, "{table} rows diverged: {ctx}");
                    }
                }
            }
        }
    }
}

fn rollback_campaign_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(1)
        .ddl_per_database(10)
        .queries_per_database(80)
        .oracles(vec![OracleKind::Rollback])
        .reduce_bugs(true)
        .max_reduction_checks(24)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

/// Acceptance criterion: a fleet campaign with the rollback oracle enabled
/// detects all three injected transaction bugs, each on its designated
/// dialect and bisected to the right ground-truth id — and produces zero
/// rollback reports (false positives) on every clean dialect.
#[test]
fn rollback_oracle_detects_injected_txn_bugs_with_zero_false_positives() {
    let expected = |name: &str| match name {
        "dolt" => Some("BUG-LOST-ROLLBACK"),
        "monetdb" => Some("BUG-PHANTOM-COMMIT"),
        "firebird" => Some("BUG-SAVEPOINT-COLLAPSE"),
        _ => None,
    };
    for preset in fleet() {
        let name = preset.profile.name.clone();
        let mut dbms = preset.instantiate();
        let mut campaign = Campaign::new(rollback_campaign_config(0xAC1D));
        let report = campaign.run(&mut dbms);
        match expected(&name) {
            Some(bug_id) => {
                assert!(
                    !report.txn_cases.is_empty(),
                    "rollback oracle found nothing on {name} (expected {bug_id})"
                );
                let causes: Vec<&str> = report
                    .txn_cases
                    .iter()
                    .flat_map(|case| dbms.ground_truth_txn_bugs(case))
                    .collect();
                assert!(
                    causes.contains(&bug_id),
                    "{name}: ground truth {causes:?} does not include {bug_id}"
                );
            }
            None => {
                let rollback_reports: Vec<_> = report
                    .reports
                    .iter()
                    .filter(|r| r.oracle == OracleKind::Rollback)
                    .collect();
                assert!(
                    rollback_reports.is_empty(),
                    "false positives on clean dialect {name}: {rollback_reports:#?}"
                );
            }
        }
    }
}

/// Dialects that reject transactions teach the support model to suppress
/// transactional sessions: after a campaign against `cratedb` (no
/// transactions at all), `STMT_BEGIN` is suppressed and
/// `generate_txn_session` returns `None`.
#[test]
fn support_model_learns_transactionless_dialects() {
    let preset = sqlancerpp::sim::preset_by_name("cratedb").unwrap();
    let mut dbms = preset.instantiate();
    let mut config = rollback_campaign_config(7);
    config.queries_per_database = 200;
    config.generator.update_interval = 25;
    config.generator.stats.query_threshold = 0.2;
    config.generator.stats.min_attempts = 10;
    let mut campaign = Campaign::new(config);
    let report = campaign.run(&mut dbms);
    assert_eq!(report.metrics.detected_bug_cases, 0);
    campaign.generator.refresh_suppression();
    assert!(
        campaign
            .generator
            .suppressed_query_features()
            .iter()
            .any(|f| f.name() == "STMT_BEGIN"),
        "STMT_BEGIN not suppressed after a transactionless campaign"
    );
    assert!(campaign.generator.generate_txn_session().is_none());
}

/// The reducer shrinks transactional sessions while keeping savepoint
/// pairing intact (the oracle supplies the BEGIN/COMMIT bracketing, which
/// is therefore structurally irreducible).
#[test]
fn txn_reduction_preserves_savepoint_pairing() {
    use sqlancerpp::ast::Statement;
    use sqlancerpp::core::{BugReducer, FeatureSet, TxnCase};
    let mut dbms = SimulatedDbms::new(
        DialectProfile::permissive("reduce-txn", TypingMode::Dynamic),
        vec!["txn_savepoint_collapse"],
    );
    let case = TxnCase {
        setup: vec![
            "CREATE TABLE t0 (c0 INTEGER)".to_string(),
            "CREATE TABLE unused (c0 INTEGER)".to_string(),
            "INSERT INTO t0 (c0) VALUES (1)".to_string(),
        ],
        table: "t0".to_string(),
        statements: vec![
            parse_statement("INSERT INTO t0 (c0) VALUES (2)").unwrap(),
            parse_statement("SAVEPOINT sp1").unwrap(),
            parse_statement("DELETE FROM t0").unwrap(),
            parse_statement("ROLLBACK TO sp1").unwrap(),
            parse_statement("INSERT INTO t0 (c0) VALUES (3)").unwrap(),
        ],
        features: FeatureSet::new(),
    };
    let mut reducer = BugReducer::new(&mut dbms, 200);
    let (reduced, stats) = reducer.reduce_txn(&case);
    assert!(stats.checks > 0);
    assert!(
        reduced.statements.len() < case.statements.len(),
        "session did not shrink: {:?}",
        reduced.statements
    );
    // Savepoint pairing is intact: every ROLLBACK TO has its SAVEPOINT.
    let mut names: Vec<String> = Vec::new();
    for stmt in &reduced.statements {
        match stmt {
            Statement::Savepoint(n) => names.push(n.clone()),
            Statement::RollbackTo(n) => assert!(
                names.contains(n),
                "orphaned ROLLBACK TO {n} in {:?}",
                reduced.statements
            ),
            _ => {}
        }
    }
    // The reduced case still reproduces the collapse bug.
    let causes = dbms.ground_truth_txn_bugs(&reduced);
    assert_eq!(causes, vec!["BUG-SAVEPOINT-COLLAPSE"]);
}

/// Text-path and AST-path fleet campaigns with the rollback oracle in the
/// mix produce identical reports — the transport tiers stay byte-identical
/// even for stateful transactional workloads.
#[test]
fn txn_campaigns_are_identical_across_transport_tiers() {
    let mut config = rollback_campaign_config(0xBEEF);
    config.oracles = vec![OracleKind::Tlp, OracleKind::Rollback];
    config.queries_per_database = 40;
    for name in ["dolt", "monetdb", "sqlite"] {
        let preset = sqlancerpp::sim::preset_by_name(name).unwrap();
        let mut ast_conn = preset.instantiate();
        let mut text_conn = TextOnlyConnection::new(preset.instantiate());
        let ast_report = Campaign::new(config.clone()).run(&mut ast_conn);
        let text_report = Campaign::new(config.clone()).run(&mut text_conn);
        assert_eq!(ast_report.metrics, text_report.metrics, "{name} metrics");
        assert_eq!(ast_report.reports, text_report.reports, "{name} reports");
        assert_eq!(ast_report.txn_cases, text_report.txn_cases, "{name} cases");
        assert_eq!(
            ast_report.validity_series, text_report.validity_series,
            "{name} validity series"
        );
    }
}
