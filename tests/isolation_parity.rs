//! Differential suite for the concurrent-session subsystem and the
//! snapshot-isolation oracle.
//!
//! Four guarantees are enforced here:
//!
//! 1. **Serial-replay determinism** — isolation-oracle campaigns produce
//!    identical reports (schedules included) across all three execution
//!    tiers (text, AST-compiled, AST-tree-walking) and across the serial
//!    and parallel fleet runners.
//! 2. **Detection** — handcrafted and campaign-generated schedules detect
//!    all three injected isolation bugs (dirty-read on `mysql`, lost-update
//!    on `mariadb`, non-repeatable-read on `tidb`), each bisected back to
//!    its ground-truth fault.
//! 3. **Soundness** — fleet-wide, every isolation-oracle report bisects to
//!    at least one injected fault, and dialects carrying neither an
//!    isolation nor a transaction fault produce zero isolation reports.
//! 4. **Reduction validity** — schedule reduction preserves the session
//!    bracketing and the interleaving's relative order, and the reduced
//!    schedule still reproduces the bug.

use sqlancerpp::ast::{BeginMode, Statement};
use sqlancerpp::core::{
    check_isolation, BugReducer, Campaign, CampaignConfig, DbmsConnection, FeatureSet, OracleKind,
    Schedule, ScheduleCase, SessionScript, TextOnlyConnection,
};
use sqlancerpp::engine::EvalStrategy;
use sqlancerpp::parser::parse_statement;
use sqlancerpp::sim::{fleet, preset_by_name, run_fleet_parallel, run_fleet_serial, ExecutionPath};

fn stmts(sql: &[&str]) -> Vec<Statement> {
    sql.iter()
        .map(|s| parse_statement(s).expect("test SQL parses"))
        .collect()
}

fn isolation_campaign_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(120)
        .oracles(vec![OracleKind::Isolation])
        .reduce_bugs(true)
        .max_reduction_checks(24)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

/// The handcrafted ground-truth schedule for each injected isolation fault.
/// Each is deterministic: the interleaving is an explicit step list, so the
/// same schedule replays identically forever.
fn crafted_schedule(fault: &str) -> ScheduleCase {
    let two_tables = vec![
        "CREATE TABLE t0 (c0 INTEGER)".to_string(),
        "CREATE TABLE t1 (c0 INTEGER)".to_string(),
    ];
    let observer = "INSERT INTO t0 (c0) VALUES ((SELECT COUNT(*) FROM t1))";
    let (setup, sessions, interleaving, tables) = match fault {
        // Session 1 writes t1 uncommitted; session 0 begins (dirty
        // snapshot), observes t1's count into t0 and commits; session 1
        // rolls back. Serial replay of the only committed session sees an
        // empty t1.
        "iso_dirty_read" => (
            two_tables,
            vec![
                SessionScript {
                    begin: BeginMode::Plain,
                    statements: stmts(&[observer]),
                    commit: true,
                },
                SessionScript {
                    begin: BeginMode::Plain,
                    statements: stmts(&["INSERT INTO t1 (c0) VALUES (7)"]),
                    commit: false,
                },
            ],
            vec![1, 1, 0, 0, 1, 0],
            vec!["t0".to_string(), "t1".to_string()],
        ),
        // Both sessions insert into t0 and both commit; sound
        // first-committer-wins aborts the second, the fault lets it clobber
        // the first committer's row.
        "iso_lost_update" => (
            vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()],
            vec![
                SessionScript {
                    begin: BeginMode::Plain,
                    statements: stmts(&["INSERT INTO t0 (c0) VALUES (10)"]),
                    commit: true,
                },
                SessionScript {
                    begin: BeginMode::Plain,
                    statements: stmts(&["INSERT INTO t0 (c0) VALUES (20)"]),
                    commit: true,
                },
            ],
            vec![0, 1, 0, 1, 0, 1],
            vec!["t0".to_string()],
        ),
        // Session 0 observes t1's count twice, sandwiching session 1's
        // committed insert; under sound snapshot isolation both reads see
        // the begin snapshot.
        "iso_nonrepeatable_read" => (
            two_tables,
            vec![
                SessionScript {
                    begin: BeginMode::Plain,
                    statements: stmts(&[observer, observer]),
                    commit: true,
                },
                SessionScript {
                    begin: BeginMode::Plain,
                    statements: stmts(&["INSERT INTO t1 (c0) VALUES (7)"]),
                    commit: true,
                },
            ],
            vec![0, 0, 1, 1, 1, 0, 0],
            vec!["t0".to_string(), "t1".to_string()],
        ),
        other => panic!("no crafted schedule for {other}"),
    };
    ScheduleCase {
        setup,
        schedule: Schedule {
            tables,
            sessions,
            interleaving,
        },
        features: FeatureSet::new(),
    }
}

/// Handcrafted schedules detect each injected isolation fault on its
/// designated dialect, bisect to the right ground-truth id, and pass on a
/// fault-free engine.
#[test]
fn crafted_schedules_detect_each_isolation_fault() {
    let designated = [
        ("iso_dirty_read", "mysql", "BUG-DIRTY-READ"),
        ("iso_lost_update", "mariadb", "BUG-LOST-UPDATE"),
        ("iso_nonrepeatable_read", "tidb", "BUG-NONREPEATABLE-READ"),
    ];
    for (fault, dialect, bug_id) in designated {
        let case = crafted_schedule(fault);
        assert!(case.schedule.is_well_formed(), "{fault}: malformed");
        let mut dbms = preset_by_name(dialect).unwrap().instantiate();
        dbms.reset();
        for sql in &case.setup {
            assert!(dbms.execute(sql).is_success());
        }
        let verdict = check_isolation(&mut dbms, &case.schedule, &case.features, &case.setup);
        assert!(
            verdict.outcome.is_bug(),
            "{dialect}: crafted {fault} schedule not flagged: {:?}",
            verdict.outcome
        );
        let causes = dbms.ground_truth_schedule_bugs(&case);
        assert!(
            causes.contains(&bug_id),
            "{dialect}: ground truth {causes:?} does not include {bug_id}"
        );
        // The same schedule passes on a sound engine (sqlite carries no
        // isolation or transaction fault).
        let mut clean = preset_by_name("sqlite").unwrap().instantiate();
        clean.reset();
        for sql in &case.setup {
            assert!(clean.execute(sql).is_success());
        }
        let verdict = check_isolation(&mut clean, &case.schedule, &case.features, &case.setup);
        assert!(
            matches!(
                verdict.outcome,
                sqlancerpp::core::OracleOutcome::Passed
                    | sqlancerpp::core::OracleOutcome::Invalid(_)
            ),
            "sqlite flagged a sound schedule: {:?}",
            verdict.outcome
        );
        assert!(
            verdict.outcome.is_valid(),
            "crafted schedules are valid on sqlite"
        );
    }
    // Row-range write intent on the sound engine: the lost-update schedule
    // is two blind appenders, whose claims are disjoint — both commits
    // merge instead of conflicting (pre-CoW table-level intent aborted one
    // of them here).
    let case = crafted_schedule("iso_lost_update");
    let mut clean = preset_by_name("sqlite").unwrap().instantiate();
    clean.reset();
    for sql in &case.setup {
        assert!(clean.execute(sql).is_success());
    }
    let verdict = check_isolation(&mut clean, &case.schedule, &case.features, &case.setup);
    assert_eq!(
        verdict.conflict_aborts, 0,
        "disjoint appends merge under row-range intent"
    );
    assert_eq!(verdict.outcome, sqlancerpp::core::OracleOutcome::Passed);

    // Existing-row contention still aborts: the same schedule with both
    // sessions *updating* t0 claims overlapping row ranges, so sound
    // first-committer-wins rejects the second commit.
    let mut update_case = crafted_schedule("iso_lost_update");
    for session in &mut update_case.schedule.sessions {
        session.statements = stmts(&["UPDATE t0 SET c0 = c0 + 1"]);
    }
    update_case
        .setup
        .push("INSERT INTO t0 (c0) VALUES (1)".into());
    let mut clean = preset_by_name("sqlite").unwrap().instantiate();
    clean.reset();
    for sql in &update_case.setup {
        assert!(clean.execute(sql).is_success());
    }
    let verdict = check_isolation(
        &mut clean,
        &update_case.schedule,
        &update_case.features,
        &update_case.setup,
    );
    assert_eq!(verdict.conflict_aborts, 1, "sound FCW aborts one commit");
    assert!(verdict.outcome.is_valid());
    assert!(!verdict.outcome.is_bug());
}

/// Acceptance criterion: isolation-oracle campaigns detect all three
/// injected isolation bugs on their designated dialects, every flagged
/// schedule fleet-wide bisects to an injected fault (zero false positives),
/// and clean dialects produce zero isolation reports.
#[test]
fn isolation_campaigns_detect_bugs_with_zero_false_positives() {
    let expected = |name: &str| match name {
        "mysql" => Some("BUG-DIRTY-READ"),
        "mariadb" => Some("BUG-LOST-UPDATE"),
        "tidb" => Some("BUG-NONREPEATABLE-READ"),
        _ => None,
    };
    // Dialects whose single-connection transaction faults can legitimately
    // surface through a concurrent schedule (e.g. a lost rollback leaves a
    // rolled-back session's writes behind).
    let txn_faulted = ["dolt", "monetdb", "firebird"];
    for preset in fleet() {
        let name = preset.profile.name.clone();
        let mut dbms = preset.instantiate();
        let mut campaign = Campaign::new(isolation_campaign_config(0x150));
        let report = campaign.run(&mut dbms);
        // Zero false positives: every flagged schedule has a ground-truth
        // cause.
        for case in &report.schedule_cases {
            let causes = dbms.ground_truth_schedule_bugs(case);
            assert!(
                !causes.is_empty(),
                "{name}: isolation report with empty ground truth:\n{:?}",
                case.schedule.replay_script()
            );
        }
        match expected(&name) {
            Some(bug_id) => {
                assert!(
                    !report.schedule_cases.is_empty(),
                    "isolation oracle found nothing on {name} (expected {bug_id})"
                );
                let causes: Vec<&str> = report
                    .schedule_cases
                    .iter()
                    .flat_map(|case| dbms.ground_truth_schedule_bugs(case))
                    .collect();
                assert!(
                    causes.contains(&bug_id),
                    "{name}: ground truth {causes:?} does not include {bug_id}"
                );
            }
            None if txn_faulted.contains(&name.as_str()) => {
                // Any reports already validated as true positives above.
            }
            None => {
                let isolation_reports: Vec<_> = report
                    .reports
                    .iter()
                    .filter(|r| r.oracle == OracleKind::Isolation)
                    .collect();
                assert!(
                    isolation_reports.is_empty(),
                    "false positives on clean dialect {name}: {isolation_reports:#?}"
                );
            }
        }
    }
}

/// Serial-replay determinism: the same isolation campaign produces
/// identical reports through the text path, the AST-compiled path and the
/// AST-tree-walking path.
#[test]
fn isolation_campaigns_are_identical_across_execution_tiers() {
    let mut config = isolation_campaign_config(0xD1CE);
    config.databases = 1;
    config.queries_per_database = 60;
    config.oracles = vec![OracleKind::Tlp, OracleKind::Isolation];
    for name in ["mysql", "mariadb", "tidb", "sqlite"] {
        let preset = preset_by_name(name).unwrap();
        let mut ast_conn = preset.instantiate();
        let mut tree_conn = preset.instantiate_with_eval(EvalStrategy::TreeWalk);
        let mut text_conn = TextOnlyConnection::new(preset.instantiate());
        let ast_report = Campaign::new(config.clone()).run(&mut ast_conn);
        let tree_report = Campaign::new(config.clone()).run(&mut tree_conn);
        let text_report = Campaign::new(config.clone()).run(&mut text_conn);
        assert_eq!(ast_report.metrics, text_report.metrics, "{name} metrics");
        assert_eq!(ast_report.metrics, tree_report.metrics, "{name} metrics");
        assert_eq!(ast_report.reports, text_report.reports, "{name} reports");
        assert_eq!(ast_report.reports, tree_report.reports, "{name} reports");
        assert_eq!(
            ast_report.schedule_cases, text_report.schedule_cases,
            "{name} schedules"
        );
        assert_eq!(
            ast_report.schedule_cases, tree_report.schedule_cases,
            "{name} schedules"
        );
        assert_eq!(
            ast_report.validity_series, text_report.validity_series,
            "{name} validity series"
        );
    }
}

/// A fixed seed reproduces the identical campaign report — schedules
/// included — across repeated runs and across the serial and parallel
/// fleet runners.
#[test]
fn fixed_seed_reproduces_schedules_across_runners() {
    let mut config = isolation_campaign_config(0xFEED);
    config.databases = 1;
    config.queries_per_database = 40;
    config.oracles = vec![OracleKind::Tlp, OracleKind::NoRec, OracleKind::Isolation];
    let presets: Vec<_> = fleet()
        .into_iter()
        .filter(|p| {
            ["mysql", "mariadb", "tidb", "sqlite", "dolt", "cratedb"]
                .contains(&p.profile.name.as_str())
        })
        .collect();
    let serial_a = run_fleet_serial(&presets, &config, ExecutionPath::Ast);
    let serial_b = run_fleet_serial(&presets, &config, ExecutionPath::Ast);
    let parallel = run_fleet_parallel(&presets, &config, ExecutionPath::Ast, 4);
    for ((a, b), p) in serial_a
        .reports
        .iter()
        .zip(&serial_b.reports)
        .zip(&parallel.reports)
    {
        assert_eq!(a.dbms_name, p.dbms_name);
        assert_eq!(a.metrics, b.metrics, "{} run-to-run", a.dbms_name);
        assert_eq!(a.metrics, p.metrics, "{} serial-vs-parallel", a.dbms_name);
        assert_eq!(a.reports, p.reports, "{} reports", a.dbms_name);
        assert_eq!(
            a.schedule_cases, p.schedule_cases,
            "{} schedules",
            a.dbms_name
        );
    }
    assert_eq!(serial_a.totals, parallel.totals);
}

/// Within-dialect partitioned campaigns (databases sharded across workers)
/// are byte-identical for any worker count — reports, replayable schedule
/// cases, validity series and the merged learned profile — and still
/// detect the designated isolation bug with a valid ground-truth cause.
#[test]
fn partitioned_campaigns_are_identical_and_still_detect_bugs() {
    use sqlancerpp::sim::run_campaign_partitioned;
    let preset = preset_by_name("mariadb").unwrap();
    let mut config = isolation_campaign_config(0xC0C0);
    config.databases = 3;
    config.queries_per_database = 90;
    let serial = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, 1);
    let parallel = run_campaign_partitioned(&preset, &config, ExecutionPath::Ast, 3);
    assert_eq!(serial.report.metrics, parallel.report.metrics);
    assert_eq!(serial.report.reports, parallel.report.reports);
    assert_eq!(serial.report.schedule_cases, parallel.report.schedule_cases);
    assert_eq!(
        serial.report.validity_series,
        parallel.report.validity_series
    );
    assert!(serial
        .profile
        .iter_query()
        .eq(parallel.profile.iter_query()));
    assert!(serial.profile.iter_ddl().eq(parallel.profile.iter_ddl()));
    // The sharded campaign still finds the injected lost update, and every
    // kept schedule bisects to a real fault.
    let dbms = preset.instantiate();
    assert!(
        !serial.report.schedule_cases.is_empty(),
        "partitioned campaign found no schedules on mariadb"
    );
    let causes: Vec<&str> = serial
        .report
        .schedule_cases
        .iter()
        .flat_map(|case| dbms.ground_truth_schedule_bugs(case))
        .collect();
    assert!(
        causes.contains(&"BUG-LOST-UPDATE"),
        "ground truth {causes:?} does not include BUG-LOST-UPDATE"
    );
    // Merged prioritization tallies keep the campaign invariant.
    assert_eq!(
        serial.report.metrics.prioritized_bugs + serial.report.metrics.deduplicated_bugs,
        serial.report.metrics.detected_bug_cases
    );
}

/// Schedule reduction drops setup and body statements while preserving the
/// bracketing (BEGIN + closer never reducible) and the interleaving's
/// relative order; the reduced schedule still reproduces the bug.
#[test]
fn schedule_reduction_preserves_bracketing_and_order() {
    let mut case = crafted_schedule("iso_lost_update");
    // Pad with reducible noise: an unused setup table and extra mutations.
    case.setup.push("CREATE TABLE unused (c0 INTEGER)".into());
    case.setup.push("INSERT INTO t0 (c0) VALUES (1)".into());
    for session in 0..2 {
        case.schedule.sessions[session]
            .statements
            .push(parse_statement("DELETE FROM t0 WHERE c0 = 999").unwrap());
        // Register the extra step just before the session's closer.
        let closer_at = case
            .schedule
            .interleaving
            .iter()
            .rposition(|&s| s as usize == session)
            .unwrap();
        case.schedule.interleaving.insert(closer_at, session as u8);
    }
    assert!(case.schedule.is_well_formed());
    let mut dbms = preset_by_name("mariadb").unwrap().instantiate();
    let (reduced, stats) = {
        let mut reducer = BugReducer::new(&mut dbms, 64);
        reducer.reduce_schedule(&case)
    };
    assert!(stats.checks > 0);
    assert!(reduced.schedule.is_well_formed(), "reduction broke steps");
    assert!(
        stats.predicate_nodes_after < stats.predicate_nodes_before,
        "no-op mutations were not reduced away"
    );
    assert!(
        stats.setup_after < stats.setup_before,
        "unused setup was not reduced away"
    );
    // Bracketing survives: each session still has BEGIN + body + closer
    // steps in the interleaving.
    for (i, session) in reduced.schedule.sessions.iter().enumerate() {
        let count = reduced
            .schedule
            .interleaving
            .iter()
            .filter(|&&s| s as usize == i)
            .count();
        assert_eq!(count, session.step_count());
        assert!(session.step_count() >= 2, "bracketing reduced away");
    }
    // The reduced schedule still reproduces the lost update.
    let causes = dbms.ground_truth_schedule_bugs(&reduced);
    assert_eq!(causes, vec!["BUG-LOST-UPDATE"]);
}

/// `SimulatedDbms::connect` sessions share the committed state, apply the
/// dialect's feature gating, and surface serialization failures as plain
/// statement errors (the learnable outcome).
#[test]
fn connect_opens_gated_sessions_over_one_engine() {
    let mut dbms = preset_by_name("sqlite").unwrap().instantiate();
    assert!(dbms.execute("CREATE TABLE t0 (c0 INTEGER)").is_success());
    let mut session = dbms.connect();
    assert_eq!(session.name(), "sqlite");
    // Shared committed state, both directions.
    assert!(session
        .execute("INSERT INTO t0 (c0) VALUES (1)")
        .is_success());
    assert_eq!(dbms.query("SELECT * FROM t0").unwrap().row_count(), 1);
    // Dialect gating applies to sessions too (sqlite lacks <=>).
    match session.execute("INSERT INTO t0 (c0) VALUES (1 <=> 1)") {
        sqlancerpp::core::StatementOutcome::Failure(msg) => {
            assert!(msg.contains("OP_NULLSAFE_EQ"), "{msg}");
        }
        other => panic!("gating bypassed: {other:?}"),
    }
    // Concurrent blind appends merge under row-range intent: both commits
    // succeed and both rows land.
    let mut a = dbms.connect();
    let mut b = dbms.connect();
    assert!(a.execute("BEGIN").is_success());
    assert!(b.execute("BEGIN").is_success());
    assert!(a.execute("INSERT INTO t0 (c0) VALUES (2)").is_success());
    assert!(b.execute("INSERT INTO t0 (c0) VALUES (3)").is_success());
    assert!(a.execute("COMMIT").is_success());
    assert!(b.execute("COMMIT").is_success());
    assert_eq!(dbms.query("SELECT * FROM t0").unwrap().row_count(), 3);
    assert_eq!(dbms.conflict_aborts(), 0);
    // Overlapping existing-row claims still conflict-abort, surfacing as
    // failure text containing the marker.
    assert!(a.execute("BEGIN").is_success());
    assert!(b.execute("BEGIN").is_success());
    assert!(a.execute("UPDATE t0 SET c0 = 7").is_success());
    assert!(b.execute("UPDATE t0 SET c0 = 8").is_success());
    assert!(a.execute("COMMIT").is_success());
    match b.execute("COMMIT") {
        sqlancerpp::core::StatementOutcome::Failure(msg) => assert!(
            msg.contains(sqlancerpp::core::SERIALIZATION_FAILURE_MARKER),
            "{msg}"
        ),
        other => panic!("expected a serialization failure, got {other:?}"),
    }
    assert_eq!(dbms.conflict_aborts(), 1);
    // Transactionless dialects reject schedules entirely — validity
    // feedback, not a crash.
    let mut crate_db = preset_by_name("cratedb").unwrap().instantiate();
    crate_db.reset();
    assert!(crate_db
        .execute("CREATE TABLE t0 (c0 INTEGER)")
        .is_success());
    let case = crafted_schedule("iso_lost_update");
    let verdict = check_isolation(&mut crate_db, &case.schedule, &case.features, &case.setup);
    assert!(!verdict.outcome.is_valid(), "BEGIN rejection is invalidity");
    assert!(!verdict.outcome.is_bug());
}
