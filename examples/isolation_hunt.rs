//! Hunting isolation bugs with concurrent-session schedules.
//!
//! Walkthrough of the concurrent-session subsystem end to end: the adaptive
//! generator emits two-session mutation scripts with an explicit,
//! seed-derived interleaving (deterministic — no real threads), the
//! isolation oracle runs each schedule over two connections of one engine
//! and compares the final 128-bit table fingerprints against serial
//! replays of the committed sessions in both commit orders, the reducer
//! shrinks flagged schedules while preserving the bracketing and the
//! interleaving's relative order, and ground-truth bisection names the
//! injected fault. Commits rejected by first-committer-wins conflict
//! detection are counted as conflict aborts — a legitimate outcome, never
//! a bug.
//!
//! The three designated isolation-bug dialects are hunted here:
//!
//! * `mysql` — `iso_dirty_read` (snapshots leak uncommitted writes),
//! * `mariadb` — `iso_lost_update` (COMMIT skips conflict validation),
//! * `tidb` — `iso_nonrepeatable_read` (reads chase the committed state).
//!
//! ```bash
//! cargo run --example isolation_hunt
//! ```

use sqlancerpp::core::{Campaign, CampaignConfig, OracleKind};
use sqlancerpp::sim::preset_by_name;
use std::collections::BTreeSet;

fn main() {
    println!("== Snapshot-isolation oracle hunt ==\n");
    for name in ["mysql", "mariadb", "tidb", "sqlite"] {
        let preset = preset_by_name(name).expect("known preset");
        let mut dbms = preset.instantiate();
        // Isolation-only schedule: every test case is a concurrent
        // two-session schedule (mixed schedules alternate it with the
        // single-connection oracles).
        let mut config = CampaignConfig::builder()
            .seed(0x150)
            .databases(2)
            .ddl_per_database(10)
            .queries_per_database(120)
            .oracles(vec![OracleKind::Isolation])
            .reduce_bugs(true)
            .max_reduction_checks(32)
            .build();
        config.generator.stats.query_threshold = 0.05;
        config.generator.stats.min_attempts = 30;
        let mut campaign = Campaign::new(config);
        let report = campaign.run(&mut dbms);

        let mut unique: BTreeSet<&'static str> = BTreeSet::new();
        for case in &report.schedule_cases {
            for id in dbms.ground_truth_schedule_bugs(case) {
                unique.insert(id);
            }
        }
        println!(
            "{name}: {} schedules, {:.0}% conflict-abort rate, {} flagged, \
             {} prioritized, ground truth: {:?}",
            report.metrics.isolation_schedules,
            report.metrics.conflict_abort_rate() * 100.0,
            report.metrics.detected_bug_cases,
            report.schedule_cases.len(),
            unique
        );
        if let Some(case) = report.schedule_cases.first() {
            println!("  first reduced schedule (explicit interleaving):");
            for line in case.schedule.replay_script() {
                println!("    {line}");
            }
        }
        println!();
    }
    println!("(sqlite carries no isolation fault: the oracle stays silent there)");
}
