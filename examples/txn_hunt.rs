//! Hunting transaction bugs with the rollback oracle.
//!
//! Walkthrough of the transaction subsystem end to end: the adaptive
//! generator emits multi-statement transactional sessions, the rollback
//! oracle brackets them in `BEGIN…ROLLBACK` / `BEGIN…COMMIT` and compares
//! 128-bit table fingerprints against the auto-commit reference, the
//! reducer shrinks flagged sessions while keeping `SAVEPOINT`/`ROLLBACK TO`
//! pairs intact, and ground-truth bisection names the injected fault.
//!
//! The three designated transaction-bug dialects are hunted here:
//!
//! * `dolt` — `txn_lost_rollback` (ROLLBACK keeps the writes),
//! * `monetdb` — `txn_phantom_commit` (COMMIT discards them),
//! * `firebird` — `txn_savepoint_collapse` (ROLLBACK TO rewinds too far).
//!
//! ```bash
//! cargo run --example txn_hunt
//! ```

use sqlancerpp::core::{Campaign, CampaignConfig, OracleKind};
use sqlancerpp::sim::preset_by_name;
use std::collections::BTreeSet;

fn main() {
    println!("== Transaction-rollback oracle hunt ==\n");
    for name in ["dolt", "monetdb", "firebird", "sqlite"] {
        let preset = preset_by_name(name).expect("known preset");
        let mut dbms = preset.instantiate();
        // Rollback-only schedule: every test case is a transactional
        // session (mixed schedules alternate it with TLP/NoREC).
        let mut config = CampaignConfig::builder()
            .seed(0xAC1D)
            .databases(1)
            .ddl_per_database(10)
            .queries_per_database(80)
            .oracles(vec![OracleKind::Rollback])
            .reduce_bugs(true)
            .max_reduction_checks(32)
            .build();
        config.generator.stats.query_threshold = 0.05;
        config.generator.stats.min_attempts = 30;
        let mut campaign = Campaign::new(config);
        let report = campaign.run(&mut dbms);

        let mut unique: BTreeSet<&'static str> = BTreeSet::new();
        for case in &report.txn_cases {
            for id in dbms.ground_truth_txn_bugs(case) {
                unique.insert(id);
            }
        }
        println!(
            "{name}: {} test cases, {} flagged, {} prioritized, ground truth: {:?}",
            report.metrics.test_cases,
            report.metrics.detected_bug_cases,
            report.txn_cases.len(),
            unique
        );
        if let Some(case) = report.txn_cases.first() {
            println!("  first reduced session (oracle adds BEGIN/COMMIT/ROLLBACK):");
            for stmt in &case.statements {
                println!("    {stmt}");
            }
        }
        println!();
    }
    println!("(sqlite carries no transaction fault: the oracle stays silent there)");
}
