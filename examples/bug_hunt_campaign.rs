//! A multi-DBMS bug-hunting campaign with ground-truth analysis.
//!
//! Runs a short campaign against a handful of simulated dialects, resolves
//! every prioritized bug-inducing test case to the injected bug that causes
//! it (the stand-in for the paper's fix-commit bisection), and prints a
//! Table 2-style summary.
//!
//! ```bash
//! cargo run --example bug_hunt_campaign
//! ```

use sqlancerpp::core::{Campaign, CampaignConfig};
use sqlancerpp::sim::{catalog, preset_by_name};
use std::collections::BTreeSet;

fn main() {
    let targets = ["sqlite", "dolt", "umbra", "monetdb", "duckdb"];
    println!("| DBMS | detected | prioritized | unique bugs | bug ids |");
    println!("|---|---|---|---|---|");
    for name in targets {
        let preset = preset_by_name(name).expect("known preset");
        let mut dbms = preset.instantiate();
        let mut config = CampaignConfig::builder()
            .seed(99)
            .databases(2)
            .ddl_per_database(14)
            .queries_per_database(250)
            .build();
        config.generator.stats.query_threshold = 0.05;
        config.generator.stats.min_attempts = 30;
        let mut campaign = Campaign::new(config);
        let report = campaign.run(&mut dbms);

        let mut unique: BTreeSet<&'static str> = BTreeSet::new();
        for case in &report.prioritized_cases {
            for id in dbms.ground_truth_bugs(case) {
                unique.insert(id);
            }
        }
        let ids: Vec<&str> = unique.iter().copied().collect();
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            report.metrics.detected_bug_cases,
            report.metrics.prioritized_bugs,
            unique.len(),
            ids.join(", ")
        );
    }
    println!();
    println!("injected-bug catalog ({} entries):", catalog().len());
    for bug in catalog().iter().take(5) {
        println!("  {} — {}", bug.id, bug.description);
    }
    println!("  ... (see dbms_sim::catalog() for the full list)");
}
