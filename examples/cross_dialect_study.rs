//! Cross-dialect SQL feature study (the Figure 6 experiment, in miniature).
//!
//! Finds bug-inducing test cases on one dialect and replays them on several
//! others, showing how rarely a test case is valid across dialects — the
//! observation that motivates the adaptive generator in the first place.
//!
//! ```bash
//! cargo run --example cross_dialect_study
//! ```

use sqlancerpp::core::{replay_validity, Campaign, CampaignConfig};
use sqlancerpp::sim::preset_by_name;

fn main() {
    let source = preset_by_name("dolt").expect("dolt preset exists");
    let targets = ["sqlite", "umbra", "cratedb", "oracle", "mysql"];

    // Hunt for bug-inducing cases on the source dialect.
    let mut dbms = source.instantiate();
    let mut config = CampaignConfig::builder()
        .seed(5)
        .databases(2)
        .ddl_per_database(14)
        .queries_per_database(300)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    let mut campaign = Campaign::new(config);
    let report = campaign.run(&mut dbms);
    println!(
        "found {} prioritized bug-inducing cases on `dolt`",
        report.prioritized_cases.len()
    );
    if report.prioritized_cases.is_empty() {
        println!("(increase queries_per_database to find more)");
        return;
    }

    // Replay them everywhere else.
    println!();
    println!("| target dialect | avg. fraction of statements accepted |");
    println!("|---|---|");
    for target_name in targets {
        let target = preset_by_name(target_name).expect("known preset");
        let mut conn = target.instantiate();
        let avg: f64 = report
            .prioritized_cases
            .iter()
            .map(|case| replay_validity(&mut conn, case))
            .sum::<f64>()
            / report.prioritized_cases.len() as f64;
        println!("| {} | {:.0}% |", target_name, avg * 100.0);
    }
    println!();
    println!(
        "Dialect differences make most bug-inducing cases non-portable — the reason a \
         testing platform must adapt to each DBMS instead of reusing hand-written \
         generators (Section 5.2 of the paper)."
    );
}
