//! A flaky-backend hunt through the self-healing connection layer: the
//! backend lies about transaction support, crashes during capability
//! probes and flaps after respawns — and the pool absorbs all of it.
//!
//! The walk-through:
//!
//! 1. **probe** — `Pool::new` runs the deterministic capability probe
//!    script on connect; the lied-about transaction claim is downgraded
//!    and the static-vs-probed disagreement recorded as drift;
//! 2. **breakers** — probe crashes and post-respawn flapping trip
//!    per-slot circuit breakers; backoff on the virtual clock re-admits
//!    the slots, and every trip and recovery lands in the incident ledger;
//! 3. **clean verdicts** — the campaign completes undegraded with zero
//!    infrastructure faults surfacing as logic-bug reports, and the
//!    rendered report is byte-identical for any pool size.
//!
//! ```bash
//! cargo run --example flaky_hunt
//! ```

use sqlancerpp::core::{
    render_report, silence_infra_panics, CampaignConfig, IncidentKind, OracleKind, Pool,
    SupervisorConfig, INFRA_MARKER,
};
use sqlancerpp::sim::{
    observed_infra_kinds, preset_by_name, run_campaign_partitioned_pooled, ExecutionPath,
    FaultyConfig,
};
use std::sync::Arc;

fn hunt_config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .seed(seed)
        .databases(3)
        .ddl_per_database(10)
        .queries_per_database(60)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(false)
        .build()
}

fn main() {
    // Injected probe crashes are panics the supervisor catches; keep the
    // default hook from spraying their backtraces over the output.
    silence_infra_panics();

    let preset = preset_by_name("sqlite")
        .expect("known preset")
        .with_infra_faults(FaultyConfig::flaky());
    let driver = preset.driver(ExecutionPath::Ast);

    // 1. The probe catches the capability lie before the generator ever
    //    sees the backend.
    println!(
        "static capability: transactions = {}",
        driver.capability().transactions
    );
    let pool = Pool::new(Arc::clone(&driver), 2).expect("flaky backend still connects");
    println!(
        "probed capability: transactions = {}",
        pool.capability().transactions
    );
    for detail in pool.drift_details() {
        println!("  drift: {detail}");
    }
    drop(pool);
    println!();

    // 2. + 3. The supervised pooled campaign rides out the storm.
    let config = hunt_config(0xF1AC);
    let supervision = SupervisorConfig::default();
    let run = run_campaign_partitioned_pooled(&driver, &config, 1, 2, &supervision);
    let report = &run.report;
    println!(
        "campaign: {} cases, degraded = {}, logic bugs = {}",
        report.metrics.test_cases, report.degraded, report.metrics.prioritized_bugs
    );
    println!(
        "resilience: {} capability drift(s), {} probe failure(s), {} breaker trip(s), {} recovery(ies)",
        report.robustness.capability_drifts,
        report.robustness.probe_failures,
        report.robustness.breaker_trips,
        report.robustness.breaker_recoveries,
    );
    println!(
        "observed infra kinds: {}",
        observed_infra_kinds(report).join(", ")
    );
    let sample = report
        .incidents
        .iter()
        .find(|incident| incident.kind == IncidentKind::BreakerTrip);
    if let Some(incident) = sample {
        println!("sample breaker incident: {}", incident.detail);
    }
    println!();

    // The guarantees, asserted: undegraded, no false positives, and the
    // report is a pure function of the seed — not of the pool size.
    assert!(!report.degraded && report.robustness.quarantines == 0);
    for bug in &report.reports {
        assert!(
            !bug.description.contains(INFRA_MARKER),
            "infrastructure fault surfaced as a logic bug: {}",
            bug.description
        );
    }
    let other_pool = run_campaign_partitioned_pooled(&driver, &config, 1, 4, &supervision);
    assert_eq!(
        render_report(report),
        render_report(&other_pool.report),
        "report must not depend on pool size"
    );
    println!("flaky hunt OK: campaign self-healed with zero false positives");
}
