//! Watch the adaptive generator learn a dialect's supported features.
//!
//! The example runs the generator against the strictly-typed, index-less
//! `cratedb` dialect and prints which features the Bayesian feedback
//! mechanism marks as unsupported over time, together with the validity
//! rate — the behaviour behind Table 4 and Section 5.4 of the paper.
//!
//! ```bash
//! cargo run --example adaptive_learning
//! ```

use sqlancerpp::core::{
    check_tlp, AdaptiveGenerator, DbmsConnection, FeatureKind, GeneratorConfig,
};
use sqlancerpp::sim::preset_by_name;

fn main() {
    let preset = preset_by_name("cratedb").expect("cratedb preset exists");
    let mut dbms = preset.instantiate();

    let mut config = GeneratorConfig::default();
    config.stats.query_threshold = 0.05;
    config.stats.min_attempts = 30;
    config.update_interval = 50;
    let mut generator = AdaptiveGenerator::new(7, config);

    // Build a database state, learning from DDL feedback along the way.
    let mut setup = Vec::new();
    for _ in 0..16 {
        let stmt = generator.generate_ddl_statement();
        let ok = dbms.execute(&stmt.sql).is_success();
        if ok {
            generator.apply_success(&stmt.statement);
            setup.push(stmt.sql.clone());
        }
        generator.record_outcome(&stmt.features, FeatureKind::DdlDml, ok);
    }

    // Issue oracle-checked queries in batches and report progress.
    let mut attempted = 0u64;
    let mut valid = 0u64;
    for batch in 1..=8 {
        for _ in 0..100 {
            let Some(query) = generator.generate_query() else {
                break;
            };
            let outcome = check_tlp(
                &mut dbms,
                &query.select,
                &query.predicate,
                &query.features,
                &setup,
            );
            attempted += 1;
            if outcome.is_valid() {
                valid += 1;
            }
            generator.record_outcome(&query.features, FeatureKind::Query, outcome.is_valid());
        }
        generator.refresh_suppression();
        let suppressed: Vec<String> = generator
            .suppressed_query_features()
            .iter()
            .map(|f| f.name().to_string())
            .collect();
        println!(
            "after {:4} test cases: validity {:.1}%, {} features marked unsupported",
            attempted,
            100.0 * valid as f64 / attempted as f64,
            suppressed.len()
        );
        if batch == 8 {
            println!(
                "\nfeatures the generator learned to avoid on `{}`:",
                dbms.name()
            );
            for name in suppressed {
                println!("  - {name}");
            }
        }
    }
}
