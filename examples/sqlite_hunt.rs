//! Quickstart for the first *real* wire backend: a testing campaign against
//! the system `sqlite3` binary driven over a subprocess pipe.
//!
//! Everything the campaign stack knows about the backend comes from the
//! [`Driver`](sqlancerpp::core::Driver) trait: a factory for connections plus
//! a [`Capability`](sqlancerpp::core::Capability) report. The sqlite-proc
//! driver reports `Capability::text_only()` — SQL text in, rows out, no AST
//! fast path, no engine-internal state checkpoints — so the campaign
//! exercises the SQL-replay fallback for every state restore, exactly the
//! contract a production DBMS offers.
//!
//! Run with: `cargo run --example sqlite_hunt`

use sqlancerpp::core::{Campaign, CampaignConfig, Driver, OracleKind, Pool, SupervisorConfig};
use sqlancerpp::sqlite::SqliteProcDriver;
use std::sync::Arc;

fn main() {
    // 1. Probe for a working sqlite3 binary. Campaigns against a real
    //    backend should degrade into a visible skip, not a panic, when the
    //    environment lacks the binary.
    let driver = Arc::new(SqliteProcDriver::system());
    if !driver.available() {
        println!("sqlite_hunt: no working `sqlite3` binary on PATH, nothing to hunt");
        return;
    }
    println!(
        "target: {} (capability: {:?})\n",
        Driver::name(driver.as_ref()),
        driver.capability()
    );

    // 2. Configure a short mixed campaign: TLP + NoREC metamorphic oracles
    //    plus the transaction-rollback oracle.
    let mut config = CampaignConfig::builder()
        .seed(0x51173)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(60)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(16)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;

    // 3. Check connections out of a deterministic pool. Reports are
    //    byte-identical for any pool size, so `2` here is purely a
    //    throughput knob.
    let mut pool = Pool::new(driver, 2).expect("sqlite3 pool connects");

    // 4. Run supervised: a crashed subprocess becomes a BackendCrash
    //    incident plus a retry, never a logic-bug report.
    let mut campaign = Campaign::new(config);
    let report = campaign.run_pooled(&mut pool, &SupervisorConfig::default());

    println!(
        "{} cases ({} valid), {} ddl statements, {} incidents, degraded={}",
        report.metrics.test_cases,
        report.metrics.valid_test_cases,
        report.metrics.ddl_statements,
        report.incidents.len(),
        report.degraded
    );
    if report.reports.is_empty() {
        println!("no divergences found (sqlite is self-consistent, as expected)");
    } else {
        for bug in &report.reports {
            println!("bug: {}", bug.description);
        }
    }
}
