//! A coverage-guided bug hunt: the campaign coverage atlas in action.
//!
//! Runs the same fixed-seed campaign twice — once with the uniform
//! scheduler, once with coverage-directed generation — and reads the
//! atlas out loud:
//!
//! * **per-oracle plane** — which grammar features each oracle exercised
//!   and how its verdicts split;
//! * **engine plane** — which plan operators, functions, coercions and
//!   statement kinds the backend reported executing;
//! * **saturation curve** — novel features per window of generated cases,
//!   the dry-run tail that signals a saturated seed, and the log2
//!   histogram of gaps between discoveries.
//!
//! The rendered atlas is byte-identical for any worker count and pool
//! size (demonstrated at the end against the partitioned runner) — the
//! same determinism contract as the campaign report itself.
//!
//! ```bash
//! cargo run --example coverage_hunt
//! ```

use sqlancerpp::core::{
    render_atlas_report, silence_infra_panics, CampaignConfig, OracleKind, SupervisorConfig,
};
use sqlancerpp::sim::{preset_by_name, run_campaign_partitioned_pooled, ExecutionPath};

fn hunt_config(seed: u64, directed: bool) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(120)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(24)
        .coverage_directed(directed)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

fn main() {
    silence_infra_panics();

    let preset = preset_by_name("dolt").expect("known preset");
    let driver = preset.driver(ExecutionPath::Ast);
    let supervision = SupervisorConfig::default();

    // The uniform arm: every allowed grammar option drawn with equal
    // weight, coverage recorded but not steering anything.
    println!("== uniform campaign (dolt) ==");
    let uniform =
        run_campaign_partitioned_pooled(&driver, &hunt_config(0xA71A5, false), 1, 1, &supervision);
    println!("{}", render_atlas_report(&uniform.report));

    // Saturation read-out: when did the campaign stop learning?
    let curve = &uniform.report.coverage.saturation;
    println!(
        "saturation: {} novel features over {} windows, longest dry run {} cases, \
         {} trailing dry cases",
        curve.novel_features,
        curve.windows.len(),
        curve.longest_dry_run,
        curve.trailing_dry_cases,
    );
    if let Some((last, rest)) = curve.windows.split_last() {
        let early: u64 = rest.iter().take(3).sum();
        println!(
            "  first three windows discovered {early} features, the last window {last} — \
             a flat tail means the seed is mined out and the budget belongs elsewhere"
        );
    }
    println!();

    // The directed arm: the same case budget, but cold features (in the
    // universe, never yet generated for this database) get a seed-stable
    // weight boost. Same determinism contract — the boost is derived from
    // the case seed, never from wall clock or thread schedule.
    println!("== coverage-directed campaign (same seed, same budget) ==");
    let directed =
        run_campaign_partitioned_pooled(&driver, &hunt_config(0xA71A5, true), 1, 1, &supervision);
    let uniform_features = uniform.report.coverage.distinct_features();
    let directed_features = directed.report.coverage.distinct_features();
    println!(
        "distinct features: {uniform_features} uniform vs {directed_features} directed \
         ({} engine points vs {})",
        uniform.report.coverage.engine.total_points(),
        directed.report.coverage.engine.total_points(),
    );
    println!(
        "directed saturation: {} novel features, longest dry run {} cases",
        directed.report.coverage.saturation.novel_features,
        directed.report.coverage.saturation.longest_dry_run,
    );
    println!();

    // Determinism: the rendered atlas of the partitioned runner is
    // byte-identical for any worker count and pool size.
    let sharded =
        run_campaign_partitioned_pooled(&driver, &hunt_config(0xA71A5, false), 4, 2, &supervision);
    assert_eq!(
        render_atlas_report(&uniform.report),
        render_atlas_report(&sharded.report),
        "the atlas must not depend on worker or pool counts"
    );
    println!("partitioned atlases: 1 worker x pool 1 == 4 workers x pool 2 (byte-identical)");
    println!(
        "campaign: {} cases, {} detected bug cases, degraded={}",
        uniform.report.metrics.test_cases,
        uniform.report.metrics.detected_bug_cases,
        uniform.report.degraded,
    );
}
