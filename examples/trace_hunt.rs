//! A traced bug hunt: the two-plane campaign flight recorder in action.
//!
//! Runs a fault-storm campaign with a [`Tracer`] attached and shows both
//! telemetry planes:
//!
//! * **deterministic plane** — per-case lifecycle events aggregated into
//!   statement/verdict counters and virtual-tick latency histograms per
//!   oracle. The rendered summary is byte-identical for any worker count
//!   or pool size (demonstrated at the end against the partitioned
//!   runner);
//! * **wall-clock plane** — live progress snapshots while the campaign
//!   runs, operational backend telemetry, and a JSONL flight-recorder
//!   dump holding the complete event history of every bug case.
//!
//! ```bash
//! cargo run --example trace_hunt
//! ```

use sqlancerpp::core::{
    render_trace_summary, silence_infra_panics, validate_jsonl, Campaign, CampaignConfig,
    OracleKind, SupervisorConfig, TraceHandle, Tracer,
};
use sqlancerpp::sim::{
    preset_by_name, run_campaign_partitioned_traced, ExecutionPath, FaultyConfig,
};
use std::cell::RefCell;
use std::rc::Rc;

fn hunt_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(120)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(true)
        .max_reduction_checks(24)
        .build();
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;
    config
}

fn main() {
    silence_infra_panics();

    let jsonl_path = std::env::temp_dir().join("trace_hunt_flight_recorder.jsonl");
    let tracer = Rc::new(RefCell::new(
        Tracer::new()
            .with_flight_recorder(32)
            .with_jsonl_path(jsonl_path.clone())
            .with_progress(50, |snapshot| {
                println!(
                    "  [live] {:>4} cases  {:>2} bugs  validity {:>5.1}%  {:>7.0} cases/s",
                    snapshot.cases,
                    snapshot.bugs,
                    snapshot.validity_rate * 100.0,
                    snapshot.cases_per_sec,
                );
            }),
    ));
    let handle: TraceHandle = tracer.clone();

    println!("== traced fault-storm campaign (dolt, every infra fault armed) ==");
    let preset = preset_by_name("dolt")
        .expect("known preset")
        .with_infra_faults(FaultyConfig::storm());
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    let mut campaign = Campaign::new(hunt_config(0x7247CE));
    campaign.set_trace(Some(handle));
    let report = campaign.run_supervised(&mut conn, &SupervisorConfig::default());
    drop(campaign);
    let tracer = Rc::try_unwrap(tracer)
        .expect("campaign released its trace handle")
        .into_inner();
    println!();

    // Deterministic plane: the latency/verdict dashboard.
    println!("{}", render_trace_summary(tracer.summary()));

    // Wall-clock plane: operational backend telemetry.
    let telemetry = tracer.telemetry();
    println!(
        "backend telemetry: {} slot checkouts, {} re-syncs ({} stmts replayed), {} respawns",
        telemetry.slot_checkouts,
        telemetry.slot_resyncs,
        telemetry.resync_statements,
        telemetry.respawns,
    );
    println!();

    // Flight-recorder forensics: every bug case keeps its complete
    // deterministic event history, pinned past any ring eviction.
    let recorder = tracer.recorder().expect("recorder configured");
    println!(
        "flight recorder: {} pinned case(s), {} recent in the ring",
        recorder.pinned().len(),
        recorder.recent().count(),
    );
    for record in recorder.pinned().iter().take(3) {
        println!(
            "  case #{} (seed {:#x}, {} oracle) -> {}:",
            record.case_index,
            record.case_seed,
            record.oracle.name(),
            record.outcome(),
        );
        for event in &record.events {
            println!("    +{:>6} ticks  {:?}", event.ticks, event.kind);
        }
    }
    println!();

    // The JSONL dump written at campaign end is self-validating.
    let text = std::fs::read_to_string(&jsonl_path).expect("JSONL flushed at campaign end");
    let lines = validate_jsonl(&text).expect("well-formed JSONL");
    println!(
        "flight recorder JSONL: {lines} lines at {}",
        jsonl_path.display()
    );
    println!();

    // Determinism: the merged trace summary of the partitioned runner is
    // byte-identical for any worker count and pool size.
    let driver = preset.driver(ExecutionPath::Ast);
    let config = hunt_config(0x7247CE);
    let supervision = SupervisorConfig::default();
    let (_, serial) = run_campaign_partitioned_traced(&driver, &config, 1, 1, &supervision);
    let (_, sharded) = run_campaign_partitioned_traced(&driver, &config, 4, 2, &supervision);
    assert_eq!(
        render_trace_summary(&serial),
        render_trace_summary(&sharded),
        "trace summaries must not depend on worker or pool counts"
    );
    println!(
        "partitioned trace summaries: 1 worker x pool 1 == 4 workers x pool 2 (byte-identical)"
    );
    println!(
        "campaign: {} cases, {} detected bug cases, {} prioritized, degraded={}",
        report.metrics.test_cases,
        report.metrics.detected_bug_cases,
        report.metrics.prioritized_bugs,
        report.degraded,
    );
}
