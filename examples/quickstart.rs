//! Quickstart: run a short SQLancer++ campaign against a simulated DBMS.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use sqlancerpp::core::{Campaign, CampaignConfig, OracleKind};
use sqlancerpp::sim::preset_by_name;

fn main() {
    // 1. Pick a DBMS under test. The `dolt` preset is a dynamically-typed
    //    dialect with several injected logic bugs.
    let preset = preset_by_name("dolt").expect("dolt preset exists");
    let mut dbms = preset.instantiate();

    // 2. Configure a campaign: how many database states to build, how many
    //    DDL statements and oracle-checked queries to issue, which oracles
    //    to use.
    let mut config = CampaignConfig::builder()
        .seed(42)
        .databases(2)
        .ddl_per_database(12)
        .queries_per_database(300)
        .oracles(vec![OracleKind::Tlp, OracleKind::NoRec])
        .build();
    // Short runs use a more permissive unsupported-feature threshold than
    // the paper's 1% (which needs hundreds of observations per feature).
    config.generator.stats.query_threshold = 0.05;
    config.generator.stats.min_attempts = 30;

    // 3. Run it.
    let mut campaign = Campaign::new(config);
    let report = campaign.run(&mut dbms);

    // 4. Inspect the results.
    println!("campaign against `{}`", report.dbms_name);
    println!("  test cases executed : {}", report.metrics.test_cases);
    println!(
        "  validity rate       : {:.1}%",
        report.metrics.validity_rate() * 100.0
    );
    println!(
        "  bug-inducing cases  : {}",
        report.metrics.detected_bug_cases
    );
    println!(
        "  prioritized bugs    : {}",
        report.metrics.prioritized_bugs
    );
    println!();
    for (i, bug) in report.reports.iter().enumerate() {
        println!("bug report #{i} ({}):", bug.oracle);
        println!("  {}", bug.description);
        for sql in bug.setup.iter().take(4) {
            println!("    {sql};");
        }
        for q in &bug.queries {
            println!("    {q};");
        }
        println!();
    }
}
