//! A fault-storm campaign: every infrastructure fault armed, the
//! supervisor riding out crashes, hangs, drops and garbled results.
//!
//! Runs a supervised campaign against dialects whose connections inject
//! seed-planned infrastructure faults, prints the incident ledger and the
//! robustness counters, and closes with the two checks the platform
//! guarantees at fleet scale:
//!
//! 1. **attribution** — every armed fault kind shows up as incidents, and
//!    disarming a kind (the ground-truth bisection) makes exactly that
//!    kind's incidents vanish;
//! 2. **no false positives** — no infrastructure failure ever surfaces as
//!    a logic-bug report.
//!
//! ```bash
//! cargo run --example fault_storm
//! ```

use sqlancerpp::core::{
    silence_infra_panics, Campaign, CampaignConfig, OracleKind, SupervisorConfig,
};
use sqlancerpp::sim::{
    infra_catalog, observed_infra_kinds, preset_by_name, ExecutionPath, FaultyConfig,
    InfraFaultKind,
};

fn storm_config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .seed(seed)
        .databases(2)
        .ddl_per_database(10)
        .queries_per_database(120)
        .oracles(vec![
            OracleKind::Tlp,
            OracleKind::NoRec,
            OracleKind::Rollback,
        ])
        .reduce_bugs(false)
        .build()
}

fn run_with_faults(dialect: &str, faults: FaultyConfig) -> sqlancerpp::core::CampaignReport {
    let preset = preset_by_name(dialect)
        .expect("known preset")
        .with_infra_faults(faults);
    let mut conn = preset.instantiate_for_path(ExecutionPath::Ast);
    Campaign::new(storm_config(0x57042)).run_supervised(&mut conn, &SupervisorConfig::default())
}

fn main() {
    // Injected backend crashes are panics the supervisor catches; keep the
    // default hook from spraying their backtraces over the output.
    silence_infra_panics();

    println!("injected infrastructure fault catalog:");
    for fault in infra_catalog() {
        println!("  {} ({}) — {}", fault.id, fault.fault, fault.description);
    }
    println!();

    println!(
        "| DBMS | cases | incidents | retries | watchdog | infra kinds observed | logic bugs |"
    );
    println!("|---|---|---|---|---|---|---|");
    for dialect in ["sqlite", "mariadb", "duckdb"] {
        let report = run_with_faults(dialect, FaultyConfig::storm());
        let kinds = observed_infra_kinds(&report);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            dialect,
            report.metrics.test_cases,
            report.robustness.incidents,
            report.robustness.retries,
            report.robustness.watchdog_trips,
            kinds.join(", "),
            report.metrics.prioritized_bugs,
        );
        // No false positives: infrastructure faults are incidents, never
        // logic-bug reports.
        assert!(
            report
                .reports
                .iter()
                .all(|bug| !bug.description.contains("infra:")),
            "an injected infrastructure fault leaked into the bug reports"
        );
    }
    println!();

    // Ground-truth bisection on one dialect: re-run the identical campaign
    // with one fault kind disarmed; exactly that kind's incidents vanish.
    let storm = run_with_faults("sqlite", FaultyConfig::storm());
    println!(
        "bisection (sqlite): storm observes {:?}",
        observed_infra_kinds(&storm)
    );
    for kind in InfraFaultKind::all() {
        let without = run_with_faults("sqlite", FaultyConfig::storm().without(kind));
        let observed = observed_infra_kinds(&without);
        assert!(
            !observed.contains(&kind.id()),
            "disarming {} must remove its incidents",
            kind.id()
        );
        println!("  without {:<12} observes {:?}", kind.id(), observed);
    }
    println!();

    let storm = run_with_faults("sqlite", FaultyConfig::storm());
    println!("sample incidents (sqlite storm):");
    for incident in storm.incidents.iter().take(6) {
        println!(
            "  db{} case{} attempt{} {:?}: {}",
            incident.database,
            incident.case_index,
            incident.attempt,
            incident.kind,
            incident.detail
        );
    }
    println!(
        "\nstorm campaign finished degraded={} quarantines={} infra_failures={}",
        storm.degraded, storm.robustness.quarantines, storm.robustness.infra_failures
    );
}
