//! Integration tests for the sqlancer-core pipeline components working
//! together against scripted mock DBMSs (no simulated engine needed).

use sql_ast::{Expr, Select, SelectItem, TableWithJoins, Value};
use sqlancer_core::{
    check_norec, check_tlp, profile_from_string, profile_to_string, AdaptiveGenerator,
    BugPrioritizer, DbmsConnection, Feature, FeatureKind, FeatureSet, GeneratorConfig, OracleKind,
    PriorityDecision, QueryResult, ReducibleCase, StatementOutcome,
};

/// A mock DBMS whose tables are always empty and that rejects a configurable
/// list of SQL substrings — enough to exercise generator learning, oracles
/// and reduction without the full engine.
struct RejectingDbms {
    rejected_tokens: Vec<&'static str>,
}

impl DbmsConnection for RejectingDbms {
    fn name(&self) -> &str {
        "rejecting-mock"
    }
    fn execute(&mut self, sql: &str) -> StatementOutcome {
        if self.rejected_tokens.iter().any(|t| sql.contains(t)) {
            StatementOutcome::Failure("unsupported feature".into())
        } else {
            StatementOutcome::Success
        }
    }
    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        if self.rejected_tokens.iter().any(|t| sql.contains(t)) {
            return Err("unsupported feature".into());
        }
        Ok(QueryResult {
            columns: vec!["c0".into()],
            rows: Vec::new(),
        })
    }
    fn reset(&mut self) {}
}

fn seeded_generator() -> AdaptiveGenerator {
    let mut config = GeneratorConfig::default();
    config.stats.query_threshold = 0.2;
    config.stats.min_attempts = 10;
    config.update_interval = 20;
    let mut generator = AdaptiveGenerator::new(123, config);
    generator.apply_success(
        &sql_parser::parse_statement("CREATE TABLE t0 (c0 INTEGER, c1 TEXT, c2 BOOLEAN)").unwrap(),
    );
    generator
}

#[test]
fn generator_oracle_loop_learns_rejected_functions() {
    // The DBMS rejects every statement containing a SIN call (the substring
    // also matches ASIN — collateral learning is acceptable and realistic).
    let mut dbms = RejectingDbms {
        rejected_tokens: vec!["SIN("],
    };
    let mut generator = seeded_generator();
    // 3000 test cases give the SIN feature comfortably more observations
    // than `min_attempts` under the workspace's deterministic RNG (function
    // calls only appear once the depth schedule opens up, so the feature is
    // rare early in the run).
    for _ in 0..3000 {
        let Some(query) = generator.generate_query() else {
            break;
        };
        let outcome = check_tlp(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        );
        generator.record_outcome(&query.features, FeatureKind::Query, outcome.is_valid());
    }
    generator.refresh_suppression();
    let suppressed: Vec<&str> = generator
        .suppressed_query_features()
        .iter()
        .map(|f| f.name())
        .collect();
    assert!(
        suppressed.contains(&"FN_SIN"),
        "suppressed = {suppressed:?}"
    );
    assert!(
        !suppressed.contains(&"FN_ABS"),
        "suppressed = {suppressed:?}"
    );
    assert!(
        !suppressed.contains(&"OP_EQ"),
        "suppressed = {suppressed:?}"
    );
}

#[test]
fn learned_profile_survives_persistence_and_keeps_decisions() {
    let mut dbms = RejectingDbms {
        rejected_tokens: vec!["<=>"],
    };
    let mut generator = seeded_generator();
    for _ in 0..800 {
        let Some(query) = generator.generate_query() else {
            break;
        };
        let outcome = check_norec(
            &mut dbms,
            &query.select,
            &query.predicate,
            &query.features,
            &[],
        );
        generator.record_outcome(&query.features, FeatureKind::Query, outcome.is_valid());
    }
    let text = profile_to_string(&generator.stats);
    let restored = profile_from_string(&text).unwrap();
    let feature = Feature::new("OP_NULLSAFE_EQ");
    let config = generator.config().stats.clone();
    assert_eq!(
        restored.is_unsupported(&feature, FeatureKind::Query, &config),
        generator
            .stats
            .is_unsupported(&feature, FeatureKind::Query, &config),
        "persistence must preserve the unsupported decision"
    );
}

#[test]
fn prioritizer_and_oracles_compose_over_a_stream_of_reports() {
    // Simulate a stream of bug-inducing feature sets as a campaign would
    // produce and verify the dedup ratio grows with repeated root causes.
    let mut prioritizer = BugPrioritizer::new();
    let mut kept = 0;
    for i in 0..200 {
        let set: FeatureSet = [
            Feature::new("OP_NEQ"),
            Feature::new(format!("FN_{}", ["NULLIF", "COALESCE", "ABS"][i % 3])),
        ]
        .into_iter()
        .collect();
        if prioritizer.classify(&set) == PriorityDecision::New {
            kept += 1;
        }
    }
    assert_eq!(kept, 3, "three distinct root-cause signatures");
    assert_eq!(prioritizer.stats().seen, 200);
    assert_eq!(prioritizer.stats().deduplicated, 197);
}

#[test]
fn reducible_case_round_trips_through_sql_text() {
    // The setup + query of a reducible case must be valid SQL text that
    // parses back — bug reports are handed to humans as plain SQL.
    let predicate = Expr::column("c0").eq(Expr::integer(1));
    let case = ReducibleCase {
        setup: vec![
            "CREATE TABLE t0 (c0 INTEGER)".to_string(),
            "INSERT INTO t0 (c0) VALUES (1), (NULL)".to_string(),
        ],
        query: Select {
            projections: vec![SelectItem::expr(Expr::column("c0"))],
            from: vec![TableWithJoins::table("t0")],
            where_clause: Some(predicate.clone()),
            ..Select::new()
        },
        predicate,
        oracle: OracleKind::Tlp,
        features: FeatureSet::new(),
    };
    for sql in case
        .setup
        .iter()
        .chain(std::iter::once(&case.query.to_string()))
    {
        assert!(
            sql_parser::parse_statement(sql).is_ok(),
            "unparseable: {sql}"
        );
    }
    assert_eq!(
        case.query.where_clause.as_ref().map(|w| w.to_string()),
        Some("(c0 = 1)".to_string())
    );
    let _ = Value::Null;
}
