//! # sqlancer-core
//!
//! The Rust reproduction of **SQLancer++** — the automated DBMS-testing
//! platform of "Scaling Automated Database System Testing" (ASPLOS 2026).
//!
//! The crate contains the paper's technical contributions:
//!
//! * [`generator`] — the **adaptive statement generator** (Section 4): it
//!   generates SQL over its own schema model, records the *feature set* of
//!   every statement, and learns from execution feedback which features the
//!   DBMS under test supports, suppressing the unsupported ones.
//! * [`schema`] — the **internal schema model** (Figure 3): schema state is
//!   tracked by simulating successful DDL, never by querying DBMS-specific
//!   metadata interfaces.
//! * [`stats`] — the **Bayesian support model** (Equations 1–3): a
//!   Beta-posterior test decides when a feature is unsupported.
//! * [`oracle`] — the DBMS-agnostic **TLP** and **NoREC** test oracles.
//! * [`prioritizer`] — the **feature-set subset** bug prioritizer (Figure 4).
//! * [`reducer`] — statement- and expression-level test-case reduction.
//! * [`campaign`] — the end-to-end loop tying everything together
//!   (Figure 2), with the metrics reported in the paper's evaluation.
//!
//! The platform talks to a DBMS only through the [`DbmsConnection`] trait
//! (SQL text in, success/failure and rows out). The `dbms-sim` crate
//! provides a fleet of simulated dialects implementing this trait.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! campaign against a simulated DBMS.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atlas;
pub mod campaign;
pub mod dbms;
pub mod driver;
pub mod feature;
pub mod generator;
pub mod hist;
pub mod oracle;
pub mod prioritizer;
pub mod profile;
pub mod reducer;
pub mod resume;
pub mod schema;
pub mod stats;
pub mod supervisor;
pub mod trace;

pub use atlas::{render_atlas_report, CampaignCoverage, OracleCoverage, SaturationCurve};
pub use campaign::{
    derive_case_seed, replay_validity, Campaign, CampaignConfig, CampaignConfigBuilder,
    CampaignMetrics, CampaignReport,
};
pub use dbms::{
    DbmsConnection, DialectQuirks, EngineCoverage, QueryResult, StateCheckpoint, StatementOutcome,
    StorageMetrics, TextOnlyConnection, SERIALIZATION_FAILURE_MARKER,
};
pub use driver::{
    Capability, Driver, Pool, ResilienceEvent, BREAKER_BACKOFF_BASE, BREAKER_SLOTS,
    BREAKER_THRESHOLD,
};
pub use feature::{feature_universe, Feature, FeatureSet};
pub use generator::{
    AdaptiveGenerator, GeneratedQuery, GeneratedSchedule, GeneratedStatement, GeneratedTxnSession,
    GeneratorConfig,
};
pub use hist::Log2Histogram;
pub use oracle::{
    check_isolation, check_norec, check_rollback, check_tlp, BugReport, IsolationVerdict,
    OracleKind, OracleOutcome, Schedule, SessionScript,
};
pub use prioritizer::{BugPrioritizer, PrioritizerStats, PriorityDecision};
pub use profile::{load_profile, profile_from_string, profile_to_string, save_profile};
pub use reducer::{BugReducer, ReducibleCase, ReductionStats, ScheduleCase, TxnCase};
pub use resume::{
    checkpoint_from_string, checkpoint_to_string, load_checkpoint, render_report, save_checkpoint,
    CampaignCheckpoint,
};
pub use schema::{ModelColumn, ModelIndex, ModelTable, SchemaModel};
pub use stats::{
    regularized_incomplete_beta, FeatureCounts, FeatureKind, FeatureStats, StatsConfig,
};
pub use supervisor::{
    classify_infra_message, silence_infra_panics, CampaignIncident, IncidentKind,
    RobustnessCounters, SupervisedCase, Supervisor, SupervisorConfig, INFRA_MARKER,
};
pub use trace::{
    render_trace_summary, validate_jsonl, BackendEvent, BackendTelemetry, CaseRecord, DialectTrace,
    FlightRecorder, FlushReason, LatencyHistogram, NoopSink, ProgressSnapshot, TraceCounters,
    TraceEvent, TraceEventKind, TraceHandle, TraceSink, TraceSummary, TraceVerdict,
    TracedConnection, Tracer,
};
