//! Crash-safe campaign checkpoint/resume.
//!
//! A supervised campaign serialises its complete progress — case cursor,
//! the adaptive generator's learned profile and RNG state, partial report,
//! prioritizer state and incident log — to a *resume file* every
//! [`crate::SupervisorConfig::checkpoint_every`] cases. A campaign killed
//! at any case index resumes from the file and produces a **byte-identical**
//! final report versus an uninterrupted run: every piece of state that
//! feeds generation, classification or reporting is carried verbatim, and
//! the file is written atomically (temp file + rename) so a crash during a
//! checkpoint leaves the previous one intact.
//!
//! The format follows the learned-profile convention ([`crate::profile`]):
//! a line-oriented text file with a `#` header, space-separated fields,
//! rest-of-line payloads for SQL (escaped `\\`, `\n`, `\r`), and `f64`
//! values stored as `to_bits` hex so they round-trip exactly. SQL
//! statements and expressions are serialised through their canonical
//! [`std::fmt::Display`] rendering and re-parsed with `sql-parser` on load
//! — the same text round-trip the platform's replay tooling already
//! guarantees.

use crate::campaign::{CampaignMetrics, CampaignReport};
use crate::dbms::StorageMetrics;
use crate::feature::{Feature, FeatureSet};
use crate::oracle::{BugReport, OracleKind, Schedule, SessionScript};
use crate::prioritizer::PrioritizerStats;
use crate::reducer::{ReducibleCase, ScheduleCase, TxnCase};
use crate::schema::{ModelColumn, ModelIndex, ModelTable, SchemaModel};
use crate::stats::{FeatureCounts, FeatureKind, FeatureStats};
use crate::supervisor::{CampaignIncident, IncidentKind, RobustnessCounters};
use sql_ast::{BeginMode, DataType, Expr, Select, Statement};
use sql_parser::{parse_expression, parse_statement};
use std::fmt::Write as _;
use std::path::Path;

/// The header line every checkpoint file starts with. v4 added the
/// connection-layer resilience ledger (`resil` tag) and the
/// breaker/probe robustness counters; v3 added the coverage-atlas block
/// (`cov*` tags); v2 added the watchdog deadline/observed virtual-tick
/// fields to incident lines. Older versions are rejected (a
/// version-mismatch load fails, and the campaign starts fresh — safe,
/// just slower than resuming).
const HEADER: &str = "# sqlancer++ campaign checkpoint v4";

/// A complete snapshot of a running campaign: everything needed to resume
/// it to a byte-identical final report.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    /// The campaign seed (sanity-checked against the resuming config).
    pub config_seed: u64,
    /// The database index the campaign was working on.
    pub database: usize,
    /// The next case index (within the database) to execute.
    pub next_case: usize,
    /// The campaign-global oracle rotation cursor.
    pub oracle_index: usize,
    /// The generator RNG's raw state word.
    pub rng_state: u64,
    /// Executions recorded by the generator (drives suppression refresh and
    /// the depth schedule).
    pub recorded: u64,
    /// The generator's current expression-depth cap.
    pub current_depth: usize,
    /// The internal schema model, verbatim (its name counter advances even
    /// for rejected DDL, so it cannot be rebuilt by replay).
    pub schema: SchemaModel,
    /// The learned feature statistics.
    pub stats: FeatureStats,
    /// The suppressed query features, verbatim (suppression only refreshes
    /// at update-interval boundaries, so it is state, not derived data).
    pub suppressed_query: Vec<Feature>,
    /// The suppressed DDL/DML features, verbatim.
    pub suppressed_ddl: Vec<Feature>,
    /// The prioritizer's kept feature sets, in insertion order.
    pub kept_sets: Vec<FeatureSet>,
    /// The prioritizer's statistics (not recomputable from the kept sets).
    pub prioritizer_stats: PrioritizerStats,
    /// The current database's replayable setup log.
    pub setup_log: Vec<String>,
    /// Storage-metric delta accumulated over completed work (the resumed
    /// run samples a fresh baseline and adds to this).
    pub storage_delta: StorageMetrics,
    /// The supervisor's consecutive-infrastructure-failure count.
    pub consecutive_infra: u32,
    /// The connection layer's opaque resilience ledger (per-slot breaker
    /// and backoff state plus the resilience clock), as produced by
    /// [`crate::DbmsConnection::resilience_checkpoint`]. `None` for
    /// connections without one (unpooled backends).
    pub resilience: Option<String>,
    /// The partial report: metrics, bug reports, replayable cases,
    /// validity series, incidents, robustness counters, degraded flag.
    pub report: CampaignReport,
}

// ------------------------------------------------------------ escaping ----

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

// ----------------------------------------------------------- rendering ----

fn oracle_name(kind: OracleKind) -> &'static str {
    kind.name()
}

fn oracle_from_name(name: &str) -> Result<OracleKind, String> {
    Ok(match name {
        "TLP" => OracleKind::Tlp,
        "NoREC" => OracleKind::NoRec,
        "ROLLBACK" => OracleKind::Rollback,
        "ISOLATION" => OracleKind::Isolation,
        other => return Err(format!("unknown oracle '{other}'")),
    })
}

fn begin_mode_name(mode: BeginMode) -> &'static str {
    match mode {
        BeginMode::Plain => "plain",
        BeginMode::Deferred => "deferred",
        BeginMode::Immediate => "immediate",
    }
}

fn begin_mode_from_name(name: &str) -> Result<BeginMode, String> {
    Ok(match name {
        "plain" => BeginMode::Plain,
        "deferred" => BeginMode::Deferred,
        "immediate" => BeginMode::Immediate,
        other => return Err(format!("unknown begin mode '{other}'")),
    })
}

fn write_features(out: &mut String, tag: &str, features: &FeatureSet) {
    out.push_str(tag);
    for feature in features.iter() {
        out.push(' ');
        out.push_str(feature.name());
    }
    out.push('\n');
}

fn features_from(rest: &str) -> FeatureSet {
    rest.split_whitespace().map(Feature::new).collect()
}

fn write_metrics(out: &mut String, metrics: &CampaignMetrics) {
    let _ = writeln!(
        out,
        "metrics {} {} {} {} {} {} {} {} {} {} {} {} {}",
        metrics.ddl_statements,
        metrics.ddl_successes,
        metrics.test_cases,
        metrics.valid_test_cases,
        metrics.detected_bug_cases,
        metrics.prioritized_bugs,
        metrics.deduplicated_bugs,
        metrics.isolation_schedules,
        metrics.conflict_aborts,
        metrics.txn_begins,
        metrics.tables_snapshotted,
        metrics.tables_cow_cloned,
        metrics.conflicts_avoided,
    );
}

fn write_counters(out: &mut String, counters: &RobustnessCounters) {
    let _ = writeln!(
        out,
        "counters {} {} {} {} {} {} {} {} {} {} {} {} {}",
        counters.incidents,
        counters.retries,
        counters.watchdog_trips,
        counters.backoff_ticks,
        counters.quarantines,
        counters.oracle_panics,
        counters.infra_failures,
        counters.storage_metric_errors,
        counters.recovered_workers,
        counters.breaker_trips,
        counters.breaker_recoveries,
        counters.probe_failures,
        counters.capability_drifts,
    );
}

fn write_incident(out: &mut String, incident: &CampaignIncident) {
    let _ = writeln!(
        out,
        "incident {} {} {} {} {} {} {}",
        incident.kind.name(),
        incident.database,
        incident.case_index,
        incident.attempt,
        incident.deadline_ticks,
        incident.observed_ticks,
        escape(&incident.detail),
    );
}

fn write_coverage(out: &mut String, coverage: &crate::atlas::CampaignCoverage) {
    for (oracle, per_oracle) in &coverage.oracles {
        let _ = writeln!(out, "covo {oracle} {}", per_oracle.cases);
        for (verdict, count) in &per_oracle.verdicts {
            let _ = writeln!(out, "covv {oracle} {verdict} {count}");
        }
        write_features(out, &format!("covf {oracle}"), &per_oracle.features);
    }
    for (plane, points) in &coverage.engine.planes {
        for point in points {
            let _ = writeln!(out, "cove {plane} {}", escape(point));
        }
    }
    let curve = &coverage.saturation;
    let _ = writeln!(
        out,
        "covs {} {} {} {}",
        curve.novel_features, curve.trailing_dry_cases, curve.longest_dry_run, coverage.dry_run
    );
    if !curve.windows.is_empty() {
        out.push_str("covw");
        for count in &curve.windows {
            let _ = write!(out, " {count}");
        }
        out.push('\n');
        out.push_str("covc");
        for count in &curve.window_cases {
            let _ = write!(out, " {count}");
        }
        out.push('\n');
    }
    if !curve.gaps.is_empty() {
        let _ = writeln!(out, "covg {} {}", curve.gaps.sum(), curve.gaps.max());
        for (index, _, count) in curve.gaps.nonzero_buckets() {
            let _ = writeln!(out, "covgb {index} {count}");
        }
    }
    if !coverage.seen.is_empty() {
        // Feature names never contain whitespace or ':', so `name:mask`
        // tokens round-trip the per-database novelty map exactly,
        // including the oracle-membership hint bits. The map is hashed
        // for probe speed; sorting here keeps checkpoint files
        // byte-stable.
        let mut seen: Vec<_> = coverage.seen.iter().collect();
        seen.sort_by(|a, b| a.0.cmp(b.0));
        out.push_str("covn");
        for (feature, mask) in seen {
            let _ = write!(out, " {}:{mask}", feature.name());
        }
        out.push('\n');
    }
}

fn write_bug(out: &mut String, bug: &BugReport) {
    let _ = writeln!(out, "bug {}", oracle_name(bug.oracle));
    let _ = writeln!(out, "bd {}", escape(&bug.description));
    for sql in &bug.setup {
        let _ = writeln!(out, "bs {}", escape(sql));
    }
    for sql in &bug.queries {
        let _ = writeln!(out, "bq {}", escape(sql));
    }
    write_features(out, "bf", &bug.features);
    out.push_str("end\n");
}

fn write_case(out: &mut String, case: &ReducibleCase) {
    let _ = writeln!(out, "case {}", oracle_name(case.oracle));
    for sql in &case.setup {
        let _ = writeln!(out, "cs {}", escape(sql));
    }
    let _ = writeln!(out, "cq {}", escape(&case.query.to_string()));
    let _ = writeln!(out, "cp {}", escape(&case.predicate.to_string()));
    write_features(out, "cf", &case.features);
    out.push_str("end\n");
}

fn write_txn_case(out: &mut String, case: &TxnCase) {
    let _ = writeln!(out, "txn {}", case.table);
    for sql in &case.setup {
        let _ = writeln!(out, "ts {}", escape(sql));
    }
    for stmt in &case.statements {
        let _ = writeln!(out, "tm {}", escape(&stmt.to_string()));
    }
    write_features(out, "tf", &case.features);
    out.push_str("end\n");
}

fn write_schedule_case(out: &mut String, case: &ScheduleCase) {
    out.push_str("sched\n");
    for sql in &case.setup {
        let _ = writeln!(out, "ss {}", escape(sql));
    }
    out.push_str("st");
    for table in &case.schedule.tables {
        out.push(' ');
        out.push_str(table);
    }
    out.push('\n');
    for session in &case.schedule.sessions {
        let _ = writeln!(
            out,
            "sn {} {}",
            begin_mode_name(session.begin),
            u8::from(session.commit)
        );
        for stmt in &session.statements {
            let _ = writeln!(out, "sm {}", escape(&stmt.to_string()));
        }
    }
    out.push_str("si");
    for &step in &case.schedule.interleaving {
        let _ = write!(out, " {step}");
    }
    out.push('\n');
    write_features(out, "sf", &case.features);
    out.push_str("end\n");
}

/// Serialises a checkpoint to the resume-file text format.
pub fn checkpoint_to_string(checkpoint: &CampaignCheckpoint) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let _ = writeln!(out, "dialect {}", escape(&checkpoint.report.dbms_name));
    let _ = writeln!(out, "seed {}", checkpoint.config_seed);
    let _ = writeln!(
        out,
        "cursor {} {} {}",
        checkpoint.database, checkpoint.next_case, checkpoint.oracle_index
    );
    let _ = writeln!(
        out,
        "rng {} {} {}",
        checkpoint.rng_state, checkpoint.recorded, checkpoint.current_depth
    );
    let _ = writeln!(
        out,
        "super {} {}",
        checkpoint.consecutive_infra,
        u8::from(checkpoint.report.degraded)
    );
    // Schema model. Object and column names are generator-produced
    // (`t0`, `c3`, ...) and contain no whitespace.
    let _ = writeln!(out, "schema_counter {}", checkpoint.schema.name_counter());
    for table in checkpoint.schema.tables() {
        let _ = writeln!(
            out,
            "table {} {} {}",
            u8::from(table.is_view),
            table.approx_rows,
            table.name
        );
        for col in &table.columns {
            let _ = writeln!(
                out,
                "col {} {} {} {} {}",
                u8::from(col.not_null),
                u8::from(col.primary_key),
                col.data_type.sql_keyword(),
                table.name,
                col.name
            );
        }
    }
    for index in checkpoint.schema.indexes() {
        let _ = write!(
            out,
            "index {} {} {}",
            u8::from(index.unique),
            index.name,
            index.table
        );
        for col in &index.columns {
            out.push(' ');
            out.push_str(col);
        }
        out.push('\n');
    }
    // Learned statistics and suppression sets.
    for (tag, entries) in [
        ("Q", checkpoint.stats.iter_query().collect::<Vec<_>>()),
        ("D", checkpoint.stats.iter_ddl().collect::<Vec<_>>()),
    ] {
        for (feature, counts) in entries {
            let _ = writeln!(
                out,
                "stat {tag} {} {} {} {}",
                feature.name(),
                counts.attempts,
                counts.successes,
                counts.consecutive_failures
            );
        }
    }
    for feature in &checkpoint.suppressed_query {
        let _ = writeln!(out, "supq {}", feature.name());
    }
    for feature in &checkpoint.suppressed_ddl {
        let _ = writeln!(out, "supd {}", feature.name());
    }
    // Prioritizer.
    for set in &checkpoint.kept_sets {
        write_features(&mut out, "kept", set);
    }
    let _ = writeln!(
        out,
        "pstats {} {} {}",
        checkpoint.prioritizer_stats.seen,
        checkpoint.prioritizer_stats.prioritized,
        checkpoint.prioritizer_stats.deduplicated
    );
    // Report scalars.
    write_metrics(&mut out, &checkpoint.report.metrics);
    let _ = writeln!(
        out,
        "storage {} {} {} {}",
        checkpoint.storage_delta.txn_begins,
        checkpoint.storage_delta.tables_snapshotted,
        checkpoint.storage_delta.tables_cow_cloned,
        checkpoint.storage_delta.conflicts_avoided
    );
    write_counters(&mut out, &checkpoint.report.robustness);
    if let Some(resilience) = &checkpoint.resilience {
        let _ = writeln!(out, "resil {}", escape(resilience));
    }
    write_coverage(&mut out, &checkpoint.report.coverage);
    for sample in &checkpoint.report.validity_series {
        let _ = writeln!(out, "v {:016x}", sample.to_bits());
    }
    for sql in &checkpoint.setup_log {
        let _ = writeln!(out, "setup {}", escape(sql));
    }
    for incident in &checkpoint.report.incidents {
        write_incident(&mut out, incident);
    }
    for bug in &checkpoint.report.reports {
        write_bug(&mut out, bug);
    }
    for case in &checkpoint.report.prioritized_cases {
        write_case(&mut out, case);
    }
    for case in &checkpoint.report.txn_cases {
        write_txn_case(&mut out, case);
    }
    for case in &checkpoint.report.schedule_cases {
        write_schedule_case(&mut out, case);
    }
    out
}

// ------------------------------------------------------------- parsing ----

// One in-flight block per parse, so the variant size spread is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Block {
    None,
    Bug(BugReport),
    Case(ReducibleCase),
    Txn(TxnCase),
    Sched(ScheduleCase),
}

fn err(line_no: usize, message: impl std::fmt::Display) -> String {
    format!("checkpoint line {}: {message}", line_no + 1)
}

fn parse_u64(line_no: usize, s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| err(line_no, format_args!("malformed number '{s}'")))
}

fn parse_usize(line_no: usize, s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| err(line_no, format_args!("malformed number '{s}'")))
}

fn parse_flag(line_no: usize, s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(err(line_no, format_args!("malformed flag '{other}'"))),
    }
}

fn parse_u64_list(line_no: usize, rest: &str) -> Result<Vec<u64>, String> {
    rest.split_whitespace()
        .map(|s| parse_u64(line_no, s))
        .collect()
}

fn fields(line_no: usize, rest: &str, want: usize) -> Result<Vec<&str>, String> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() != want {
        return Err(err(
            line_no,
            format_args!("expected {want} fields, got {}", parts.len()),
        ));
    }
    Ok(parts)
}

fn parse_stmt(line_no: usize, sql: &str) -> Result<Statement, String> {
    parse_statement(sql).map_err(|e| err(line_no, e))
}

/// Parses a checkpoint produced by [`checkpoint_to_string`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
#[allow(clippy::too_many_lines)]
pub fn checkpoint_from_string(text: &str) -> Result<CampaignCheckpoint, String> {
    let mut checkpoint = CampaignCheckpoint {
        config_seed: 0,
        database: 0,
        next_case: 0,
        oracle_index: 0,
        rng_state: 0,
        recorded: 0,
        current_depth: 0,
        schema: SchemaModel::new(),
        stats: FeatureStats::new(),
        suppressed_query: Vec::new(),
        suppressed_ddl: Vec::new(),
        kept_sets: Vec::new(),
        prioritizer_stats: PrioritizerStats::default(),
        setup_log: Vec::new(),
        storage_delta: StorageMetrics::default(),
        consecutive_infra: 0,
        resilience: None,
        report: CampaignReport::default(),
    };
    let mut saw_header = false;
    let mut tables: Vec<ModelTable> = Vec::new();
    let mut indexes: Vec<ModelIndex> = Vec::new();
    let mut name_counter = 0usize;
    let mut block = Block::None;

    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if line == HEADER {
                saw_header = true;
            }
            continue;
        }
        let (tag, rest) = match line.split_once(' ') {
            Some((tag, rest)) => (tag, rest),
            None => (line, ""),
        };
        // Block-scoped tags first.
        match &mut block {
            Block::Bug(bug) => match tag {
                "bd" => {
                    bug.description = unescape(rest);
                    continue;
                }
                "bs" => {
                    bug.setup.push(unescape(rest));
                    continue;
                }
                "bq" => {
                    bug.queries.push(unescape(rest));
                    continue;
                }
                "bf" => {
                    bug.features = features_from(rest);
                    continue;
                }
                "end" => {
                    let done = std::mem::replace(&mut block, Block::None);
                    if let Block::Bug(bug) = done {
                        checkpoint.report.reports.push(bug);
                    }
                    continue;
                }
                _ => {
                    return Err(err(
                        line_no,
                        format_args!("unexpected '{tag}' in bug block"),
                    ))
                }
            },
            Block::Case(case) => match tag {
                "cs" => {
                    case.setup.push(unescape(rest));
                    continue;
                }
                "cq" => {
                    let stmt = parse_stmt(line_no, &unescape(rest))?;
                    let Statement::Select(select) = stmt else {
                        return Err(err(line_no, "case query is not a SELECT"));
                    };
                    case.query = *select;
                    continue;
                }
                "cp" => {
                    case.predicate =
                        parse_expression(&unescape(rest)).map_err(|e| err(line_no, e))?;
                    continue;
                }
                "cf" => {
                    case.features = features_from(rest);
                    continue;
                }
                "end" => {
                    let done = std::mem::replace(&mut block, Block::None);
                    if let Block::Case(case) = done {
                        checkpoint.report.prioritized_cases.push(case);
                    }
                    continue;
                }
                _ => {
                    return Err(err(
                        line_no,
                        format_args!("unexpected '{tag}' in case block"),
                    ))
                }
            },
            Block::Txn(case) => match tag {
                "ts" => {
                    case.setup.push(unescape(rest));
                    continue;
                }
                "tm" => {
                    case.statements.push(parse_stmt(line_no, &unescape(rest))?);
                    continue;
                }
                "tf" => {
                    case.features = features_from(rest);
                    continue;
                }
                "end" => {
                    let done = std::mem::replace(&mut block, Block::None);
                    if let Block::Txn(case) = done {
                        checkpoint.report.txn_cases.push(case);
                    }
                    continue;
                }
                _ => {
                    return Err(err(
                        line_no,
                        format_args!("unexpected '{tag}' in txn block"),
                    ))
                }
            },
            Block::Sched(case) => match tag {
                "ss" => {
                    case.setup.push(unescape(rest));
                    continue;
                }
                "st" => {
                    case.schedule.tables = rest.split_whitespace().map(str::to_string).collect();
                    continue;
                }
                "sn" => {
                    let parts = fields(line_no, rest, 2)?;
                    case.schedule.sessions.push(SessionScript {
                        begin: begin_mode_from_name(parts[0]).map_err(|e| err(line_no, e))?,
                        statements: Vec::new(),
                        commit: parse_flag(line_no, parts[1])?,
                    });
                    continue;
                }
                "sm" => {
                    let stmt = parse_stmt(line_no, &unescape(rest))?;
                    let Some(session) = case.schedule.sessions.last_mut() else {
                        return Err(err(line_no, "session statement before any session"));
                    };
                    session.statements.push(stmt);
                    continue;
                }
                "si" => {
                    case.schedule.interleaving = rest
                        .split_whitespace()
                        .map(|s| {
                            s.parse::<u8>()
                                .map_err(|_| err(line_no, format_args!("malformed step '{s}'")))
                        })
                        .collect::<Result<Vec<u8>, String>>()?;
                    continue;
                }
                "sf" => {
                    case.features = features_from(rest);
                    continue;
                }
                "end" => {
                    let done = std::mem::replace(&mut block, Block::None);
                    if let Block::Sched(case) = done {
                        checkpoint.report.schedule_cases.push(case);
                    }
                    continue;
                }
                _ => {
                    return Err(err(
                        line_no,
                        format_args!("unexpected '{tag}' in schedule block"),
                    ))
                }
            },
            Block::None => {}
        }
        match tag {
            "dialect" => checkpoint.report.dbms_name = unescape(rest),
            "seed" => checkpoint.config_seed = parse_u64(line_no, rest.trim())?,
            "cursor" => {
                let parts = fields(line_no, rest, 3)?;
                checkpoint.database = parse_usize(line_no, parts[0])?;
                checkpoint.next_case = parse_usize(line_no, parts[1])?;
                checkpoint.oracle_index = parse_usize(line_no, parts[2])?;
            }
            "rng" => {
                let parts = fields(line_no, rest, 3)?;
                checkpoint.rng_state = parse_u64(line_no, parts[0])?;
                checkpoint.recorded = parse_u64(line_no, parts[1])?;
                checkpoint.current_depth = parse_usize(line_no, parts[2])?;
            }
            "super" => {
                let parts = fields(line_no, rest, 2)?;
                checkpoint.consecutive_infra = parse_u64(line_no, parts[0])? as u32;
                checkpoint.report.degraded = parse_flag(line_no, parts[1])?;
            }
            "schema_counter" => name_counter = parse_usize(line_no, rest.trim())?,
            "table" => {
                let parts = fields(line_no, rest, 3)?;
                tables.push(ModelTable {
                    name: parts[2].to_string(),
                    columns: Vec::new(),
                    is_view: parse_flag(line_no, parts[0])?,
                    approx_rows: parse_usize(line_no, parts[1])?,
                });
            }
            "col" => {
                let parts = fields(line_no, rest, 5)?;
                let data_type = DataType::from_keyword(parts[2])
                    .ok_or_else(|| err(line_no, format_args!("unknown type '{}'", parts[2])))?;
                let table = tables
                    .iter_mut()
                    .find(|t| t.name == parts[3])
                    .ok_or_else(|| {
                        err(
                            line_no,
                            format_args!("column for unknown table '{}'", parts[3]),
                        )
                    })?;
                table.columns.push(ModelColumn {
                    name: parts[4].to_string(),
                    data_type,
                    not_null: parse_flag(line_no, parts[0])?,
                    primary_key: parse_flag(line_no, parts[1])?,
                });
            }
            "index" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() < 3 {
                    return Err(err(line_no, "index needs unique, name, table"));
                }
                indexes.push(ModelIndex {
                    name: parts[1].to_string(),
                    table: parts[2].to_string(),
                    columns: parts[3..].iter().map(|s| s.to_string()).collect(),
                    unique: parse_flag(line_no, parts[0])?,
                });
            }
            "stat" => {
                let parts = fields(line_no, rest, 5)?;
                let kind = match parts[0] {
                    "Q" => FeatureKind::Query,
                    "D" => FeatureKind::DdlDml,
                    other => return Err(err(line_no, format_args!("unknown category '{other}'"))),
                };
                checkpoint.stats.load_counts(
                    Feature::new(parts[1].to_string()),
                    kind,
                    FeatureCounts {
                        attempts: parse_u64(line_no, parts[2])?,
                        successes: parse_u64(line_no, parts[3])?,
                        consecutive_failures: parse_u64(line_no, parts[4])?,
                    },
                );
            }
            "supq" => checkpoint
                .suppressed_query
                .push(Feature::new(rest.trim().to_string())),
            "supd" => checkpoint
                .suppressed_ddl
                .push(Feature::new(rest.trim().to_string())),
            "kept" => checkpoint.kept_sets.push(features_from(rest)),
            "pstats" => {
                let parts = fields(line_no, rest, 3)?;
                checkpoint.prioritizer_stats = PrioritizerStats {
                    seen: parse_usize(line_no, parts[0])?,
                    prioritized: parse_usize(line_no, parts[1])?,
                    deduplicated: parse_usize(line_no, parts[2])?,
                };
            }
            "metrics" => {
                let parts = fields(line_no, rest, 13)?;
                let n = |i: usize| parse_u64(line_no, parts[i]);
                checkpoint.report.metrics = CampaignMetrics {
                    ddl_statements: n(0)?,
                    ddl_successes: n(1)?,
                    test_cases: n(2)?,
                    valid_test_cases: n(3)?,
                    detected_bug_cases: n(4)?,
                    prioritized_bugs: n(5)?,
                    deduplicated_bugs: n(6)?,
                    isolation_schedules: n(7)?,
                    conflict_aborts: n(8)?,
                    txn_begins: n(9)?,
                    tables_snapshotted: n(10)?,
                    tables_cow_cloned: n(11)?,
                    conflicts_avoided: n(12)?,
                };
            }
            "storage" => {
                let parts = fields(line_no, rest, 4)?;
                checkpoint.storage_delta = StorageMetrics {
                    txn_begins: parse_u64(line_no, parts[0])?,
                    tables_snapshotted: parse_u64(line_no, parts[1])?,
                    tables_cow_cloned: parse_u64(line_no, parts[2])?,
                    conflicts_avoided: parse_u64(line_no, parts[3])?,
                };
            }
            "counters" => {
                let parts = fields(line_no, rest, 13)?;
                let n = |i: usize| parse_u64(line_no, parts[i]);
                checkpoint.report.robustness = RobustnessCounters {
                    incidents: n(0)?,
                    retries: n(1)?,
                    watchdog_trips: n(2)?,
                    backoff_ticks: n(3)?,
                    quarantines: n(4)?,
                    oracle_panics: n(5)?,
                    infra_failures: n(6)?,
                    storage_metric_errors: n(7)?,
                    recovered_workers: n(8)?,
                    breaker_trips: n(9)?,
                    breaker_recoveries: n(10)?,
                    probe_failures: n(11)?,
                    capability_drifts: n(12)?,
                };
            }
            "resil" => {
                checkpoint.resilience = Some(unescape(rest));
            }
            "covo" => {
                let parts = fields(line_no, rest, 2)?;
                let entry = checkpoint
                    .report
                    .coverage
                    .oracles
                    .entry(parts[0].to_string())
                    .or_default();
                entry.cases = parse_u64(line_no, parts[1])?;
            }
            "covv" => {
                let parts = fields(line_no, rest, 3)?;
                let entry = checkpoint
                    .report
                    .coverage
                    .oracles
                    .entry(parts[0].to_string())
                    .or_default();
                entry
                    .verdicts
                    .insert(parts[1].to_string(), parse_u64(line_no, parts[2])?);
            }
            "covf" => {
                let (oracle, names) = rest.split_once(' ').unwrap_or((rest, ""));
                if oracle.is_empty() {
                    return Err(err(line_no, "coverage features need an oracle"));
                }
                checkpoint
                    .report
                    .coverage
                    .oracles
                    .entry(oracle.to_string())
                    .or_default()
                    .features = features_from(names);
            }
            "cove" => {
                let (plane, point) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(line_no, "engine point needs plane and point"))?;
                checkpoint
                    .report
                    .coverage
                    .engine
                    .record(plane, &unescape(point));
            }
            "covs" => {
                let parts = fields(line_no, rest, 4)?;
                let coverage = &mut checkpoint.report.coverage;
                coverage.saturation.novel_features = parse_u64(line_no, parts[0])?;
                coverage.saturation.trailing_dry_cases = parse_u64(line_no, parts[1])?;
                coverage.saturation.longest_dry_run = parse_u64(line_no, parts[2])?;
                coverage.dry_run = parse_u64(line_no, parts[3])?;
            }
            "covw" => {
                checkpoint.report.coverage.saturation.windows = parse_u64_list(line_no, rest)?;
            }
            "covc" => {
                checkpoint.report.coverage.saturation.window_cases = parse_u64_list(line_no, rest)?;
            }
            "covg" => {
                let parts = fields(line_no, rest, 2)?;
                checkpoint
                    .report
                    .coverage
                    .saturation
                    .gaps
                    .restore_stats(parse_u64(line_no, parts[0])?, parse_u64(line_no, parts[1])?);
            }
            "covgb" => {
                let parts = fields(line_no, rest, 2)?;
                checkpoint.report.coverage.saturation.gaps.restore_bucket(
                    parse_usize(line_no, parts[0])?,
                    parse_u64(line_no, parts[1])?,
                );
            }
            "covn" => {
                for token in rest.split_whitespace() {
                    let (name, mask) = token.split_once(':').ok_or_else(|| {
                        err(line_no, format_args!("malformed seen-feature '{token}'"))
                    })?;
                    let mask = mask.parse::<u8>().map_err(|_| {
                        err(line_no, format_args!("malformed seen-feature '{token}'"))
                    })?;
                    checkpoint
                        .report
                        .coverage
                        .seen
                        .insert(Feature::new(name), mask);
                }
            }
            "v" => {
                let bits = u64::from_str_radix(rest.trim(), 16)
                    .map_err(|_| err(line_no, format_args!("malformed sample '{rest}'")))?;
                checkpoint.report.validity_series.push(f64::from_bits(bits));
            }
            "setup" => checkpoint.setup_log.push(unescape(rest)),
            "incident" => {
                let (head, detail) = {
                    let mut parts = rest.splitn(7, ' ');
                    let kind = parts.next().unwrap_or("");
                    let database = parts.next().unwrap_or("");
                    let case_index = parts.next().unwrap_or("");
                    let attempt = parts.next().unwrap_or("");
                    let deadline = parts.next().unwrap_or("");
                    let observed = parts.next().unwrap_or("");
                    let detail = parts.next().unwrap_or("");
                    (
                        [kind, database, case_index, attempt, deadline, observed],
                        detail,
                    )
                };
                let kind = IncidentKind::parse(head[0])
                    .ok_or_else(|| err(line_no, format_args!("unknown incident '{}'", head[0])))?;
                checkpoint.report.incidents.push(CampaignIncident {
                    kind,
                    database: parse_usize(line_no, head[1])?,
                    case_index: parse_u64(line_no, head[2])?,
                    attempt: parse_u64(line_no, head[3])? as u32,
                    deadline_ticks: parse_u64(line_no, head[4])?,
                    observed_ticks: parse_u64(line_no, head[5])?,
                    detail: unescape(detail),
                });
            }
            "bug" => {
                block = Block::Bug(BugReport {
                    oracle: oracle_from_name(rest.trim()).map_err(|e| err(line_no, e))?,
                    description: String::new(),
                    setup: Vec::new(),
                    queries: Vec::new(),
                    features: FeatureSet::new(),
                });
            }
            "case" => {
                block = Block::Case(ReducibleCase {
                    setup: Vec::new(),
                    query: Select::new(),
                    predicate: Expr::boolean(true),
                    oracle: oracle_from_name(rest.trim()).map_err(|e| err(line_no, e))?,
                    features: FeatureSet::new(),
                });
            }
            "txn" => {
                block = Block::Txn(TxnCase {
                    setup: Vec::new(),
                    table: rest.trim().to_string(),
                    statements: Vec::new(),
                    features: FeatureSet::new(),
                });
            }
            "sched" => {
                block = Block::Sched(ScheduleCase {
                    setup: Vec::new(),
                    schedule: Schedule {
                        tables: Vec::new(),
                        sessions: Vec::new(),
                        interleaving: Vec::new(),
                    },
                    features: FeatureSet::new(),
                });
            }
            other => return Err(err(line_no, format_args!("unknown tag '{other}'"))),
        }
    }
    if !saw_header {
        return Err("not a campaign checkpoint (missing header)".to_string());
    }
    if !matches!(block, Block::None) {
        return Err("unterminated block at end of checkpoint".to_string());
    }
    checkpoint.schema = SchemaModel::restore(tables, indexes, name_counter);
    Ok(checkpoint)
}

// ----------------------------------------------------------------- I/O ----

/// Writes a checkpoint atomically: the text is written to `<path>.tmp` and
/// renamed over `path`, so a crash mid-write leaves the previous checkpoint
/// intact (rename is atomic on POSIX filesystems).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_checkpoint(checkpoint: &CampaignCheckpoint, path: &Path) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, checkpoint_to_string(checkpoint))?;
    std::fs::rename(&tmp, path)
}

/// Loads a checkpoint from a file.
///
/// # Errors
///
/// Propagates I/O errors and format errors.
pub fn load_checkpoint(path: &Path) -> Result<CampaignCheckpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    checkpoint_from_string(&text)
}

// ---------------------------------------------------- report rendering ----

/// Renders a campaign report to a canonical text form. Two reports render
/// identically **iff** every reported quantity — metrics, robustness
/// counters, incidents, bug reports, replayable cases and the validity
/// series (bit-exact) — is identical, which is how the resume-determinism
/// tests and the CI fault-storm gate state their byte-identity claims.
pub fn render_report(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# campaign report: {}", report.dbms_name);
    let _ = writeln!(out, "degraded {}", u8::from(report.degraded));
    write_metrics(&mut out, &report.metrics);
    write_counters(&mut out, &report.robustness);
    for sample in &report.validity_series {
        let _ = writeln!(out, "v {:016x}", sample.to_bits());
    }
    for incident in &report.incidents {
        write_incident(&mut out, incident);
    }
    for bug in &report.reports {
        write_bug(&mut out, bug);
    }
    for case in &report.prioritized_cases {
        write_case(&mut out, case);
    }
    for case in &report.txn_cases {
        write_txn_case(&mut out, case);
    }
    for case in &report.schedule_cases {
        write_schedule_case(&mut out, case);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_ast::SelectItem;

    fn feature_set(names: &[&str]) -> FeatureSet {
        names.iter().map(|n| Feature::new(n.to_string())).collect()
    }

    fn sample_checkpoint() -> CampaignCheckpoint {
        let mut schema = SchemaModel::new();
        schema.apply_success(&parse_statement("CREATE TABLE t0 (c0 INTEGER, c1 TEXT)").unwrap());
        schema.apply_success(&parse_statement("CREATE INDEX i0 ON t0(c0)").unwrap());
        schema.apply_success(&parse_statement("INSERT INTO t0 (c0, c1) VALUES (1, 'x')").unwrap());
        // Advance the name counter past the object count: rejected DDL and
        // query-time aliases burn names without creating objects, and the
        // checkpoint must carry the counter verbatim, not recompute it.
        let _ = schema.free_name("t");
        let _ = schema.free_name("sub");
        let _ = schema.free_name("alias");

        let mut stats = FeatureStats::new();
        stats.record(&feature_set(&["OP_EQ", "FN_ABS"]), FeatureKind::Query, true);
        stats.record(&feature_set(&["OP_EQ"]), FeatureKind::Query, false);
        stats.record(&feature_set(&["TYPE_TEXT"]), FeatureKind::DdlDml, true);

        let select = Select {
            projections: vec![SelectItem::expr(Expr::column("c0"))],
            from: vec![sql_ast::TableWithJoins::table("t0")],
            where_clause: Some(Expr::column("c0").eq(Expr::integer(1))),
            ..Select::new()
        };
        let predicate = Expr::column("c0").eq(Expr::integer(1));

        let mut report = CampaignReport {
            dbms_name: "simdb (mariadb)".to_string(),
            ..CampaignReport::default()
        };
        report.degraded = true;
        report.metrics.test_cases = 42;
        report.metrics.valid_test_cases = 40;
        report.validity_series = vec![0.5, 0.975, 1.0 / 3.0];
        report.robustness.retries = 3;
        report.robustness.incidents = 2;
        report.incidents.push(CampaignIncident {
            kind: IncidentKind::BackendCrash,
            database: 1,
            case_index: 17,
            attempt: 0,
            deadline_ticks: 100_000,
            observed_ticks: 312,
            detail: "infra: backend crashed (injected infra_crash)".to_string(),
        });
        report.reports.push(BugReport {
            oracle: OracleKind::Tlp,
            description: "TLP mismatch: base 2 rows, partitions 1".to_string(),
            setup: vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()],
            queries: vec!["SELECT c0 FROM t0".to_string()],
            features: feature_set(&["OP_EQ"]),
        });
        report.prioritized_cases.push(ReducibleCase {
            setup: vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()],
            query: select,
            predicate,
            oracle: OracleKind::Tlp,
            features: feature_set(&["OP_EQ"]),
        });
        report.txn_cases.push(TxnCase {
            setup: vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()],
            table: "t0".to_string(),
            statements: vec![
                parse_statement("INSERT INTO t0 (c0) VALUES (1)").unwrap(),
                parse_statement("SAVEPOINT sp1").unwrap(),
                parse_statement("ROLLBACK TO sp1").unwrap(),
            ],
            features: feature_set(&["TXN_SAVEPOINT"]),
        });
        report.coverage.begin_database();
        report.coverage.observe_case(
            OracleKind::Tlp,
            crate::trace::TraceVerdict::Pass,
            &feature_set(&["OP_EQ", "FN_ABS"]),
            0,
        );
        report.coverage.observe_case(
            OracleKind::NoRec,
            crate::trace::TraceVerdict::Invalid,
            &feature_set(&["OP_EQ"]),
            1,
        );
        let mut engine = crate::dbms::EngineCoverage::default();
        engine.record("functions", "ABS");
        engine.record("statements", "STMT_SELECT");
        report.coverage.absorb_engine(&engine);
        report.schedule_cases.push(ScheduleCase {
            setup: vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()],
            schedule: Schedule {
                tables: vec!["t0".to_string()],
                sessions: vec![
                    SessionScript {
                        begin: BeginMode::Plain,
                        statements: vec![
                            parse_statement("UPDATE t0 SET c0 = 2 WHERE (c0 = 1)").unwrap()
                        ],
                        commit: true,
                    },
                    SessionScript {
                        begin: BeginMode::Immediate,
                        statements: vec![parse_statement("DELETE FROM t0").unwrap()],
                        commit: false,
                    },
                ],
                interleaving: vec![0, 1, 0, 1, 0, 1],
            },
            features: feature_set(&["ISO_SCHEDULE"]),
        });

        CampaignCheckpoint {
            config_seed: 0xBEEF,
            database: 1,
            next_case: 17,
            oracle_index: 53,
            rng_state: 0x1234_5678_9ABC_DEF0,
            recorded: 99,
            current_depth: 4,
            schema,
            stats,
            suppressed_query: vec![Feature::new("OP_NULLSAFE_EQ")],
            suppressed_ddl: vec![Feature::new("TYPE_BOOLEAN")],
            kept_sets: vec![feature_set(&["OP_EQ"]), FeatureSet::new()],
            prioritizer_stats: PrioritizerStats {
                seen: 5,
                prioritized: 2,
                deduplicated: 3,
            },
            setup_log: vec![
                "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)".to_string(),
                "INSERT INTO t0 (c0, c1) VALUES (1, 'a\nb\\c')".to_string(),
            ],
            storage_delta: StorageMetrics {
                txn_begins: 7,
                tables_snapshotted: 14,
                tables_cow_cloned: 3,
                conflicts_avoided: 1,
            },
            consecutive_infra: 2,
            resilience: Some(
                "v1 clock 42 | 1 closed 0 0 | 0 open 50 2 | 0 half 0 1 | 0 closed 0 0".to_string(),
            ),
            report,
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let original = sample_checkpoint();
        let text = checkpoint_to_string(&original);
        let loaded = checkpoint_from_string(&text).unwrap();
        // The text format is the equality witness: a second serialisation
        // of the parsed checkpoint must be byte-identical.
        assert_eq!(checkpoint_to_string(&loaded), text);
        // Spot-check the semantically critical fields directly too.
        assert_eq!(loaded.config_seed, original.config_seed);
        assert_eq!(loaded.rng_state, original.rng_state);
        assert_eq!(loaded.schema, original.schema);
        assert_eq!(loaded.setup_log, original.setup_log);
        assert_eq!(loaded.kept_sets, original.kept_sets);
        assert_eq!(loaded.prioritizer_stats, original.prioritizer_stats);
        assert_eq!(loaded.consecutive_infra, original.consecutive_infra);
        assert_eq!(loaded.resilience, original.resilience);
        assert_eq!(loaded.report.degraded, original.report.degraded);
        assert_eq!(loaded.report.metrics, original.report.metrics);
        assert_eq!(loaded.report.robustness, original.report.robustness);
        assert_eq!(loaded.report.incidents, original.report.incidents);
        assert_eq!(loaded.report.reports, original.report.reports);
        // The atlas — including the per-database working state that keeps
        // a resumed novelty stream exact — is carried verbatim.
        assert_eq!(loaded.report.coverage, original.report.coverage);
        // f64 samples round-trip bit-exactly through the hex encoding.
        assert_eq!(
            loaded
                .report
                .validity_series
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            original
                .report
                .validity_series
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn schema_name_counter_is_carried_verbatim() {
        let original = sample_checkpoint();
        let text = checkpoint_to_string(&original);
        let loaded = checkpoint_from_string(&text).unwrap();
        assert_eq!(loaded.schema.name_counter(), original.schema.name_counter());
        assert!(loaded.schema.name_counter() > loaded.schema.object_count());
    }

    #[test]
    fn save_and_load_are_atomic_via_rename() {
        let dir =
            std::env::temp_dir().join(format!("sqlancerpp-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let original = sample_checkpoint();
        save_checkpoint(&original, &path).unwrap();
        // The temp file must be gone after a successful save.
        assert!(!dir.join("campaign.ckpt.tmp").exists());
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(
            checkpoint_to_string(&loaded),
            checkpoint_to_string(&original)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        assert!(checkpoint_from_string("").is_err(), "missing header");
        assert!(
            checkpoint_from_string("seed 1\n").is_err(),
            "missing header"
        );
        assert!(
            checkpoint_from_string(&format!("{HEADER}\nwhatisthis 1\n")).is_err(),
            "unknown tag"
        );
        assert!(
            checkpoint_from_string(&format!("{HEADER}\nbug TLP\nbd x\n")).is_err(),
            "unterminated block"
        );
        assert!(
            checkpoint_from_string(&format!("{HEADER}\ncursor 1 2\n")).is_err(),
            "wrong arity"
        );
        assert!(
            checkpoint_from_string(&format!("{HEADER}\nbug NOPE\nend\n")).is_err(),
            "unknown oracle"
        );
        // A valid minimal checkpoint parses.
        assert!(checkpoint_from_string(&format!("{HEADER}\nseed 7\n")).is_ok());
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        for hostile in [
            "plain",
            "back\\slash",
            "new\nline",
            "carriage\rreturn",
            "\\n literal",
            "trailing\\",
            "mix\\\n\r\\r",
        ] {
            assert_eq!(unescape(&escape(hostile)), hostile, "{hostile:?}");
            assert!(!escape(hostile).contains('\n'));
            assert!(!escape(hostile).contains('\r'));
        }
    }

    #[test]
    fn render_report_distinguishes_differing_reports() {
        let base = sample_checkpoint().report;
        let rendered = render_report(&base);
        assert!(rendered.contains("degraded 1"));
        let mut tweaked = base.clone();
        tweaked.metrics.valid_test_cases += 1;
        assert_ne!(render_report(&tweaked), rendered);
        let mut tweaked = base.clone();
        tweaked.validity_series[0] += 1e-15;
        assert_ne!(render_report(&tweaked), rendered, "bit-exact series");
        assert_eq!(render_report(&base.clone()), rendered);
    }
}
