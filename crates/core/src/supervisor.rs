//! Fault-tolerant case supervision: deadline watchdog, bounded
//! deterministic retry, panic isolation and dialect quarantine.
//!
//! The paper's platform fuzzes *opaque* backends over a text-only boundary;
//! real backends crash, hang, drop connections and return garbage
//! mid-campaign. The supervisor runs every oracle test case under a
//! recovery protocol so a misbehaving backend degrades the campaign
//! gracefully instead of killing it:
//!
//! * every case attempt is wrapped in [`std::panic::catch_unwind`] — a
//!   panicking oracle (or a backend crash modelled as a panic) becomes a
//!   recorded [`CampaignIncident`], never a dead worker or a poisoned lock;
//! * a **deadline watchdog** samples the connection's *virtual clock*
//!   ([`crate::DbmsConnection::virtual_ticks`]) around each attempt — no
//!   wall time ever enters a supervision decision, which keeps supervised
//!   campaigns byte-identical across machines and runs;
//! * infrastructure failures (recognised by the [`INFRA_MARKER`] message
//!   convention, the same opaque-text contract as
//!   [`crate::SERIALIZATION_FAILURE_MARKER`]) are retried a bounded number
//!   of times with exponential *virtual* backoff, after rebuilding the
//!   backend state from the setup log;
//! * a dialect that fails [`SupervisorConfig::quarantine_threshold`]
//!   consecutive cases on infrastructure errors is **quarantined**: its
//!   partial report is marked degraded and returned, and the rest of the
//!   fleet keeps running.
//!
//! Incidents are bookkeeping, not bugs: an infrastructure failure never
//! reaches the prioritizer or the bug reports, so injected faults cannot
//! surface as false-positive logic bugs.

use crate::dbms::DbmsConnection;
use crate::driver::ResilienceEvent;
use crate::oracle::OracleOutcome;
use crate::trace::{emit, TraceEventKind, TraceHandle, TraceVerdict};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// The marker substring by which the platform recognises an
/// *infrastructure* failure (backend crash, hang, dropped connection,
/// garbled result frame) in an otherwise opaque error message or panic
/// payload. Like [`crate::SERIALIZATION_FAILURE_MARKER`], this convention
/// is the whole interface: the platform never inspects the backend, it
/// only reads error text.
pub const INFRA_MARKER: &str = "infra:";

/// The kind of a supervision incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentKind {
    /// The backend crashed mid-case (a panic carrying [`INFRA_MARKER`]).
    BackendCrash,
    /// A case attempt overran the virtual-clock deadline, or the backend
    /// reported a hang.
    WatchdogTimeout,
    /// The connection was dropped transiently.
    ConnectionDrop,
    /// A result frame arrived garbled/truncated (checksum mismatch).
    GarbledResult,
    /// An oracle panicked without an infrastructure marker: an internal
    /// platform error, isolated and recorded rather than retried.
    OraclePanic,
    /// The backend's storage counters could not be read.
    StorageMetricsError,
    /// A fleet/shard worker thread died and its work was re-run or
    /// abandoned by the runner.
    WorkerPanic,
    /// The runtime capability probe itself failed on a transport error
    /// (backend died mid-probe) — distinct from [`IncidentKind::BackendCrash`]
    /// because a probe-time death points at connect/respawn handling, not
    /// at the case workload.
    ProbeFailure,
    /// The runtime probe contradicted the driver's static capability claim:
    /// the affected feature families were downgraded and re-suppressed.
    CapabilityDrift,
    /// A pool virtual slot opened its circuit breaker after consecutive
    /// infrastructure-classified case failures.
    BreakerTrip,
    /// A half-open breaker's probe case succeeded and the slot was
    /// readmitted.
    BreakerRecovery,
}

impl IncidentKind {
    /// The canonical (checkpoint-file) name.
    pub fn name(&self) -> &'static str {
        match self {
            IncidentKind::BackendCrash => "backend_crash",
            IncidentKind::WatchdogTimeout => "watchdog_timeout",
            IncidentKind::ConnectionDrop => "connection_drop",
            IncidentKind::GarbledResult => "garbled_result",
            IncidentKind::OraclePanic => "oracle_panic",
            IncidentKind::StorageMetricsError => "storage_metrics_error",
            IncidentKind::WorkerPanic => "worker_panic",
            IncidentKind::ProbeFailure => "probe_failure",
            IncidentKind::CapabilityDrift => "capability_drift",
            IncidentKind::BreakerTrip => "breaker_trip",
            IncidentKind::BreakerRecovery => "breaker_recovery",
        }
    }

    /// Parses a canonical name back (checkpoint loading).
    pub fn parse(name: &str) -> Option<IncidentKind> {
        Some(match name {
            "backend_crash" => IncidentKind::BackendCrash,
            "watchdog_timeout" => IncidentKind::WatchdogTimeout,
            "connection_drop" => IncidentKind::ConnectionDrop,
            "garbled_result" => IncidentKind::GarbledResult,
            "oracle_panic" => IncidentKind::OraclePanic,
            "storage_metrics_error" => IncidentKind::StorageMetricsError,
            "worker_panic" => IncidentKind::WorkerPanic,
            "probe_failure" => IncidentKind::ProbeFailure,
            "capability_drift" => IncidentKind::CapabilityDrift,
            "breaker_trip" => IncidentKind::BreakerTrip,
            "breaker_recovery" => IncidentKind::BreakerRecovery,
            _ => return None,
        })
    }
}

/// Classifies an [`INFRA_MARKER`]-carrying message into an incident kind.
///
/// The injected fault catalog embeds its fault ids (`infra_crash`, ...) in
/// every message it produces, so attribution is exact for injected faults;
/// unknown infrastructure messages default to a connection drop, the most
/// generic transient failure.
pub fn classify_infra_message(message: &str) -> IncidentKind {
    let lower = message.to_ascii_lowercase();
    // Probe/capability attribution runs first: a backend that dies *during
    // the capability probe* is a connect/respawn problem, not a case-workload
    // crash, and a capability lie is a contract violation rather than a
    // transient fault — folding either into `BackendCrash` would hide the
    // self-healing layer's own failure modes from the ledger.
    if message.contains("infra_capability_lie") || lower.contains("capability drift") {
        return IncidentKind::CapabilityDrift;
    }
    if message.contains("infra_probe")
        || lower.contains("capability probe")
        || lower.contains("connect probe")
    {
        return IncidentKind::ProbeFailure;
    }
    if message.contains("infra_crash")
        // Wire backends: a dead subprocess surfaces as an exited child or a
        // broken stdin/stdout pipe. Always a backend crash, never a logic
        // bug.
        || lower.contains("process exited")
        || lower.contains("broken pipe")
        || lower.contains("epipe")
        || lower.contains("unexpected eof")
    {
        IncidentKind::BackendCrash
    } else if message.contains("infra_hang") {
        IncidentKind::WatchdogTimeout
    } else if message.contains("infra_garble") {
        IncidentKind::GarbledResult
    } else {
        IncidentKind::ConnectionDrop
    }
}

/// One recorded supervision incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignIncident {
    /// What happened.
    pub kind: IncidentKind,
    /// The database index the campaign was building when it happened.
    pub database: usize,
    /// The campaign-global test-case counter at the time.
    pub case_index: u64,
    /// Which attempt at the case failed (0 = first try).
    pub attempt: u32,
    /// The watchdog's virtual-tick deadline that governed the attempt
    /// ([`SupervisorConfig::deadline_ticks`]; 0 for incidents recorded
    /// outside a supervised case attempt, e.g. storage-counter failures).
    pub deadline_ticks: u64,
    /// The virtual ticks the attempt was observed to consume. Together
    /// with [`CampaignIncident::deadline_ticks`] this makes hang
    /// incidents diagnosable from the ledger alone — "overran by how
    /// much" survives into checkpoints and merged fleet reports.
    pub observed_ticks: u64,
    /// The opaque backend/panic message (single line).
    pub detail: String,
}

/// Aggregate robustness counters for a supervised campaign. Reported next
/// to [`crate::CampaignMetrics`]; like them, they merge across shards and
/// dialects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessCounters {
    /// Total incidents recorded (of any kind).
    pub incidents: u64,
    /// Case attempts re-run after an infrastructure failure.
    pub retries: u64,
    /// Case attempts that overran the virtual-clock deadline.
    pub watchdog_trips: u64,
    /// Virtual ticks spent in retry backoff (exponential, deterministic).
    pub backoff_ticks: u64,
    /// Dialect quarantines (0 or 1 per campaign).
    pub quarantines: u64,
    /// Oracle panics isolated by `catch_unwind`.
    pub oracle_panics: u64,
    /// Cases abandoned after exhausting their retry budget.
    pub infra_failures: u64,
    /// Failed storage-counter reads (previously swallowed as zeros).
    pub storage_metric_errors: u64,
    /// Worker threads whose shard was recovered after a panic or a
    /// poisoned result lock.
    pub recovered_workers: u64,
    /// Pool circuit breakers opened after consecutive infra failures.
    pub breaker_trips: u64,
    /// Half-open breaker probes that readmitted their slot.
    pub breaker_recoveries: u64,
    /// Capability probes that failed on a transport error.
    pub probe_failures: u64,
    /// Static-vs-probed capability disagreements (one per database the
    /// downgrade was re-announced for).
    pub capability_drifts: u64,
}

impl RobustnessCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &RobustnessCounters) {
        self.incidents += other.incidents;
        self.retries += other.retries;
        self.watchdog_trips += other.watchdog_trips;
        self.backoff_ticks += other.backoff_ticks;
        self.quarantines += other.quarantines;
        self.oracle_panics += other.oracle_panics;
        self.infra_failures += other.infra_failures;
        self.storage_metric_errors += other.storage_metric_errors;
        self.recovered_workers += other.recovered_workers;
        self.breaker_trips += other.breaker_trips;
        self.breaker_recoveries += other.breaker_recoveries;
        self.probe_failures += other.probe_failures;
        self.capability_drifts += other.capability_drifts;
    }
}

/// Supervision policy for a campaign. The default is deliberately inert
/// for well-behaved backends: no checkpointing, no case budget, and a
/// watchdog/retry machinery that only ever acts on panics, virtual-clock
/// overruns or [`INFRA_MARKER`] messages — none of which a fault-free
/// backend produces — so a supervised campaign over a healthy backend is
/// byte-identical to the unsupervised loop it replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Virtual-tick budget per case attempt; an attempt whose connection
    /// clock advances further trips the watchdog and is retried.
    pub deadline_ticks: u64,
    /// Retries per case after the first attempt (so a case is attempted at
    /// most `max_retries + 1` times).
    pub max_retries: u32,
    /// First retry's backoff in virtual ticks; doubles per attempt.
    pub backoff_base_ticks: u64,
    /// Consecutive retry-exhausted cases after which the dialect is
    /// quarantined (its partial report marked degraded). `0` disables
    /// quarantine.
    pub quarantine_threshold: u32,
    /// Write a resume checkpoint every N completed cases (requires
    /// [`SupervisorConfig::checkpoint_path`]; `0` disables cadence).
    pub checkpoint_every: u64,
    /// Where to write resume checkpoints (atomically: temp file + rename).
    pub checkpoint_path: Option<PathBuf>,
    /// Abort the run (as a crash would) once this many cases completed —
    /// the deterministic "kill at case k" used by resume tests. No final
    /// checkpoint is written at the stop: like a real kill, progress since
    /// the last cadence checkpoint is lost.
    pub stop_after_cases: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            deadline_ticks: 100_000,
            max_retries: 3,
            backoff_base_ticks: 16,
            quarantine_threshold: 8,
            checkpoint_every: 0,
            checkpoint_path: None,
            stop_after_cases: None,
        }
    }
}

/// The verdict of a supervised case execution.
#[derive(Debug)]
pub enum SupervisedCase {
    /// The case ran to an oracle outcome (possibly after retries).
    Completed(OracleOutcome),
    /// Every attempt failed on infrastructure errors; the case was
    /// abandoned and counts toward quarantine.
    InfraFailed,
    /// The oracle panicked without an infrastructure marker; the case was
    /// abandoned (an internal error will not heal by retrying).
    Panicked,
}

/// The per-campaign supervision runtime: policy plus accumulated
/// incidents, counters and the consecutive-failure state driving
/// quarantine. Serialized into campaign checkpoints so a resumed campaign
/// carries its incident history.
#[derive(Clone)]
pub struct Supervisor {
    config: SupervisorConfig,
    /// Robustness counters accumulated so far.
    pub counters: RobustnessCounters,
    /// Incidents recorded so far, in occurrence order.
    pub incidents: Vec<CampaignIncident>,
    consecutive_infra: u32,
    trace: Option<TraceHandle>,
    /// The seed of the case currently inside [`Supervisor::run_case`]
    /// (0 outside), stamping ledger trace events.
    case_seed: u64,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("config", &self.config)
            .field("counters", &self.counters)
            .field("incidents", &self.incidents)
            .field("consecutive_infra", &self.consecutive_infra)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// Creates a supervisor with empty history.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor {
            config,
            counters: RobustnessCounters::default(),
            incidents: Vec::new(),
            consecutive_infra: 0,
            trace: None,
            case_seed: 0,
        }
    }

    /// Recreates a supervisor from checkpointed history.
    pub fn with_state(
        config: SupervisorConfig,
        counters: RobustnessCounters,
        incidents: Vec<CampaignIncident>,
        consecutive_infra: u32,
    ) -> Supervisor {
        Supervisor {
            config,
            counters,
            incidents,
            consecutive_infra,
            trace: None,
            case_seed: 0,
        }
    }

    /// Attaches a trace sink: retry, incident and verdict events stream
    /// into it from every supervised case.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// The supervision policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Consecutive cases abandoned on infrastructure errors (quarantine
    /// trigger state).
    pub fn consecutive_infra(&self) -> u32 {
        self.consecutive_infra
    }

    /// Whether the dialect has crossed the quarantine threshold.
    pub fn should_quarantine(&self) -> bool {
        self.config.quarantine_threshold > 0
            && self.consecutive_infra >= self.config.quarantine_threshold
    }

    /// Records an incident in the supervision ledger (and on the trace,
    /// stamped with the incident's `observed_ticks`). The detail text is
    /// flattened to a single line. `deadline_ticks`/`observed_ticks` are
    /// the watchdog budget governing the attempt and the virtual ticks it
    /// was observed to consume (0/0 for incidents recorded outside a case
    /// attempt).
    pub fn record(&mut self, incident: CampaignIncident) {
        self.counters.incidents += 1;
        emit(
            &self.trace,
            self.case_seed,
            incident.observed_ticks,
            TraceEventKind::Incident {
                kind: incident.kind,
            },
        );
        self.incidents.push(CampaignIncident {
            detail: single_line(&incident.detail),
            ..incident
        });
    }

    /// Runs one oracle case under supervision: panic isolation, the
    /// virtual-clock watchdog, bounded retry with state recovery, and
    /// quarantine accounting. `check` must be re-runnable — the campaign
    /// generates the case data once and the closure only executes it.
    pub fn run_case(
        &mut self,
        conn: &mut dyn DbmsConnection,
        setup_log: &[String],
        database: usize,
        case_index: u64,
        case_seed: u64,
        check: &mut dyn FnMut(&mut dyn DbmsConnection) -> OracleOutcome,
    ) -> SupervisedCase {
        let mut attempt: u32 = 0;
        self.case_seed = case_seed;
        loop {
            // `begin_case` runs inside the unwind guard: for a pooled
            // connection it performs slot checkout, lazy re-sync and (after a
            // respawn) the capability re-probe, any of which can legitimately
            // panic with an `infra:` message. Outside the guard such a panic
            // would kill the whole campaign instead of becoming an incident.
            let ticks_before: Cell<Option<u64>> = Cell::new(None);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                conn.begin_case(case_seed);
                ticks_before.set(Some(conn.virtual_ticks()));
                check(conn)
            }));
            // `None` means the attempt died inside `begin_case` itself —
            // before any case work — so it consumed no case ticks.
            let elapsed = match ticks_before.get() {
                Some(before) => conn.virtual_ticks().saturating_sub(before),
                None => 0,
            };
            let failure: Option<(IncidentKind, String)> = match &caught {
                Err(payload) => {
                    let detail = panic_message(payload.as_ref());
                    if detail.contains(INFRA_MARKER) {
                        Some((classify_infra_message(&detail), detail))
                    } else {
                        // An internal platform error: isolate it, rebuild
                        // the backend state and abandon the case — retrying
                        // deterministic code cannot heal it.
                        self.counters.oracle_panics += 1;
                        self.record(CampaignIncident {
                            kind: IncidentKind::OraclePanic,
                            database,
                            case_index,
                            attempt,
                            deadline_ticks: self.config.deadline_ticks,
                            observed_ticks: elapsed,
                            detail,
                        });
                        self.consecutive_infra = 0;
                        recover(conn, setup_log);
                        self.settle_case(conn, case_seed, database, case_index, false);
                        self.finish_case(TraceVerdict::Panicked, elapsed);
                        return SupervisedCase::Panicked;
                    }
                }
                Ok(outcome) if elapsed > self.config.deadline_ticks => {
                    self.counters.watchdog_trips += 1;
                    let mut detail = format!(
                        "case attempt overran deadline: {elapsed} virtual ticks > {} budget",
                        self.config.deadline_ticks
                    );
                    // Keep the backend's own failure text (and with it the
                    // injected-fault attribution, e.g. `infra_hang`) when
                    // the overrun came with one.
                    if let Some((_, message)) = infra_failure(outcome) {
                        detail.push_str(": ");
                        detail.push_str(&message);
                    }
                    Some((IncidentKind::WatchdogTimeout, detail))
                }
                Ok(outcome) => infra_failure(outcome),
            };
            let Some((kind, detail)) = failure else {
                self.consecutive_infra = 0;
                // Safe mode for the post-case work (reduction, setup-log
                // replay): a fault planned for a statement index the check
                // never reached must not fire mid-reduction.
                conn.begin_case(0);
                self.settle_case(conn, case_seed, database, case_index, false);
                let outcome = match caught {
                    Ok(outcome) => outcome,
                    Err(_) => unreachable!("non-failure verdicts come from Ok attempts"),
                };
                let verdict = match &outcome {
                    OracleOutcome::Passed => TraceVerdict::Pass,
                    OracleOutcome::Invalid(_) => TraceVerdict::Invalid,
                    OracleOutcome::Bug(_) => TraceVerdict::Bug,
                };
                self.finish_case(verdict, elapsed);
                return SupervisedCase::Completed(outcome);
            };
            match kind {
                IncidentKind::ProbeFailure => self.counters.probe_failures += 1,
                IncidentKind::CapabilityDrift => self.counters.capability_drifts += 1,
                _ => {}
            }
            self.record(CampaignIncident {
                kind,
                database,
                case_index,
                attempt,
                deadline_ticks: self.config.deadline_ticks,
                observed_ticks: elapsed,
                detail,
            });
            recover(conn, setup_log);
            if attempt >= self.config.max_retries {
                self.counters.infra_failures += 1;
                self.consecutive_infra += 1;
                self.settle_case(conn, case_seed, database, case_index, true);
                self.finish_case(TraceVerdict::InfraFailed, elapsed);
                return SupervisedCase::InfraFailed;
            }
            // Deterministic exponential backoff on the virtual clock; no
            // wall time is spent or consulted.
            self.counters.retries += 1;
            let backoff = self.config.backoff_base_ticks << attempt.min(16);
            self.counters.backoff_ticks += backoff;
            emit(
                &self.trace,
                case_seed,
                backoff,
                TraceEventKind::Retry { attempt, kind },
            );
            attempt += 1;
        }
    }

    /// Settles the case's final attempt with the connection layer and
    /// drains its resilience events (breaker trips/recoveries, capability
    /// drift re-announcements) into the incident ledger. Called exactly
    /// once per case, on every `run_case` return path, so the breaker
    /// ledger advances in case order — a pure function of the seed
    /// schedule, independent of pool size and worker count.
    fn settle_case(
        &mut self,
        conn: &mut dyn DbmsConnection,
        case_seed: u64,
        database: usize,
        case_index: u64,
        infra_failed: bool,
    ) {
        conn.note_case_outcome(case_seed, infra_failed);
        for event in conn.drain_resilience_events() {
            let (kind, detail) = match event {
                ResilienceEvent::CapabilityDrift { detail } => {
                    self.counters.capability_drifts += 1;
                    (IncidentKind::CapabilityDrift, detail)
                }
                ResilienceEvent::BreakerTripped {
                    vslot,
                    clock,
                    until,
                } => {
                    self.counters.breaker_trips += 1;
                    (
                        IncidentKind::BreakerTrip,
                        format!(
                            "slot breaker opened: virtual slot {vslot} tripped at \
                             resilience clock {clock}, detouring checkouts until clock {until}"
                        ),
                    )
                }
                ResilienceEvent::BreakerRecovered { vslot, clock } => {
                    self.counters.breaker_recoveries += 1;
                    (
                        IncidentKind::BreakerRecovery,
                        format!(
                            "slot breaker closed: virtual slot {vslot} readmitted at \
                             resilience clock {clock}"
                        ),
                    )
                }
            };
            self.record(CampaignIncident {
                kind,
                database,
                case_index,
                attempt: 0,
                deadline_ticks: 0,
                observed_ticks: 0,
                detail,
            });
        }
    }

    /// Emits the case's verdict event and leaves case scope.
    fn finish_case(&mut self, verdict: TraceVerdict, elapsed: u64) {
        emit(
            &self.trace,
            self.case_seed,
            elapsed,
            TraceEventKind::Verdict { verdict },
        );
        self.case_seed = 0;
    }
}

/// Rebuilds the backend state after a failed attempt: safe mode (no fault
/// arming), full reset, setup-log replay. Mirrors the campaign's own
/// post-reduction rebuild, so a recovered backend is observably identical
/// to one that never failed.
fn recover(conn: &mut dyn DbmsConnection, setup_log: &[String]) {
    conn.begin_case(0);
    conn.reset();
    for sql in setup_log {
        let _ = conn.execute(sql);
    }
}

/// Extracts the infrastructure failure from an oracle outcome, if any. A
/// `Bug` carrying the marker is treated as an infrastructure failure too —
/// defence in depth for the "incidents never surface as logic bugs"
/// guarantee.
fn infra_failure(outcome: &OracleOutcome) -> Option<(IncidentKind, String)> {
    let message = match outcome {
        OracleOutcome::Invalid(message) if message.contains(INFRA_MARKER) => message.clone(),
        OracleOutcome::Bug(bug) if bug.description.contains(INFRA_MARKER) => {
            bug.description.clone()
        }
        _ => return None,
    };
    Some((classify_infra_message(&message), message))
}

/// Installs a process-global panic hook that silences panics carrying
/// [`INFRA_MARKER`] — injected backend crashes that the supervisor catches,
/// records and recovers from — while delegating every other panic to the
/// previously installed hook. Without this, every caught crash still spews
/// a backtrace to stderr through the default hook. Call it once at process
/// start (examples, benches, CI gates); libraries and tests work fine
/// without it, just noisily.
pub fn silence_infra_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let silenced = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains(INFRA_MARKER))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains(INFRA_MARKER))
            })
            .unwrap_or(false);
        if !silenced {
            previous(info);
        }
    }));
}

/// Renders a panic payload as a single-line string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Collapses a message to one line (checkpoint files are line-oriented and
/// incident details are embedded in them escaped, but keeping details
/// single-line also keeps logs readable).
fn single_line(message: &str) -> String {
    if message.contains('\n') || message.contains('\r') {
        message
            .split(['\n', '\r'])
            .filter(|part| !part.is_empty())
            .collect::<Vec<_>>()
            .join(" | ")
    } else {
        message.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbms::{DialectQuirks, QueryResult, StatementOutcome};

    /// A bookkeeping connection for supervisor tests: the failing
    /// behaviour itself is scripted by each test's check closure; the
    /// connection just counts attempts, resets, ticks and replayed setup.
    struct FlakyConn {
        attempt: u32,
        ticks: u64,
        resets: u64,
        replayed: Vec<String>,
    }

    impl FlakyConn {
        fn new() -> FlakyConn {
            FlakyConn {
                attempt: 0,
                ticks: 0,
                resets: 0,
                replayed: Vec::new(),
            }
        }
    }

    impl DbmsConnection for FlakyConn {
        fn name(&self) -> &str {
            "flaky"
        }
        fn execute(&mut self, sql: &str) -> StatementOutcome {
            self.ticks += 1;
            self.replayed.push(sql.to_string());
            StatementOutcome::Success
        }
        fn query(&mut self, _sql: &str) -> Result<QueryResult, String> {
            self.ticks += 1;
            Ok(QueryResult::default())
        }
        fn reset(&mut self) {
            self.resets += 1;
        }
        fn quirks(&self) -> DialectQuirks {
            DialectQuirks::default()
        }
        fn begin_case(&mut self, case_seed: u64) {
            if case_seed != 0 {
                self.attempt += 1;
            }
        }
        fn virtual_ticks(&self) -> u64 {
            self.ticks
        }
    }

    #[test]
    fn infra_invalid_outcomes_are_retried_until_success() {
        // Script the failure through the check closure instead: first two
        // attempts report an infra drop, third passes.
        let mut conn = FlakyConn::new();
        let mut supervisor = Supervisor::new(SupervisorConfig::default());
        let setup: Vec<String> = Vec::new();
        let result = supervisor.run_case(&mut conn, &setup, 0, 7, 1, &mut |conn| {
            if conn.virtual_ticks() < 2 {
                conn.query("SELECT 1").ok();
                OracleOutcome::Invalid(
                    "infra: connection reset by peer (injected infra_drop)".into(),
                )
            } else {
                OracleOutcome::Passed
            }
        });
        assert!(matches!(
            result,
            SupervisedCase::Completed(OracleOutcome::Passed)
        ));
        assert_eq!(supervisor.counters.retries, 2);
        assert_eq!(supervisor.counters.incidents, 2);
        assert_eq!(supervisor.incidents[0].kind, IncidentKind::ConnectionDrop);
        assert_eq!(supervisor.consecutive_infra(), 0);
    }

    #[test]
    fn infra_panics_are_caught_and_retried() {
        let mut conn = FlakyConn::new();
        let mut supervisor = Supervisor::new(SupervisorConfig::default());
        let setup = vec!["CREATE TABLE t0 (c0 INTEGER)".to_string()];
        let mut attempts = 0u32;
        let result = supervisor.run_case(&mut conn, &setup, 1, 3, 9, &mut |_conn| {
            attempts += 1;
            if attempts <= 2 {
                panic!("infra: backend crashed (injected infra_crash)");
            }
            OracleOutcome::Passed
        });
        assert!(matches!(
            result,
            SupervisedCase::Completed(OracleOutcome::Passed)
        ));
        assert_eq!(supervisor.counters.incidents, 2);
        assert_eq!(supervisor.incidents[0].kind, IncidentKind::BackendCrash);
        // Recovery replayed the setup log after each failure.
        assert_eq!(conn.resets, 2);
        assert_eq!(conn.replayed.len(), 2);
    }

    #[test]
    fn plain_panics_abandon_the_case_without_retry() {
        let mut conn = FlakyConn::new();
        let mut supervisor = Supervisor::new(SupervisorConfig::default());
        let setup: Vec<String> = Vec::new();
        let result = supervisor.run_case(&mut conn, &setup, 0, 0, 5, &mut |_conn| {
            panic!("index out of bounds: the len is 0")
        });
        assert!(matches!(result, SupervisedCase::Panicked));
        assert_eq!(supervisor.counters.oracle_panics, 1);
        assert_eq!(supervisor.counters.retries, 0);
        assert_eq!(supervisor.incidents[0].kind, IncidentKind::OraclePanic);
    }

    #[test]
    fn watchdog_trips_on_virtual_clock_overrun() {
        let mut conn = FlakyConn::new();
        let mut supervisor = Supervisor::new(SupervisorConfig {
            deadline_ticks: 10,
            ..SupervisorConfig::default()
        });
        let setup: Vec<String> = Vec::new();
        let mut first = true;
        let result = supervisor.run_case(&mut conn, &setup, 0, 0, 2, &mut |conn| {
            if first {
                first = false;
                for _ in 0..50 {
                    let _ = conn.query("SELECT 1");
                }
            }
            OracleOutcome::Passed
        });
        assert!(matches!(
            result,
            SupervisedCase::Completed(OracleOutcome::Passed)
        ));
        assert_eq!(supervisor.counters.watchdog_trips, 1);
        assert_eq!(supervisor.incidents[0].kind, IncidentKind::WatchdogTimeout);
    }

    #[test]
    fn exhausted_retries_count_toward_quarantine() {
        let mut conn = FlakyConn::new();
        let mut supervisor = Supervisor::new(SupervisorConfig {
            max_retries: 1,
            quarantine_threshold: 2,
            ..SupervisorConfig::default()
        });
        let setup: Vec<String> = Vec::new();
        for case in 0..2 {
            let result = supervisor.run_case(&mut conn, &setup, 0, case, case + 1, &mut |_conn| {
                OracleOutcome::Invalid("infra: connection reset by peer".into())
            });
            assert!(matches!(result, SupervisedCase::InfraFailed));
        }
        assert!(supervisor.should_quarantine());
        assert_eq!(supervisor.counters.infra_failures, 2);
        // Each case: 1 retry, 2 incidents.
        assert_eq!(supervisor.counters.retries, 2);
        assert_eq!(supervisor.counters.incidents, 4);
    }

    #[test]
    fn infra_marked_bug_is_never_reported_as_a_bug() {
        let mut conn = FlakyConn::new();
        let mut supervisor = Supervisor::new(SupervisorConfig {
            max_retries: 0,
            ..SupervisorConfig::default()
        });
        let setup: Vec<String> = Vec::new();
        let result = supervisor.run_case(&mut conn, &setup, 0, 0, 4, &mut |_conn| {
            OracleOutcome::Bug(Box::new(crate::oracle::BugReport {
                oracle: crate::oracle::OracleKind::Tlp,
                description: "infra: garbled result frame (injected infra_garble)".into(),
                setup: Vec::new(),
                queries: Vec::new(),
                features: crate::feature::FeatureSet::new(),
            }))
        });
        assert!(matches!(result, SupervisedCase::InfraFailed));
        assert_eq!(supervisor.incidents[0].kind, IncidentKind::GarbledResult);
    }

    #[test]
    fn incident_kind_names_round_trip() {
        for kind in [
            IncidentKind::BackendCrash,
            IncidentKind::WatchdogTimeout,
            IncidentKind::ConnectionDrop,
            IncidentKind::GarbledResult,
            IncidentKind::OraclePanic,
            IncidentKind::StorageMetricsError,
            IncidentKind::WorkerPanic,
            IncidentKind::ProbeFailure,
            IncidentKind::CapabilityDrift,
            IncidentKind::BreakerTrip,
            IncidentKind::BreakerRecovery,
        ] {
            assert_eq!(IncidentKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(IncidentKind::parse("nonsense"), None);
    }

    #[test]
    fn classify_routes_probe_and_drift_messages() {
        assert_eq!(
            classify_infra_message(
                "infra: backend crashed during capability probe (injected infra_probe)"
            ),
            IncidentKind::ProbeFailure
        );
        assert_eq!(
            classify_infra_message("infra: capability probe failed on re-sync: boom"),
            IncidentKind::ProbeFailure
        );
        assert_eq!(
            classify_infra_message(
                "infra: capability drift: transactions claimed but BEGIN rejected \
                 (injected infra_capability_lie)"
            ),
            IncidentKind::CapabilityDrift
        );
        // Flap messages carry no dedicated classification hook — they look
        // like a generic transient drop to the platform, by design.
        assert_eq!(
            classify_infra_message("infra: backend flapping after respawn (injected infra_flap)"),
            IncidentKind::ConnectionDrop
        );
    }
}
