//! Driver / Pool / Capability: the backend-agnostic connection layer.
//!
//! The campaign engine historically ran against a single
//! [`DbmsConnection`] handed to it by the caller. This module splits that
//! contract into three pieces, following the classic driver/pool shape:
//!
//! * [`Driver`] — a factory for connections to one backend, plus a
//!   [`Capability`] report describing what the backend supports. Drivers
//!   are cheap, `Send + Sync`, and shareable (`Arc<dyn Driver>`), so a
//!   fleet is just a `Vec<Arc<dyn Driver>>`.
//! * [`Capability`] — the static feature report: transactions, savepoints,
//!   multi-session support, the AST fast path, state checkpoints, storage
//!   metrics and dialect quirks. Generator gating and oracle scheduling
//!   consult capabilities (and the learned profile) instead of matching on
//!   backend names.
//! * [`Pool`] — a fixed-size, deterministic connection pool that itself
//!   implements [`DbmsConnection`], so the whole campaign stack (generator
//!   feedback, oracles, reducer, supervisor, resume) runs over it
//!   unchanged.
//!
//! # Deterministic checkout
//!
//! The pool checks out one connection per test case, chosen purely from
//! the case seed (`slot = case_seed % pool_size`). Campaign reports must
//! stay byte-identical for any pool size, which works because of a
//! campaign invariant: **between test cases the backend state is exactly
//! the replayed setup log** — the stateful oracles capture setup state on
//! entry and restore it on exit, and the read-only oracles never mutate.
//! The pool records every safe-mode statement into a *sync log*; when a
//! case checks out a slot that has not observed the latest log, the slot
//! is first re-synced (reset + SQL-text replay — the same checkpoint
//! fallback the resume path uses). Re-syncs only ever replay setup DDL/DML
//! onto a freshly reset connection, so they contribute no storage-counter
//! drift and no verdict-relevant state differences.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::dbms::{
    DbmsConnection, DialectQuirks, QueryResult, StateCheckpoint, StatementOutcome, StorageMetrics,
};
use crate::feature::Feature;
use crate::supervisor::INFRA_MARKER;
use sql_ast::Statement;

/// Static feature report for one backend, returned by [`Driver::capability`].
///
/// Capabilities describe what a backend *can* do at the wire level; the
/// adaptive generator still learns the backend's SQL dialect (which
/// functions, operators and clauses parse) from validity feedback. The
/// two compose: capabilities pre-suppress whole subsystems (transactions,
/// savepoints, concurrent schedules) that the driver knows are absent,
/// and learning handles everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Capability {
    /// Transaction control (`BEGIN`/`COMMIT`/`ROLLBACK`) is supported.
    pub transactions: bool,
    /// `SAVEPOINT`/`ROLLBACK TO`/`RELEASE SAVEPOINT` are supported.
    pub savepoints: bool,
    /// The backend can open additional concurrent sessions
    /// ([`DbmsConnection::open_session`]), enabling the isolation oracle.
    pub multi_session: bool,
    /// The backend accepts ASTs directly (`execute_ast`/`query_ast` do not
    /// fall back to text rendering). Descriptive: the simulated fleet keeps
    /// its AST fast path as a capability, wire backends are text-only.
    pub ast_statements: bool,
    /// The backend supports O(1) state checkpoints
    /// ([`DbmsConnection::checkpoint`]). When `false` the stateful oracles
    /// use the SQL-replay fallback.
    pub state_checkpoints: bool,
    /// The backend reports storage-layer metrics
    /// ([`DbmsConnection::storage_metrics`]).
    pub storage_metrics: bool,
    /// Dialect quirk: reads only see writes after `REFRESH TABLE`.
    pub requires_refresh: bool,
    /// Dialect quirk: autocommit is off; setup writes need `COMMIT`.
    pub requires_commit: bool,
}

impl Default for Capability {
    /// The full-featured profile the campaign historically assumed
    /// (everything supported, no quirks).
    fn default() -> Capability {
        Capability {
            transactions: true,
            savepoints: true,
            multi_session: true,
            ast_statements: true,
            state_checkpoints: true,
            storage_metrics: true,
            requires_refresh: false,
            requires_commit: false,
        }
    }
}

impl Capability {
    /// The conservative profile for a text-only wire backend: SQL text in,
    /// rows out, nothing else assumed. Transactions and savepoints stay on
    /// (most real DBMSs have them; validity feedback suppresses them where
    /// they fail to parse), everything engine-internal is off.
    pub fn text_only() -> Capability {
        Capability {
            transactions: true,
            savepoints: true,
            multi_session: false,
            ast_statements: false,
            state_checkpoints: false,
            storage_metrics: false,
            requires_refresh: false,
            requires_commit: false,
        }
    }

    /// Returns the capability with transaction support set (chainable —
    /// the struct is `#[non_exhaustive]`, so foreign crates build reports
    /// from [`Capability::default`]/[`Capability::text_only`] plus these).
    pub fn with_transactions(mut self, transactions: bool) -> Capability {
        self.transactions = transactions;
        self
    }

    /// Returns the capability with savepoint support set.
    pub fn with_savepoints(mut self, savepoints: bool) -> Capability {
        self.savepoints = savepoints;
        self
    }

    /// Returns the capability with multi-session support set.
    pub fn with_multi_session(mut self, multi_session: bool) -> Capability {
        self.multi_session = multi_session;
        self
    }

    /// Returns the capability with the AST fast path set.
    pub fn with_ast_statements(mut self, ast_statements: bool) -> Capability {
        self.ast_statements = ast_statements;
        self
    }

    /// Returns the capability with checkpoint support set.
    pub fn with_state_checkpoints(mut self, state_checkpoints: bool) -> Capability {
        self.state_checkpoints = state_checkpoints;
        self
    }

    /// Returns the capability with storage-metrics support set.
    pub fn with_storage_metrics(mut self, storage_metrics: bool) -> Capability {
        self.storage_metrics = storage_metrics;
        self
    }

    /// Returns the capability with the `REFRESH TABLE` quirk set.
    pub fn with_requires_refresh(mut self, requires_refresh: bool) -> Capability {
        self.requires_refresh = requires_refresh;
        self
    }

    /// Returns the capability with the explicit-`COMMIT` quirk set.
    pub fn with_requires_commit(mut self, requires_commit: bool) -> Capability {
        self.requires_commit = requires_commit;
        self
    }

    /// The dialect quirks implied by this capability report.
    pub fn quirks(&self) -> DialectQuirks {
        DialectQuirks {
            requires_refresh: self.requires_refresh,
            requires_commit: self.requires_commit,
        }
    }

    /// Statement features the generator should never draw against this
    /// backend, derived from the capability flags. These seed the
    /// generator's capability suppression set; learned suppression handles
    /// the rest of the dialect.
    pub fn unsupported_statement_features(&self) -> BTreeSet<Feature> {
        let mut out = BTreeSet::new();
        if !self.transactions {
            for name in ["STMT_BEGIN", "STMT_COMMIT", "STMT_ROLLBACK"] {
                out.insert(Feature::statement(name));
            }
        }
        if !self.savepoints {
            for name in [
                "STMT_SAVEPOINT",
                "STMT_ROLLBACK_TO",
                "STMT_RELEASE_SAVEPOINT",
            ] {
                out.insert(Feature::statement(name));
            }
        }
        out
    }
}

/// A factory for connections to one backend.
///
/// A driver is the fleet-level handle for a backend: it knows the
/// backend's name, reports its [`Capability`], and mints fresh
/// connections. Drivers are shared across runner threads as
/// `Arc<dyn Driver>`; connections themselves stay thread-local.
pub trait Driver: Send + Sync {
    /// Stable backend name (used in reports and checkpoints).
    fn name(&self) -> &str;
    /// The backend's static capability report.
    fn capability(&self) -> Capability;
    /// Opens a fresh connection to the backend.
    fn connect(&self) -> Result<Box<dyn DbmsConnection>, String>;
}

/// One pooled connection slot.
struct Slot {
    conn: Option<Box<dyn DbmsConnection>>,
    /// The sync-log epoch this slot last synced at.
    epoch: u64,
    /// How many sync-log statements this slot has observed.
    synced: usize,
    /// Wall-clock-plane telemetry: checkouts since the last drain.
    checkouts: u64,
    /// Wall-clock-plane telemetry: re-syncs since the last drain.
    resyncs: u64,
    /// Wall-clock-plane telemetry: statements replayed by those re-syncs.
    replayed: u64,
}

/// A fixed-size, deterministic connection pool over one [`Driver`].
///
/// The pool implements [`DbmsConnection`], so campaigns run over it
/// unchanged. [`DbmsConnection::begin_case`] doubles as the checkout
/// point: a non-zero case seed selects slot `seed % size` (seed-ordered
/// checkout), re-syncing the slot from the recorded setup log first if it
/// is stale. See the module docs for why this keeps reports byte-identical
/// across pool sizes.
pub struct Pool {
    driver: Arc<dyn Driver>,
    capability: Capability,
    name: String,
    slots: Vec<Slot>,
    active: usize,
    /// Safe-mode statement log: the SQL text that, replayed onto a fresh
    /// connection, reproduces the between-cases backend state.
    sync_log: Vec<String>,
    /// Bumped on every safe-mode reset; slots with an older epoch are
    /// stale and re-sync on checkout.
    epoch: u64,
    /// Whether a test case is active (between `begin_case(seed)` and the
    /// next `begin_case(0)`). In-case statements are oracle-internal and
    /// are not recorded: stateful oracles restore setup state on exit.
    in_case: bool,
}

impl Pool {
    /// Creates a pool of `size` connections over `driver`. The first slot
    /// connects eagerly so configuration errors surface here; the rest
    /// connect lazily on first checkout.
    pub fn new(driver: Arc<dyn Driver>, size: usize) -> Result<Pool, String> {
        let size = size.max(1);
        let mut slots: Vec<Slot> = (0..size)
            .map(|_| Slot {
                conn: None,
                epoch: 0,
                synced: 0,
                checkouts: 0,
                resyncs: 0,
                replayed: 0,
            })
            .collect();
        slots[0].conn = Some(driver.connect()?);
        Ok(Pool {
            capability: driver.capability(),
            name: driver.name().to_string(),
            driver,
            slots,
            active: 0,
            sync_log: Vec::new(),
            epoch: 0,
            in_case: false,
        })
    }

    /// The pool size.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The backend's capability report.
    pub fn capability(&self) -> &Capability {
        &self.capability
    }

    /// The slot index the last checkout selected.
    pub fn active_slot(&self) -> usize {
        self.active
    }

    /// Ensures slot `index` has a live connection and returns it.
    fn connected(&mut self, index: usize) -> &mut Box<dyn DbmsConnection> {
        if self.slots[index].conn.is_none() {
            match self.driver.connect() {
                Ok(conn) => self.slots[index].conn = Some(conn),
                // Connection loss mid-campaign is an infra incident, not a
                // logic bug: panic with the marker so the supervisor
                // classifies and retries.
                Err(err) => panic!("{INFRA_MARKER} pool connect failed: {err}"),
            }
        }
        self.slots[index]
            .conn
            .as_mut()
            .expect("slot connected above")
    }

    /// Brings slot `index` up to date with the sync log: reset, then
    /// replay the recorded setup SQL (the checkpoint fallback path).
    fn sync_slot(&mut self, index: usize) {
        let stale = self.slots[index].epoch != self.epoch
            || self.slots[index].synced != self.sync_log.len();
        let fresh = self.slots[index].conn.is_none();
        if !stale && !fresh {
            return;
        }
        let log: Vec<String> = self.sync_log.clone();
        let conn = self.connected(index);
        conn.begin_case(0);
        conn.reset();
        for sql in &log {
            // Replay outcomes mirror the original safe-mode outcomes;
            // failures were recorded too and fail identically here.
            let _ = conn.execute(sql);
        }
        self.slots[index].epoch = self.epoch;
        self.slots[index].synced = self.sync_log.len();
        self.slots[index].resyncs += 1;
        self.slots[index].replayed += log.len() as u64;
    }

    /// Marks the active slot as having observed the full sync log.
    fn mark_active_synced(&mut self) {
        let active = self.active;
        self.slots[active].epoch = self.epoch;
        self.slots[active].synced = self.sync_log.len();
    }
}

impl DbmsConnection for Pool {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        let active = self.active;
        let outcome = self.connected(active).execute(sql);
        if !self.in_case {
            self.sync_log.push(sql.to_string());
            self.mark_active_synced();
        }
        outcome
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        let active = self.active;
        self.connected(active).query(sql)
    }

    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        let active = self.active;
        let outcome = self.connected(active).execute_ast(stmt);
        if !self.in_case {
            self.sync_log.push(stmt.to_string());
            self.mark_active_synced();
        }
        outcome
    }

    fn query_ast(&mut self, select: &sql_ast::Select) -> Result<QueryResult, String> {
        let active = self.active;
        self.connected(active).query_ast(select)
    }

    fn reset(&mut self) {
        if self.in_case {
            // Oracle-internal rebuild: state is restored before the case
            // ends, so the between-cases log stays authoritative.
            let active = self.active;
            self.connected(active).reset();
        } else {
            self.epoch += 1;
            self.sync_log.clear();
            let active = self.active;
            self.connected(active).reset();
            self.mark_active_synced();
        }
    }

    fn quirks(&self) -> DialectQuirks {
        self.capability.quirks()
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        let active = self.active;
        self.connected(active).open_session()
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        // Deterministic across pool sizes: per-case contributions land on
        // seed-chosen slots, and re-syncs (reset + replay onto a fresh
        // engine) contribute zero, so the sum is invariant.
        let mut total: Option<StorageMetrics> = None;
        for slot in &self.slots {
            if let Some(conn) = slot.conn.as_ref() {
                if let Some(metrics) = conn.storage_metrics()? {
                    match total.as_mut() {
                        Some(sum) => sum.merge(&metrics),
                        None => total = Some(metrics),
                    }
                }
            }
        }
        Ok(total)
    }

    fn begin_case(&mut self, case_seed: u64) {
        if case_seed == 0 {
            self.in_case = false;
            let active = self.active;
            if self.slots[active].conn.is_some() {
                self.connected(active).begin_case(0);
            }
        } else {
            // Seed-ordered checkout: the slot is a pure function of the
            // case seed, so retries of a case land on the same connection
            // and reports are identical for any pool size.
            let target = (case_seed % self.slots.len() as u64) as usize;
            self.sync_slot(target);
            self.active = target;
            self.in_case = true;
            self.slots[target].checkouts += 1;
            self.connected(target).begin_case(case_seed);
        }
    }

    fn virtual_ticks(&self) -> u64 {
        self.slots[self.active]
            .conn
            .as_ref()
            .map(|conn| conn.virtual_ticks())
            .unwrap_or(0)
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        let active = self.active;
        self.connected(active).checkpoint()
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        let active = self.active;
        self.connected(active).restore(checkpoint)
    }

    fn engine_coverage(&self) -> Option<crate::dbms::EngineCoverage> {
        // Deterministic across pool sizes: each slot's sets are cumulative
        // for the slot's lifetime (the EngineCoverage monotonicity
        // contract), and the first execution to reach a point always
        // records it on whichever slot it ran, so the union over slots is
        // exactly "every point any execution reached".
        let mut total: Option<crate::dbms::EngineCoverage> = None;
        for slot in &self.slots {
            if let Some(conn) = slot.conn.as_ref() {
                if let Some(coverage) = conn.engine_coverage() {
                    match total.as_mut() {
                        Some(sum) => sum.merge(&coverage),
                        None => total = Some(coverage),
                    }
                }
            }
        }
        total
    }

    fn drain_backend_events(&mut self) -> Vec<crate::trace::BackendEvent> {
        // Wall-clock plane only: checkout and re-sync counts depend on the
        // pool size by construction, so they must never feed the
        // deterministic trace summary.
        let mut events = Vec::new();
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.checkouts > 0 {
                events.push(crate::trace::BackendEvent::SlotCheckouts {
                    slot: index,
                    count: slot.checkouts,
                });
                slot.checkouts = 0;
            }
            if slot.resyncs > 0 {
                events.push(crate::trace::BackendEvent::SlotResyncs {
                    slot: index,
                    count: slot.resyncs,
                    replayed: slot.replayed,
                });
                slot.resyncs = 0;
                slot.replayed = 0;
            }
            if let Some(conn) = slot.conn.as_mut() {
                events.extend(conn.drain_backend_events());
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capability_is_full_featured() {
        let cap = Capability::default();
        assert!(cap.transactions && cap.savepoints && cap.multi_session);
        assert!(cap.ast_statements && cap.state_checkpoints && cap.storage_metrics);
        assert!(cap.unsupported_statement_features().is_empty());
    }

    #[test]
    fn text_only_capability_disables_engine_internals() {
        let cap = Capability::text_only();
        assert!(cap.transactions && cap.savepoints);
        assert!(!cap.multi_session && !cap.ast_statements);
        assert!(!cap.state_checkpoints && !cap.storage_metrics);
    }

    #[test]
    fn capability_without_transactions_suppresses_txn_statements() {
        let cap = Capability {
            transactions: false,
            savepoints: false,
            ..Capability::default()
        };
        let features = cap.unsupported_statement_features();
        for name in [
            "STMT_BEGIN",
            "STMT_COMMIT",
            "STMT_ROLLBACK",
            "STMT_SAVEPOINT",
            "STMT_ROLLBACK_TO",
            "STMT_RELEASE_SAVEPOINT",
        ] {
            assert!(
                features.contains(&Feature::statement(name)),
                "missing {name}"
            );
        }
    }

    #[test]
    fn capability_quirks_round_trip() {
        let cap = Capability {
            requires_refresh: true,
            requires_commit: true,
            ..Capability::default()
        };
        let quirks = cap.quirks();
        assert!(quirks.requires_refresh && quirks.requires_commit);
    }
}
