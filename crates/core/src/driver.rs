//! Driver / Pool / Capability: the backend-agnostic connection layer.
//!
//! The campaign engine historically ran against a single
//! [`DbmsConnection`] handed to it by the caller. This module splits that
//! contract into three pieces, following the classic driver/pool shape:
//!
//! * [`Driver`] — a factory for connections to one backend, plus a
//!   [`Capability`] report describing what the backend supports. Drivers
//!   are cheap, `Send + Sync`, and shareable (`Arc<dyn Driver>`), so a
//!   fleet is just a `Vec<Arc<dyn Driver>>`.
//! * [`Capability`] — the static feature report: transactions, savepoints,
//!   multi-session support, the AST fast path, state checkpoints, storage
//!   metrics and dialect quirks. Generator gating and oracle scheduling
//!   consult capabilities (and the learned profile) instead of matching on
//!   backend names.
//! * [`Pool`] — a fixed-size, deterministic connection pool that itself
//!   implements [`DbmsConnection`], so the whole campaign stack (generator
//!   feedback, oracles, reducer, supervisor, resume) runs over it
//!   unchanged.
//!
//! # Deterministic checkout
//!
//! The pool checks out one connection per test case, chosen purely from
//! the case seed (`slot = case_seed % pool_size`). Campaign reports must
//! stay byte-identical for any pool size, which works because of a
//! campaign invariant: **between test cases the backend state is exactly
//! the replayed setup log** — the stateful oracles capture setup state on
//! entry and restore it on exit, and the read-only oracles never mutate.
//! The pool records every safe-mode statement into a *sync log*; when a
//! case checks out a slot that has not observed the latest log, the slot
//! is first re-synced (reset + SQL-text replay — the same checkpoint
//! fallback the resume path uses). Re-syncs only ever replay setup DDL/DML
//! onto a freshly reset connection, so they contribute no storage-counter
//! drift and no verdict-relevant state differences.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::dbms::{
    DbmsConnection, DialectQuirks, QueryResult, StateCheckpoint, StatementOutcome, StorageMetrics,
};
use crate::feature::Feature;
use crate::supervisor::INFRA_MARKER;
use sql_ast::Statement;

/// Static feature report for one backend, returned by [`Driver::capability`].
///
/// Capabilities describe what a backend *can* do at the wire level; the
/// adaptive generator still learns the backend's SQL dialect (which
/// functions, operators and clauses parse) from validity feedback. The
/// two compose: capabilities pre-suppress whole subsystems (transactions,
/// savepoints, concurrent schedules) that the driver knows are absent,
/// and learning handles everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Capability {
    /// Transaction control (`BEGIN`/`COMMIT`/`ROLLBACK`) is supported.
    pub transactions: bool,
    /// `SAVEPOINT`/`ROLLBACK TO`/`RELEASE SAVEPOINT` are supported.
    pub savepoints: bool,
    /// The backend can open additional concurrent sessions
    /// ([`DbmsConnection::open_session`]), enabling the isolation oracle.
    pub multi_session: bool,
    /// The backend accepts ASTs directly (`execute_ast`/`query_ast` do not
    /// fall back to text rendering). Descriptive: the simulated fleet keeps
    /// its AST fast path as a capability, wire backends are text-only.
    pub ast_statements: bool,
    /// The backend supports O(1) state checkpoints
    /// ([`DbmsConnection::checkpoint`]). When `false` the stateful oracles
    /// use the SQL-replay fallback.
    pub state_checkpoints: bool,
    /// The backend reports storage-layer metrics
    /// ([`DbmsConnection::storage_metrics`]).
    pub storage_metrics: bool,
    /// Dialect quirk: reads only see writes after `REFRESH TABLE`.
    pub requires_refresh: bool,
    /// Dialect quirk: autocommit is off; setup writes need `COMMIT`.
    pub requires_commit: bool,
}

impl Default for Capability {
    /// The full-featured profile the campaign historically assumed
    /// (everything supported, no quirks).
    fn default() -> Capability {
        Capability {
            transactions: true,
            savepoints: true,
            multi_session: true,
            ast_statements: true,
            state_checkpoints: true,
            storage_metrics: true,
            requires_refresh: false,
            requires_commit: false,
        }
    }
}

impl Capability {
    /// The conservative profile for a text-only wire backend: SQL text in,
    /// rows out, nothing else assumed. Transactions and savepoints stay on
    /// (most real DBMSs have them; validity feedback suppresses them where
    /// they fail to parse), everything engine-internal is off.
    pub fn text_only() -> Capability {
        Capability {
            transactions: true,
            savepoints: true,
            multi_session: false,
            ast_statements: false,
            state_checkpoints: false,
            storage_metrics: false,
            requires_refresh: false,
            requires_commit: false,
        }
    }

    /// Returns the capability with transaction support set (chainable —
    /// the struct is `#[non_exhaustive]`, so foreign crates build reports
    /// from [`Capability::default`]/[`Capability::text_only`] plus these).
    pub fn with_transactions(mut self, transactions: bool) -> Capability {
        self.transactions = transactions;
        self
    }

    /// Returns the capability with savepoint support set.
    pub fn with_savepoints(mut self, savepoints: bool) -> Capability {
        self.savepoints = savepoints;
        self
    }

    /// Returns the capability with multi-session support set.
    pub fn with_multi_session(mut self, multi_session: bool) -> Capability {
        self.multi_session = multi_session;
        self
    }

    /// Returns the capability with the AST fast path set.
    pub fn with_ast_statements(mut self, ast_statements: bool) -> Capability {
        self.ast_statements = ast_statements;
        self
    }

    /// Returns the capability with checkpoint support set.
    pub fn with_state_checkpoints(mut self, state_checkpoints: bool) -> Capability {
        self.state_checkpoints = state_checkpoints;
        self
    }

    /// Returns the capability with storage-metrics support set.
    pub fn with_storage_metrics(mut self, storage_metrics: bool) -> Capability {
        self.storage_metrics = storage_metrics;
        self
    }

    /// Returns the capability with the `REFRESH TABLE` quirk set.
    pub fn with_requires_refresh(mut self, requires_refresh: bool) -> Capability {
        self.requires_refresh = requires_refresh;
        self
    }

    /// Returns the capability with the explicit-`COMMIT` quirk set.
    pub fn with_requires_commit(mut self, requires_commit: bool) -> Capability {
        self.requires_commit = requires_commit;
        self
    }

    /// The dialect quirks implied by this capability report.
    pub fn quirks(&self) -> DialectQuirks {
        DialectQuirks {
            requires_refresh: self.requires_refresh,
            requires_commit: self.requires_commit,
        }
    }

    /// Statement features the generator should never draw against this
    /// backend, derived from the capability flags. These seed the
    /// generator's capability suppression set; learned suppression handles
    /// the rest of the dialect.
    pub fn unsupported_statement_features(&self) -> BTreeSet<Feature> {
        let mut out = BTreeSet::new();
        if !self.transactions {
            for name in ["STMT_BEGIN", "STMT_COMMIT", "STMT_ROLLBACK"] {
                out.insert(Feature::statement(name));
            }
        }
        if !self.savepoints {
            for name in [
                "STMT_SAVEPOINT",
                "STMT_ROLLBACK_TO",
                "STMT_RELEASE_SAVEPOINT",
            ] {
                out.insert(Feature::statement(name));
            }
        }
        out
    }
}

/// A factory for connections to one backend.
///
/// A driver is the fleet-level handle for a backend: it knows the
/// backend's name, reports its [`Capability`], and mints fresh
/// connections. Drivers are shared across runner threads as
/// `Arc<dyn Driver>`; connections themselves stay thread-local.
pub trait Driver: Send + Sync {
    /// Stable backend name (used in reports and checkpoints).
    fn name(&self) -> &str;
    /// The backend's static capability report.
    fn capability(&self) -> Capability;
    /// Opens a fresh connection to the backend.
    fn connect(&self) -> Result<Box<dyn DbmsConnection>, String>;
}

/// A deterministic-plane resilience event produced by the pool's
/// self-healing layer and drained by the supervisor at every case boundary
/// ([`DbmsConnection::drain_resilience_events`]). Each event becomes a
/// supervision incident, so everything here must be invariant across pool
/// sizes and worker counts: capability drift derives from the probe (same
/// backend, same script), breaker accounting is keyed to *virtual* slots
/// and a checkout-counting clock, never to physical connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceEvent {
    /// The runtime probe contradicted the driver's static capability claim
    /// for one feature family. Enqueued once per database boundary.
    CapabilityDrift {
        /// Family plus the backend's rejection message.
        detail: String,
    },
    /// A virtual slot accumulated [`BREAKER_THRESHOLD`] consecutive
    /// infrastructure-classified case failures and opened its breaker.
    BreakerTripped {
        /// The virtual slot (case seed modulo [`BREAKER_SLOTS`]).
        vslot: usize,
        /// The resilience clock (checkouts this database) at the trip.
        clock: u64,
        /// The clock value at which the breaker half-opens for a probe.
        until: u64,
    },
    /// A half-open breaker's probe case completed and the slot was
    /// readmitted.
    BreakerRecovered {
        /// The virtual slot.
        vslot: usize,
        /// The resilience clock at readmission.
        clock: u64,
    },
}

/// Number of virtual breaker slots. Breakers guard *virtual* slots
/// (`case_seed % BREAKER_SLOTS`) rather than physical connections so that
/// trip/recovery sequences — which become incidents — are identical for
/// every pool size. Physical routing folds the virtual slot onto the pool
/// (`vslot % size`), which coincides with the historical `seed % size`
/// checkout for the pool sizes the determinism gates exercise (divisors of
/// `BREAKER_SLOTS`).
pub const BREAKER_SLOTS: usize = 4;

/// Consecutive infra-classified case failures that open a virtual slot's
/// breaker. Two is deliberately aggressive: the injected persistent faults
/// (crash-persist, post-respawn flap) lose exactly two attempts, so the
/// chaos gates exercise both the trip and the recovery path.
pub const BREAKER_THRESHOLD: u32 = 2;

/// Base backoff, in resilience-clock ticks (checkouts), before an open
/// breaker half-opens. Doubles per consecutive re-trip.
pub const BREAKER_BACKOFF_BASE: u64 = 8;

/// Cap on the backoff doubling exponent.
pub const BREAKER_MAX_BACKOFF_LEVEL: u32 = 6;

/// Circuit-breaker state of one virtual slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: cases route to the slot normally.
    Closed,
    /// Tripped: checkout detours around the slot until the clock reaches
    /// `until`.
    Open { until: u64 },
    /// Backoff expired: the next case on this virtual slot is the
    /// readmission probe.
    HalfOpen,
}

/// One virtual slot's breaker.
#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    /// Consecutive infra-classified case failures while closed.
    consecutive: u32,
    /// Backoff doubling exponent (grows on half-open re-trips).
    backoff_level: u32,
    /// Wall-clock-plane telemetry: trips since the last drain.
    trips: u64,
    /// Wall-clock-plane telemetry: recoveries since the last drain.
    recoveries: u64,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive: 0,
            backoff_level: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Resets the deterministic fields at a database boundary, keeping the
    /// wall-plane telemetry counters for the next drain.
    fn reset_deterministic(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive = 0;
        self.backoff_level = 0;
    }
}

/// The in-flight case the pool is tracking for breaker accounting.
#[derive(Debug, Clone, Copy)]
struct PendingCase {
    seed: u64,
    /// The physical slot the case's first attempt was routed to. Retries
    /// stay on it: backends meter injected-fault persistence by
    /// per-connection attempt counts, so hopping a retry to a sibling slot
    /// would reset that meter and let the verdict vary with the pool size.
    physical: usize,
    /// Whether the current attempt's failure was already counted (an
    /// infra-marked statement outcome was observed inline). Attempts that
    /// die by panic are counted at the retry checkout or the final
    /// [`DbmsConnection::note_case_outcome`] instead.
    noted: bool,
}

/// Runs the deterministic capability probe script against a connection and
/// returns the downgraded capability plus one drift detail per family the
/// backend rejected at runtime. Statements run directly on the slot
/// connection (never through the pool), in safe mode, and only *claimed*
/// families are probed — the probe downgrades, it never upgrades.
///
/// # Errors
///
/// An [`INFRA_MARKER`] statement outcome is a transport failure, not a
/// family rejection: the probe aborts with the backend's message.
fn run_probe(
    conn: &mut dyn DbmsConnection,
    claimed: &Capability,
) -> Result<(Capability, Vec<String>), String> {
    fn exec(conn: &mut dyn DbmsConnection, sql: &str) -> Result<Result<(), String>, String> {
        match conn.execute(sql) {
            StatementOutcome::Success => Ok(Ok(())),
            StatementOutcome::Failure(msg) if msg.contains(INFRA_MARKER) => Err(msg),
            StatementOutcome::Failure(msg) => Ok(Err(msg)),
        }
    }
    let mut probed = claimed.clone();
    let mut drift: Vec<String> = Vec::new();
    if claimed.transactions {
        match exec(conn, "BEGIN")? {
            Ok(()) => {
                if let Err(msg) = exec(conn, "ROLLBACK")? {
                    probed.transactions = false;
                    drift.push(format!(
                        "transactions: static capability claims support but the probe's ROLLBACK was rejected: {msg}"
                    ));
                }
            }
            Err(msg) => {
                probed.transactions = false;
                drift.push(format!(
                    "transactions: static capability claims support but the probe's BEGIN was rejected: {msg}"
                ));
            }
        }
    }
    // Savepoints are probed inside a transaction, exactly as the oracles
    // use them; without transaction support there is no portable probe, so
    // the claim stands and validity feedback handles the rest.
    if claimed.savepoints && probed.transactions && exec(conn, "BEGIN")?.is_ok() {
        match exec(conn, "SAVEPOINT pool_probe")? {
            Ok(()) => {
                if let Err(msg) = exec(conn, "RELEASE SAVEPOINT pool_probe")? {
                    probed.savepoints = false;
                    drift.push(format!(
                        "savepoints: static capability claims support but the probe's RELEASE SAVEPOINT was rejected: {msg}"
                    ));
                }
            }
            Err(msg) => {
                probed.savepoints = false;
                drift.push(format!(
                    "savepoints: static capability claims support but the probe's SAVEPOINT was rejected: {msg}"
                ));
            }
        }
        let _ = exec(conn, "ROLLBACK")?;
    }
    if claimed.state_checkpoints && conn.checkpoint().is_none() {
        probed.state_checkpoints = false;
        drift.push(
            "state_checkpoints: static capability claims support but the checkpoint probe returned no snapshot"
                .to_string(),
        );
    }
    if claimed.multi_session && conn.open_session().is_none() {
        probed.multi_session = false;
        drift.push(
            "multi_session: static capability claims support but the probe could not open a second session"
                .to_string(),
        );
    }
    Ok((probed, drift))
}

/// One pooled connection slot.
struct Slot {
    conn: Option<Box<dyn DbmsConnection>>,
    /// The sync-log epoch this slot last synced at.
    epoch: u64,
    /// How many sync-log statements this slot has observed.
    synced: usize,
    /// Wall-clock-plane telemetry: checkouts since the last drain.
    checkouts: u64,
    /// Wall-clock-plane telemetry: re-syncs since the last drain.
    resyncs: u64,
    /// Wall-clock-plane telemetry: statements replayed by those re-syncs.
    replayed: u64,
    /// Storage-counter deltas caused by capability probes on this slot.
    /// Probes run real statements (`BEGIN`/`ROLLBACK` bump engine
    /// counters), and how often a slot is probed depends on the pool size,
    /// so [`Pool::storage_metrics`] subtracts this accumulator to keep the
    /// reported sum invariant.
    probe_overhead: StorageMetrics,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            conn: None,
            epoch: 0,
            synced: 0,
            checkouts: 0,
            resyncs: 0,
            replayed: 0,
            probe_overhead: StorageMetrics::default(),
        }
    }
}

/// A fixed-size, deterministic connection pool over one [`Driver`].
///
/// The pool implements [`DbmsConnection`], so campaigns run over it
/// unchanged. [`DbmsConnection::begin_case`] doubles as the checkout
/// point: a non-zero case seed selects slot `seed % size` (seed-ordered
/// checkout), re-syncing the slot from the recorded setup log first if it
/// is stale. See the module docs for why this keeps reports byte-identical
/// across pool sizes.
pub struct Pool {
    driver: Arc<dyn Driver>,
    capability: Capability,
    name: String,
    slots: Vec<Slot>,
    active: usize,
    /// Safe-mode statement log: the SQL text that, replayed onto a fresh
    /// connection, reproduces the between-cases backend state.
    sync_log: Vec<String>,
    /// Bumped on every safe-mode reset; slots with an older epoch are
    /// stale and re-sync on checkout.
    epoch: u64,
    /// Whether a test case is active (between `begin_case(seed)` and the
    /// next `begin_case(0)`). In-case statements are oracle-internal and
    /// are not recorded: stateful oracles restore setup state on exit.
    in_case: bool,
    /// Per-virtual-slot circuit breakers (see [`BREAKER_SLOTS`]).
    breakers: Vec<Breaker>,
    /// The resilience clock: non-zero checkouts since the last database
    /// boundary. Drives breaker backoff — virtual time, never wall clock.
    resilience_clock: u64,
    /// The case currently being tracked for breaker accounting.
    pending_case: Option<PendingCase>,
    /// Deterministic-plane events awaiting a drain.
    resilience_events: Vec<ResilienceEvent>,
    /// Drift details from the connect-time probe: one per capability family
    /// the backend rejected despite the driver's static claim. Re-announced
    /// as [`ResilienceEvent::CapabilityDrift`] at every database boundary.
    drift_details: Vec<String>,
    /// Wall-clock-plane telemetry: probes run since the last drain.
    probes_run: u64,
    /// Wall-clock-plane telemetry: family downgrades observed by those
    /// probes.
    probe_downgrades: u64,
}

impl Pool {
    /// Creates a pool of `size` connections over `driver`. The first slot
    /// connects eagerly and runs the capability probe, so configuration
    /// errors and transport-dead backends surface here; the remaining
    /// slots connect (and are probed) lazily on first checkout.
    pub fn new(driver: Arc<dyn Driver>, size: usize) -> Result<Pool, String> {
        let size = size.max(1);
        let mut slots: Vec<Slot> = (0..size).map(|_| Slot::empty()).collect();
        let mut conn = driver.connect()?;
        // Runtime capability probing: trust the backend's observed behavior
        // over the driver's static claim. The probed (downgraded-only)
        // capability is what `Campaign::apply_capability` sees, so a lying
        // driver degrades gracefully instead of spraying invalid cases.
        let claimed = driver.capability();
        conn.begin_case(0);
        let before = conn.storage_metrics().ok().flatten();
        let (capability, drift_details) = run_probe(conn.as_mut(), &claimed)
            .map_err(|msg| format!("capability probe failed: {msg}"))?;
        let after = conn.storage_metrics().ok().flatten();
        if let (Some(b), Some(a)) = (before, after) {
            slots[0].probe_overhead.merge(&a.since(&b));
        }
        conn.reset();
        slots[0].conn = Some(conn);
        Ok(Pool {
            probe_downgrades: drift_details.len() as u64,
            capability,
            name: driver.name().to_string(),
            driver,
            slots,
            active: 0,
            sync_log: Vec::new(),
            epoch: 0,
            in_case: false,
            breakers: (0..BREAKER_SLOTS).map(|_| Breaker::new()).collect(),
            resilience_clock: 0,
            pending_case: None,
            resilience_events: Vec::new(),
            drift_details,
            probes_run: 1,
        })
    }

    /// The pool size.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The backend's capability report: the driver's static claim minus
    /// every family the connect-time probe saw the backend reject.
    pub fn capability(&self) -> &Capability {
        &self.capability
    }

    /// Drift details from the connect-time probe (empty for a backend that
    /// honors its static claim).
    pub fn drift_details(&self) -> &[String] {
        &self.drift_details
    }

    /// The slot index the last checkout selected.
    pub fn active_slot(&self) -> usize {
        self.active
    }

    /// Ensures slot `index` has a live connection and returns it.
    fn connected(&mut self, index: usize) -> &mut Box<dyn DbmsConnection> {
        if self.slots[index].conn.is_none() {
            match self.driver.connect() {
                Ok(conn) => self.slots[index].conn = Some(conn),
                // Connection loss mid-campaign is an infra incident, not a
                // logic bug: panic with the marker so the supervisor
                // classifies and retries.
                Err(err) => panic!("{INFRA_MARKER} pool connect failed: {err}"),
            }
        }
        self.slots[index]
            .conn
            .as_mut()
            .expect("slot connected above")
    }

    /// Brings slot `index` up to date with the sync log: re-probe the
    /// connection's capabilities, then reset and replay the recorded setup
    /// SQL (the checkpoint fallback path).
    ///
    /// The sync stamp is only written after a fully successful replay: a
    /// replay statement failing with an [`INFRA_MARKER`] outcome panics
    /// (marked, so the supervisor classifies and retries) *without*
    /// marking the slot synced — a half-built slot must never masquerade
    /// as current.
    fn sync_slot(&mut self, index: usize) {
        let stale = self.slots[index].epoch != self.epoch
            || self.slots[index].synced != self.sync_log.len();
        let fresh = self.slots[index].conn.is_none();
        if !stale && !fresh {
            return;
        }
        let log: Vec<String> = self.sync_log.clone();
        let claimed = self.capability.clone();
        self.connected(index);
        // Re-probe after every (re-)connect and re-sync: probe results here
        // feed the wall-clock telemetry plane only — the *applied*
        // capability is fixed at construction, because how often slots are
        // probed depends on the pool size. A transport failure inside the
        // probe is still a marked panic (deterministically absent for the
        // in-process backends, whose faults stay dormant in safe mode).
        let (probe_result, overhead) = {
            let conn = self.slots[index].conn.as_mut().expect("connected above");
            conn.begin_case(0);
            let before = conn.storage_metrics().ok().flatten();
            let result = run_probe(conn.as_mut(), &claimed);
            let after = conn.storage_metrics().ok().flatten();
            let overhead = match (before, after) {
                (Some(b), Some(a)) => Some(a.since(&b)),
                _ => None,
            };
            (result, overhead)
        };
        if let Some(delta) = overhead {
            self.slots[index].probe_overhead.merge(&delta);
        }
        self.probes_run += 1;
        match probe_result {
            Ok((_probed, drift)) => self.probe_downgrades += drift.len() as u64,
            Err(msg) => panic!("{INFRA_MARKER} capability probe failed on re-sync: {msg}"),
        }
        let replay_failure = {
            let conn = self.slots[index].conn.as_mut().expect("connected above");
            conn.reset();
            let mut failure = None;
            for sql in &log {
                // Replay outcomes mirror the original safe-mode outcomes;
                // ordinary failures were recorded too and fail identically
                // here. A *marked* outcome is a garbled/dropped frame
                // inside the replay itself — infrastructure, not history.
                if let StatementOutcome::Failure(msg) = conn.execute(sql) {
                    if msg.contains(INFRA_MARKER) {
                        failure = Some(msg);
                        break;
                    }
                }
            }
            failure
        };
        if let Some(msg) = replay_failure {
            panic!("{INFRA_MARKER} pool re-sync replay failed: {msg}");
        }
        self.slots[index].epoch = self.epoch;
        self.slots[index].synced = self.sync_log.len();
        self.slots[index].resyncs += 1;
        self.slots[index].replayed += log.len() as u64;
    }

    /// The virtual breaker slot guarding a case.
    fn vslot(case_seed: u64) -> usize {
        (case_seed % BREAKER_SLOTS as u64) as usize
    }

    /// Checkout-time routing query: returns `true` when the virtual slot's
    /// breaker is open (detour), transitioning expired breakers to
    /// half-open first.
    fn breaker_is_open(&mut self, vslot: usize) -> bool {
        let clock = self.resilience_clock;
        let breaker = &mut self.breakers[vslot];
        if let BreakerState::Open { until } = breaker.state {
            if clock >= until {
                breaker.state = BreakerState::HalfOpen;
                return false;
            }
            return true;
        }
        false
    }

    /// Counts one infra-classified case failure against a virtual slot.
    fn breaker_note_failure(&mut self, vslot: usize) {
        let clock = self.resilience_clock;
        let breaker = &mut self.breakers[vslot];
        match breaker.state {
            BreakerState::Closed => {
                breaker.consecutive += 1;
                if breaker.consecutive >= BREAKER_THRESHOLD {
                    let until = clock + (BREAKER_BACKOFF_BASE << breaker.backoff_level);
                    breaker.state = BreakerState::Open { until };
                    breaker.consecutive = 0;
                    breaker.trips += 1;
                    self.resilience_events
                        .push(ResilienceEvent::BreakerTripped {
                            vslot,
                            clock,
                            until,
                        });
                }
            }
            BreakerState::HalfOpen => {
                // The readmission probe failed: reopen with doubled backoff.
                breaker.backoff_level = (breaker.backoff_level + 1).min(BREAKER_MAX_BACKOFF_LEVEL);
                let until = clock + (BREAKER_BACKOFF_BASE << breaker.backoff_level);
                breaker.state = BreakerState::Open { until };
                breaker.trips += 1;
                self.resilience_events
                    .push(ResilienceEvent::BreakerTripped {
                        vslot,
                        clock,
                        until,
                    });
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Counts one successfully completed case on a virtual slot.
    fn breaker_note_success(&mut self, vslot: usize) {
        let clock = self.resilience_clock;
        let breaker = &mut self.breakers[vslot];
        breaker.consecutive = 0;
        if breaker.state == BreakerState::HalfOpen {
            breaker.state = BreakerState::Closed;
            breaker.backoff_level = 0;
            breaker.recoveries += 1;
            self.resilience_events
                .push(ResilienceEvent::BreakerRecovered { vslot, clock });
        }
    }

    /// Records an infra-marked statement outcome observed mid-case: the
    /// current attempt has failed, count it once.
    fn note_infra_outcome(&mut self, message: &str) {
        if !self.in_case || !message.contains(INFRA_MARKER) {
            return;
        }
        let Some(pending) = self.pending_case else {
            return;
        };
        if pending.noted {
            return;
        }
        if let Some(pending) = self.pending_case.as_mut() {
            pending.noted = true;
        }
        self.breaker_note_failure(Self::vslot(pending.seed));
    }

    /// Marks the active slot as having observed the full sync log.
    fn mark_active_synced(&mut self) {
        let active = self.active;
        self.slots[active].epoch = self.epoch;
        self.slots[active].synced = self.sync_log.len();
    }
}

impl DbmsConnection for Pool {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        let active = self.active;
        let outcome = self.connected(active).execute(sql);
        if !self.in_case {
            self.sync_log.push(sql.to_string());
            self.mark_active_synced();
        }
        if let StatementOutcome::Failure(msg) = &outcome {
            self.note_infra_outcome(msg);
        }
        outcome
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        let active = self.active;
        let result = self.connected(active).query(sql);
        if let Err(msg) = &result {
            self.note_infra_outcome(msg);
        }
        result
    }

    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        let active = self.active;
        let outcome = self.connected(active).execute_ast(stmt);
        if !self.in_case {
            self.sync_log.push(stmt.to_string());
            self.mark_active_synced();
        }
        if let StatementOutcome::Failure(msg) = &outcome {
            self.note_infra_outcome(msg);
        }
        outcome
    }

    fn query_ast(&mut self, select: &sql_ast::Select) -> Result<QueryResult, String> {
        let active = self.active;
        let result = self.connected(active).query_ast(select);
        if let Err(msg) = &result {
            self.note_infra_outcome(msg);
        }
        result
    }

    fn reset(&mut self) {
        if self.in_case {
            // Oracle-internal rebuild: state is restored before the case
            // ends, so the between-cases log stays authoritative.
            let active = self.active;
            self.connected(active).reset();
        } else {
            self.epoch += 1;
            self.sync_log.clear();
            let active = self.active;
            self.connected(active).reset();
            self.mark_active_synced();
        }
    }

    fn quirks(&self) -> DialectQuirks {
        self.capability.quirks()
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        let active = self.active;
        self.connected(active).open_session()
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        // Deterministic across pool sizes: per-case contributions land on
        // seed-chosen slots, re-syncs (reset + replay onto a fresh engine)
        // contribute zero, and probe-caused counter bumps — whose count
        // *does* depend on the pool size — are subtracted per slot.
        let mut total: Option<StorageMetrics> = None;
        for slot in &self.slots {
            if let Some(conn) = slot.conn.as_ref() {
                if let Some(metrics) = conn.storage_metrics()? {
                    let metrics = metrics.since(&slot.probe_overhead);
                    match total.as_mut() {
                        Some(sum) => sum.merge(&metrics),
                        None => total = Some(metrics),
                    }
                }
            }
        }
        Ok(total)
    }

    fn begin_case(&mut self, case_seed: u64) {
        if case_seed == 0 {
            self.in_case = false;
            let active = self.active;
            if self.slots[active].conn.is_some() {
                self.connected(active).begin_case(0);
            }
        } else {
            // The resilience clock ticks once per checkout (retries
            // included) — pure virtual time, identical for every pool size
            // and worker count.
            self.resilience_clock += 1;
            // A repeated seed is a supervisor retry: the previous attempt
            // died without an observable statement outcome (a panic or a
            // watchdog overrun). Settle it against the breaker before
            // routing the retry, and pin the retry to the slot the first
            // attempt ran on (see [`PendingCase::physical`]).
            let retry_slot = match self.pending_case.take() {
                Some(pending) if pending.seed == case_seed => {
                    if !pending.noted {
                        self.breaker_note_failure(Self::vslot(case_seed));
                    }
                    Some(pending.physical.min(self.slots.len() - 1))
                }
                _ => None,
            };
            // Seed-ordered checkout through the virtual breaker slot: the
            // physical slot is a pure function of the seed and the breaker
            // state (itself seed-planned under injected faults), so retries
            // land deterministically and reports are identical for any pool
            // size. An open breaker detours fresh cases to the next slot;
            // detours are verdict-neutral because every synced slot serves
            // identical state.
            let vslot = Self::vslot(case_seed);
            let base = vslot % self.slots.len();
            let target = match retry_slot {
                Some(slot) => slot,
                None if self.breaker_is_open(vslot) => (base + 1) % self.slots.len(),
                None => base,
            };
            self.pending_case = Some(PendingCase {
                seed: case_seed,
                physical: target,
                noted: false,
            });
            self.sync_slot(target);
            self.active = target;
            self.in_case = true;
            self.slots[target].checkouts += 1;
            self.connected(target).begin_case(case_seed);
        }
    }

    fn virtual_ticks(&self) -> u64 {
        self.slots[self.active]
            .conn
            .as_ref()
            .map(|conn| conn.virtual_ticks())
            .unwrap_or(0)
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        let active = self.active;
        self.connected(active).checkpoint()
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        let active = self.active;
        self.connected(active).restore(checkpoint)
    }

    fn engine_coverage(&self) -> Option<crate::dbms::EngineCoverage> {
        // Deterministic across pool sizes: each slot's sets are cumulative
        // for the slot's lifetime (the EngineCoverage monotonicity
        // contract), and the first execution to reach a point always
        // records it on whichever slot it ran, so the union over slots is
        // exactly "every point any execution reached".
        let mut total: Option<crate::dbms::EngineCoverage> = None;
        for slot in &self.slots {
            if let Some(conn) = slot.conn.as_ref() {
                if let Some(coverage) = conn.engine_coverage() {
                    match total.as_mut() {
                        Some(sum) => sum.merge(&coverage),
                        None => total = Some(coverage),
                    }
                }
            }
        }
        total
    }

    fn drain_backend_events(&mut self) -> Vec<crate::trace::BackendEvent> {
        // Wall-clock plane only: checkout, re-sync and probe counts depend
        // on the pool size by construction, so they must never feed the
        // deterministic trace summary. (Breaker trips/recoveries *are*
        // deterministic — their authoritative record is the incident
        // ledger; the copies here are telemetry convenience.)
        let mut events = Vec::new();
        if self.probes_run > 0 {
            events.push(crate::trace::BackendEvent::CapabilityProbes {
                count: self.probes_run,
                downgrades: self.probe_downgrades,
            });
            self.probes_run = 0;
            self.probe_downgrades = 0;
        }
        for (vslot, breaker) in self.breakers.iter_mut().enumerate() {
            if breaker.trips > 0 {
                events.push(crate::trace::BackendEvent::BreakerTrips {
                    slot: vslot,
                    count: breaker.trips,
                });
                breaker.trips = 0;
            }
            if breaker.recoveries > 0 {
                events.push(crate::trace::BackendEvent::BreakerRecoveries {
                    slot: vslot,
                    count: breaker.recoveries,
                });
                breaker.recoveries = 0;
            }
        }
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.checkouts > 0 {
                events.push(crate::trace::BackendEvent::SlotCheckouts {
                    slot: index,
                    count: slot.checkouts,
                });
                slot.checkouts = 0;
            }
            if slot.resyncs > 0 {
                events.push(crate::trace::BackendEvent::SlotResyncs {
                    slot: index,
                    count: slot.resyncs,
                    replayed: slot.replayed,
                });
                slot.resyncs = 0;
                slot.replayed = 0;
            }
            if let Some(conn) = slot.conn.as_mut() {
                events.extend(conn.drain_backend_events());
            }
        }
        events
    }

    fn drain_resilience_events(&mut self) -> Vec<ResilienceEvent> {
        std::mem::take(&mut self.resilience_events)
    }

    fn note_case_outcome(&mut self, case_seed: u64, infra_failed: bool) {
        let Some(pending) = self.pending_case.take() else {
            return;
        };
        if pending.seed != case_seed {
            // Foreign settlement (a runner that skipped checkout): put the
            // tracked case back and ignore.
            self.pending_case = Some(pending);
            return;
        }
        let vslot = Self::vslot(case_seed);
        if infra_failed {
            if !pending.noted {
                self.breaker_note_failure(vslot);
            }
        } else {
            self.breaker_note_success(vslot);
        }
    }

    fn resilience_checkpoint(&self) -> Option<String> {
        use std::fmt::Write as _;
        let mut out = format!("v1 clock {}", self.resilience_clock);
        for breaker in &self.breakers {
            let (state, until) = match breaker.state {
                BreakerState::Closed => ("closed", 0),
                BreakerState::HalfOpen => ("half", 0),
                BreakerState::Open { until } => ("open", until),
            };
            let _ = write!(
                out,
                " | {} {state} {until} {}",
                breaker.consecutive, breaker.backoff_level
            );
        }
        Some(out)
    }

    fn restore_resilience(&mut self, data: &str) -> bool {
        let mut parts = data.split(" | ");
        let Some(head) = parts.next() else {
            return false;
        };
        let head: Vec<&str> = head.split_whitespace().collect();
        let [version, tag, clock] = head.as_slice() else {
            return false;
        };
        if *version != "v1" || *tag != "clock" {
            return false;
        }
        let Ok(clock) = clock.parse::<u64>() else {
            return false;
        };
        let mut breakers = Vec::with_capacity(BREAKER_SLOTS);
        for part in parts {
            let fields: Vec<&str> = part.split_whitespace().collect();
            let [consecutive, state, until, backoff_level] = fields.as_slice() else {
                return false;
            };
            let (Ok(consecutive), Ok(until), Ok(backoff_level)) = (
                consecutive.parse::<u32>(),
                until.parse::<u64>(),
                backoff_level.parse::<u32>(),
            ) else {
                return false;
            };
            let state = match *state {
                "closed" => BreakerState::Closed,
                "half" => BreakerState::HalfOpen,
                "open" => BreakerState::Open { until },
                _ => return false,
            };
            breakers.push(Breaker {
                state,
                consecutive,
                backoff_level,
                trips: 0,
                recoveries: 0,
            });
        }
        if breakers.len() != BREAKER_SLOTS {
            return false;
        }
        self.resilience_clock = clock;
        self.breakers = breakers;
        self.pending_case = None;
        true
    }

    fn note_database_boundary(&mut self) {
        // Each database state starts with healthy slots and a zeroed
        // backoff clock: this keeps breaker incidents invariant between a
        // multi-database campaign and its per-database partitioned shards.
        self.resilience_clock = 0;
        self.pending_case = None;
        for breaker in &mut self.breakers {
            breaker.reset_deterministic();
        }
        // Re-announce capability drift once per database, so the incident
        // ledger carries the lie for every database state it affected.
        for detail in &self.drift_details {
            self.resilience_events
                .push(ResilienceEvent::CapabilityDrift {
                    detail: detail.clone(),
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capability_is_full_featured() {
        let cap = Capability::default();
        assert!(cap.transactions && cap.savepoints && cap.multi_session);
        assert!(cap.ast_statements && cap.state_checkpoints && cap.storage_metrics);
        assert!(cap.unsupported_statement_features().is_empty());
    }

    #[test]
    fn text_only_capability_disables_engine_internals() {
        let cap = Capability::text_only();
        assert!(cap.transactions && cap.savepoints);
        assert!(!cap.multi_session && !cap.ast_statements);
        assert!(!cap.state_checkpoints && !cap.storage_metrics);
    }

    #[test]
    fn capability_without_transactions_suppresses_txn_statements() {
        let cap = Capability {
            transactions: false,
            savepoints: false,
            ..Capability::default()
        };
        let features = cap.unsupported_statement_features();
        for name in [
            "STMT_BEGIN",
            "STMT_COMMIT",
            "STMT_ROLLBACK",
            "STMT_SAVEPOINT",
            "STMT_ROLLBACK_TO",
            "STMT_RELEASE_SAVEPOINT",
        ] {
            assert!(
                features.contains(&Feature::statement(name)),
                "missing {name}"
            );
        }
    }

    #[test]
    fn capability_quirks_round_trip() {
        let cap = Capability {
            requires_refresh: true,
            requires_commit: true,
            ..Capability::default()
        };
        let quirks = cap.quirks();
        assert!(quirks.requires_refresh && quirks.requires_commit);
    }

    /// A scriptable backend for pool tests: accepts everything, except that
    /// the lying variant rejects transaction control at runtime while its
    /// driver still claims support.
    struct ProbeConn {
        lie_transactions: bool,
    }

    impl DbmsConnection for ProbeConn {
        fn name(&self) -> &str {
            "probe-toy"
        }
        fn execute(&mut self, sql: &str) -> StatementOutcome {
            let upper = sql.trim().to_ascii_uppercase();
            if self.lie_transactions
                && (upper.starts_with("BEGIN")
                    || upper.starts_with("COMMIT")
                    || upper.starts_with("ROLLBACK"))
            {
                return StatementOutcome::Failure("transaction control rejected by backend".into());
            }
            StatementOutcome::Success
        }
        fn query(&mut self, _sql: &str) -> Result<QueryResult, String> {
            Ok(QueryResult {
                columns: vec!["c0".into()],
                rows: vec![],
            })
        }
        fn reset(&mut self) {}
        fn quirks(&self) -> DialectQuirks {
            DialectQuirks::default()
        }
    }

    struct ProbeDriver {
        lie_transactions: bool,
    }

    impl Driver for ProbeDriver {
        fn name(&self) -> &str {
            "probe-toy"
        }
        fn capability(&self) -> Capability {
            // Claims transactions and savepoints; the engine-internal
            // families are off so the probe exercises the wire families.
            Capability::text_only().with_ast_statements(false)
        }
        fn connect(&self) -> Result<Box<dyn DbmsConnection>, String> {
            Ok(Box::new(ProbeConn {
                lie_transactions: self.lie_transactions,
            }))
        }
    }

    fn honest_pool(size: usize) -> Pool {
        Pool::new(
            Arc::new(ProbeDriver {
                lie_transactions: false,
            }),
            size,
        )
        .expect("pool connects")
    }

    #[test]
    fn probe_confirms_honest_capability_claim() {
        let pool = honest_pool(2);
        assert!(pool.capability().transactions);
        assert!(pool.capability().savepoints);
        assert!(pool.drift_details().is_empty());
    }

    #[test]
    fn probe_downgrades_lying_driver_and_reports_drift() {
        let pool = Pool::new(
            Arc::new(ProbeDriver {
                lie_transactions: true,
            }),
            2,
        )
        .expect("pool connects");
        assert!(!pool.capability().transactions, "lie must be probed away");
        assert_eq!(pool.drift_details().len(), 1);
        assert!(pool.drift_details()[0].contains("BEGIN"));
    }

    #[test]
    fn database_boundary_reannounces_drift_as_events() {
        let mut pool = Pool::new(
            Arc::new(ProbeDriver {
                lie_transactions: true,
            }),
            1,
        )
        .expect("pool connects");
        assert!(pool.drain_resilience_events().is_empty());
        pool.note_database_boundary();
        let events = pool.drain_resilience_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            ResilienceEvent::CapabilityDrift { detail } if detail.contains("transactions")
        ));
    }

    /// A seed in virtual slot 1 (any seed ≡ 1 mod `BREAKER_SLOTS`).
    fn vslot1_seed(i: u64) -> u64 {
        1 + i * BREAKER_SLOTS as u64
    }

    #[test]
    fn breaker_trips_after_threshold_and_detours_checkout() {
        let mut pool = honest_pool(2);
        // Two consecutive infra-failed cases on virtual slot 1.
        for i in 0..u64::from(BREAKER_THRESHOLD) {
            let seed = vslot1_seed(i);
            pool.begin_case(seed);
            pool.begin_case(0);
            pool.note_case_outcome(seed, true);
        }
        let events = pool.drain_resilience_events();
        assert!(
            matches!(
                events.as_slice(),
                [ResilienceEvent::BreakerTripped { vslot: 1, .. }]
            ),
            "expected exactly one trip, got {events:?}"
        );
        // While open, a vslot-1 case detours from physical slot 1 to 0.
        pool.begin_case(vslot1_seed(9));
        assert_eq!(pool.active_slot(), 0);
        pool.begin_case(0);
        pool.note_case_outcome(vslot1_seed(9), false);
        // vslot-2 cases are unaffected.
        pool.begin_case(2);
        assert_eq!(pool.active_slot(), 0);
        pool.begin_case(0);
        pool.note_case_outcome(2, false);
    }

    #[test]
    fn breaker_half_open_probe_recovers_slot() {
        let mut pool = honest_pool(2);
        for i in 0..u64::from(BREAKER_THRESHOLD) {
            let seed = vslot1_seed(i);
            pool.begin_case(seed);
            pool.begin_case(0);
            pool.note_case_outcome(seed, true);
        }
        assert_eq!(pool.drain_resilience_events().len(), 1);
        // Burn checkouts until the backoff window passes.
        for i in 0..BREAKER_BACKOFF_BASE {
            let seed = 2 + i * BREAKER_SLOTS as u64;
            pool.begin_case(seed);
            pool.begin_case(0);
            pool.note_case_outcome(seed, false);
        }
        // The next vslot-1 case is the half-open probe: it routes to the
        // slot's own base again and, succeeding, closes the breaker.
        let probe_seed = vslot1_seed(40);
        pool.begin_case(probe_seed);
        assert_eq!(pool.active_slot(), 1);
        pool.begin_case(0);
        pool.note_case_outcome(probe_seed, false);
        let events = pool.drain_resilience_events();
        assert!(
            matches!(
                events.as_slice(),
                [ResilienceEvent::BreakerRecovered { vslot: 1, .. }]
            ),
            "expected a recovery, got {events:?}"
        );
    }

    #[test]
    fn retry_checkout_settles_unobserved_panic_attempt() {
        let mut pool = honest_pool(1);
        let seed = vslot1_seed(0);
        // Two checkouts of the same seed with no outcome in between model
        // a panicked attempt plus its supervisor retry; the second failure
        // is settled through note_case_outcome.
        pool.begin_case(seed);
        pool.begin_case(seed);
        pool.begin_case(0);
        pool.note_case_outcome(seed, true);
        let events = pool.drain_resilience_events();
        assert!(
            matches!(
                events.as_slice(),
                [ResilienceEvent::BreakerTripped { vslot: 1, .. }]
            ),
            "panic retry + final failure must trip at threshold 2, got {events:?}"
        );
    }

    #[test]
    fn resilience_checkpoint_round_trips_through_restore() {
        let mut pool = honest_pool(2);
        for i in 0..u64::from(BREAKER_THRESHOLD) {
            let seed = vslot1_seed(i);
            pool.begin_case(seed);
            pool.begin_case(0);
            pool.note_case_outcome(seed, true);
        }
        pool.drain_resilience_events();
        let snapshot = pool.resilience_checkpoint().expect("pool snapshots");
        let mut fresh = honest_pool(2);
        assert!(fresh.restore_resilience(&snapshot));
        assert_eq!(fresh.resilience_checkpoint().as_deref(), Some(&*snapshot));
        // The restored pool detours exactly like the original.
        fresh.begin_case(vslot1_seed(9));
        assert_eq!(fresh.active_slot(), 0);
        assert!(!fresh.restore_resilience("garbage"));
        assert!(!fresh.restore_resilience("v1 clock x | nope"));
    }

    #[test]
    fn database_boundary_resets_breaker_state() {
        let mut pool = honest_pool(2);
        for i in 0..u64::from(BREAKER_THRESHOLD) {
            let seed = vslot1_seed(i);
            pool.begin_case(seed);
            pool.begin_case(0);
            pool.note_case_outcome(seed, true);
        }
        pool.drain_resilience_events();
        pool.note_database_boundary();
        pool.drain_resilience_events();
        // Breaker closed again: vslot-1 cases route to their base slot.
        pool.begin_case(vslot1_seed(3));
        assert_eq!(pool.active_slot(), 1);
        let snapshot = pool.resilience_checkpoint().expect("pool snapshots");
        assert!(
            snapshot.contains("clock 1"),
            "boundary resets the clock: {snapshot}"
        );
    }
}
