//! Two-plane campaign telemetry: the deterministic flight recorder.
//!
//! The campaign's determinism contract (byte-identical reports for any
//! worker count and pool size) makes observability a design problem:
//! naive tracing — wall-clock timestamps, per-worker logs — would be the
//! one output that breaks under parallelism. This module therefore splits
//! telemetry into two planes with different guarantees:
//!
//! * The **deterministic plane**: structured per-case lifecycle events
//!   ([`TraceEvent`] — generate → setup → statement → verdict → reduce →
//!   prioritize, plus supervisor retry/incident/quarantine events), each
//!   stamped with the case seed and **virtual ticks** (never wall time),
//!   aggregated into log2-bucket latency histograms per (oracle kind ×
//!   dialect) ([`TraceSummary`]). Summaries merge across shards by pure
//!   summation, so serial, partitioned and pooled runs of the same
//!   campaign render byte-identical [`render_trace_summary`] dashboards.
//!   Tick stamps are per-case *deltas*, sampled after the pool's slot
//!   checkout/re-sync — absolute slot clocks depend on the pool size,
//!   deltas do not.
//!
//! * The **wall-clock plane**, explicitly *outside* the determinism
//!   contract: a live progress reporter ([`ProgressSnapshot`] via a
//!   periodic callback — cases/sec, validity rate, bug count, quarantine
//!   state), operational backend events ([`BackendEvent`] — pool slot
//!   checkouts and re-syncs, wire bytes, child respawns; all pool-size-
//!   or transport-dependent), and a JSONL **flight recorder**
//!   ([`FlightRecorder`]) keeping a bounded ring of recent cases plus the
//!   *full* event history of every bug-report and infra-incident case,
//!   flushed on campaign end and at every checkpoint so post-mortem
//!   forensics survive a crash.
//!
//! The [`TraceSink`] trait is the seam: campaigns and supervisors emit
//! into any sink ([`NoopSink`] for zero-cost untraced runs, [`Tracer`]
//! for the batteries-included implementation) through a shared
//! [`TraceHandle`].

use crate::dbms::{
    DbmsConnection, DialectQuirks, QueryResult, StateCheckpoint, StatementOutcome, StorageMetrics,
};
use crate::oracle::OracleKind;
use crate::supervisor::IncidentKind;
use sql_ast::{Select, Statement};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

// ---------------------------------------------------- deterministic plane ----

/// Compressed oracle verdict as it appears in the trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceVerdict {
    /// The derived queries agreed.
    Pass,
    /// The case was invalid for this dialect (validity feedback).
    Invalid,
    /// A bug-inducing test case.
    Bug,
    /// Every attempt failed on infrastructure errors; the case was
    /// abandoned by the supervisor.
    InfraFailed,
    /// The oracle panicked without an infrastructure marker.
    Panicked,
}

impl TraceVerdict {
    /// Canonical lowercase name (JSONL and dashboard rendering).
    pub fn name(self) -> &'static str {
        match self {
            TraceVerdict::Pass => "pass",
            TraceVerdict::Invalid => "invalid",
            TraceVerdict::Bug => "bug",
            TraceVerdict::InfraFailed => "infra_failed",
            TraceVerdict::Panicked => "panicked",
        }
    }
}

/// What happened, within one deterministic-plane trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A test case was generated and is about to run (ticks = 0).
    CaseStarted {
        /// Database index within the campaign.
        database: usize,
        /// Campaign-global test-case counter.
        case_index: u64,
        /// The oracle scheduled for the case.
        oracle: OracleKind,
    },
    /// One statement executed *outside* a case — database setup, recovery
    /// replay or reduction probes (ticks = that statement's virtual cost).
    SetupStatement {
        /// Whether the statement succeeded.
        ok: bool,
    },
    /// One statement executed inside a case attempt (ticks = cost).
    Statement {
        /// Whether the statement succeeded.
        ok: bool,
    },
    /// The supervisor resolved the case (ticks = the final attempt's
    /// elapsed virtual ticks, as the watchdog measured them).
    Verdict {
        /// How the case resolved.
        verdict: TraceVerdict,
    },
    /// The supervisor scheduled a retry after a failed attempt (ticks =
    /// the deterministic virtual backoff charged).
    Retry {
        /// The attempt number that failed (0 = first try).
        attempt: u32,
        /// The failure classification driving the retry.
        kind: IncidentKind,
    },
    /// An incident was recorded in the supervision ledger (ticks = the
    /// observed virtual ticks of the failed attempt; 0 for out-of-case
    /// incidents such as storage-counter read failures).
    Incident {
        /// The incident classification.
        kind: IncidentKind,
    },
    /// The dialect crossed the quarantine threshold; the campaign stops.
    Quarantined,
    /// A detected bug case was minimised by the reducer (ticks = 0).
    Reduced {
        /// Setup + query statements before reduction.
        statements_before: usize,
        /// Statements after reduction.
        statements_after: usize,
    },
    /// The prioritizer ruled on a detected bug (ticks = 0).
    Prioritized {
        /// `true` when the bug was kept (a new feature pattern), `false`
        /// when deduplicated away.
        kept: bool,
    },
}

/// One deterministic-plane trace event: the case seed, a virtual-tick
/// stamp (a per-event *delta*, never wall time and never an absolute
/// slot clock), and what happened. Two campaigns with the same seed emit
/// identical event streams regardless of worker count or pool size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The case seed (0 for out-of-case events: setup, recovery replay).
    pub case_seed: u64,
    /// Virtual ticks attributed to this event.
    pub ticks: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Why a sink is being flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The campaign wrote a resume checkpoint; flushing here means the
    /// flight recorder survives a crash alongside the checkpoint.
    Checkpoint,
    /// The campaign finished (normally, by budget or by quarantine).
    CampaignEnd,
}

/// A telemetry sink for campaign traces.
///
/// [`TraceSink::event`] is the deterministic plane; everything else is
/// wall-clock-plane and has inert defaults. Implementations must never
/// fail the campaign: telemetry errors are swallowed, not propagated.
pub trait TraceSink {
    /// Announces the dialect whose campaign is about to emit events.
    /// Called once per campaign (and once per shard of a partitioned
    /// campaign); subsequent events accrue to this dialect.
    fn begin_campaign(&mut self, dialect: &str) {
        let _ = dialect;
    }

    /// Receives one deterministic-plane event.
    fn event(&mut self, event: &TraceEvent);

    /// Receives one wall-clock-plane backend event (pool/wire telemetry,
    /// outside the determinism contract).
    fn backend_event(&mut self, event: &BackendEvent) {
        let _ = event;
    }

    /// Receives the campaign's current coverage atlas. The campaign calls
    /// this right before every checkpoint flush and once at campaign end,
    /// so a flushed JSONL file always carries the atlas state it was
    /// flushed with. The default discards it.
    fn coverage(&mut self, dialect: &str, atlas: &crate::atlas::CampaignCoverage) {
        let _ = (dialect, atlas);
    }

    /// Flushes buffered state (the flight recorder's JSONL file).
    fn flush(&mut self, reason: FlushReason) {
        let _ = reason;
    }
}

/// The zero-cost sink: discards everything. The tracing-overhead
/// benchmark gate compares full tracing against this baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&mut self, _event: &TraceEvent) {}
}

/// A shared, cloneable handle to a trace sink. Campaigns, supervisors and
/// traced connections each hold a clone; the caller keeps the original to
/// extract summaries after the run. `Rc` (not `Arc`): a sink belongs to
/// one campaign worker — partitioned runs build one sink per shard and
/// merge the [`TraceSummary`] values, which are plain `Send` data.
pub type TraceHandle = Rc<RefCell<dyn TraceSink>>;

/// Emits one event into an optional handle (the no-trace path is a single
/// `Option` test).
pub(crate) fn emit(trace: &Option<TraceHandle>, case_seed: u64, ticks: u64, kind: TraceEventKind) {
    if let Some(sink) = trace {
        sink.borrow_mut().event(&TraceEvent {
            case_seed,
            ticks,
            kind,
        });
    }
}

/// Forwards every drained backend event into an optional handle.
pub(crate) fn emit_backend(trace: &Option<TraceHandle>, conn: &mut dyn DbmsConnection) {
    if let Some(sink) = trace {
        for event in conn.drain_backend_events() {
            sink.borrow_mut().backend_event(&event);
        }
    }
}

// -------------------------------------------------------------- histogram ----

/// A log2-bucket histogram of virtual-tick latencies: the shared
/// [`crate::hist::Log2Histogram`] implementation, which the coverage
/// atlas's novelty-gap counters also use. Bucket-wise summation merges
/// are exact and order-independent — the property that makes partitioned
/// trace summaries byte-identical to serial ones.
pub use crate::hist::Log2Histogram as LatencyHistogram;

// ---------------------------------------------------------- trace summary ----

/// Deterministic-plane event counters for one dialect. Every field is a
/// plain sum, so counters merge exactly across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Test cases started.
    pub cases: u64,
    /// Virtual ticks of final case attempts, summed (the elapsed value
    /// each verdict was stamped with; retried attempts' ticks stay
    /// visible on their incident events, not here).
    pub case_ticks: u64,
    /// In-case statements executed.
    pub statements: u64,
    /// In-case statements that failed.
    pub statement_errors: u64,
    /// Out-of-case statements (setup, recovery replay, reduction probes).
    pub setup_statements: u64,
    /// Out-of-case statements that failed.
    pub setup_errors: u64,
    /// Cases resolved as passed.
    pub verdict_pass: u64,
    /// Cases resolved as invalid.
    pub verdict_invalid: u64,
    /// Cases resolved as bug-inducing.
    pub verdict_bug: u64,
    /// Cases abandoned after exhausting their retry budget.
    pub verdict_infra: u64,
    /// Cases abandoned on a non-infra oracle panic.
    pub verdict_panic: u64,
    /// Retries scheduled by the supervisor.
    pub retries: u64,
    /// Virtual ticks charged as retry backoff.
    pub backoff_ticks: u64,
    /// Incidents recorded in the supervision ledger.
    pub incidents: u64,
    /// Watchdog deadline overruns among those incidents.
    pub watchdog_trips: u64,
    /// Dialect quarantines.
    pub quarantines: u64,
    /// Bug cases minimised by the reducer.
    pub reduced_bugs: u64,
    /// Statements removed by reduction, summed over bugs.
    pub reduced_statements_removed: u64,
    /// Detected bugs kept by the prioritizer.
    pub prioritized_kept: u64,
    /// Detected bugs deduplicated away.
    pub prioritized_dropped: u64,
}

impl TraceCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &TraceCounters) {
        self.cases += other.cases;
        self.case_ticks += other.case_ticks;
        self.statements += other.statements;
        self.statement_errors += other.statement_errors;
        self.setup_statements += other.setup_statements;
        self.setup_errors += other.setup_errors;
        self.verdict_pass += other.verdict_pass;
        self.verdict_invalid += other.verdict_invalid;
        self.verdict_bug += other.verdict_bug;
        self.verdict_infra += other.verdict_infra;
        self.verdict_panic += other.verdict_panic;
        self.retries += other.retries;
        self.backoff_ticks += other.backoff_ticks;
        self.incidents += other.incidents;
        self.watchdog_trips += other.watchdog_trips;
        self.quarantines += other.quarantines;
        self.reduced_bugs += other.reduced_bugs;
        self.reduced_statements_removed += other.reduced_statements_removed;
        self.prioritized_kept += other.prioritized_kept;
        self.prioritized_dropped += other.prioritized_dropped;
    }
}

/// The deterministic trace aggregate for one dialect: event counters, a
/// case-latency histogram per oracle kind, and an all-statements latency
/// histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DialectTrace {
    /// Summed event counters.
    pub counters: TraceCounters,
    /// Case-latency histograms (final-attempt elapsed virtual ticks),
    /// keyed by the oracle that ran the case.
    pub oracles: BTreeMap<OracleKind, LatencyHistogram>,
    /// Per-statement virtual-cost histogram (in-case statements).
    pub statements: LatencyHistogram,
}

impl DialectTrace {
    /// Accumulates another dialect trace into this one.
    pub fn merge(&mut self, other: &DialectTrace) {
        self.counters.merge(&other.counters);
        for (oracle, histogram) in &other.oracles {
            self.oracles.entry(*oracle).or_default().merge(histogram);
        }
        self.statements.merge(&other.statements);
    }
}

/// The deterministic-plane trace aggregate: per-dialect traces, keyed by
/// dialect name. Plain `Send` data — partitioned runners build one
/// [`Tracer`] per shard worker and merge the extracted summaries, in any
/// order, to a byte-identical result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Dialect name → its deterministic trace.
    pub dialects: BTreeMap<String, DialectTrace>,
}

impl TraceSummary {
    /// An empty summary.
    pub fn new() -> TraceSummary {
        TraceSummary::default()
    }

    /// Accumulates another summary into this one (exact summation; the
    /// merge is commutative and associative, so shard order is
    /// irrelevant).
    pub fn merge(&mut self, other: &TraceSummary) {
        for (dialect, trace) in &other.dialects {
            self.dialects
                .entry(dialect.clone())
                .or_default()
                .merge(trace);
        }
    }
}

/// Renders the canonical text dashboard for a trace summary. Like
/// [`crate::resume::render_report`], this is the byte-identity witness:
/// two summaries render identically iff every deterministic-plane
/// aggregate matches. Integer-only, fixed field order, no wall time.
pub fn render_trace_summary(summary: &TraceSummary) -> String {
    let mut out = String::new();
    out.push_str("=== trace summary ===\n");
    for (dialect, trace) in &summary.dialects {
        let c = &trace.counters;
        let _ = writeln!(out, "dialect {dialect}");
        let _ = writeln!(out, "  cases {} case-ticks {}", c.cases, c.case_ticks);
        let _ = writeln!(
            out,
            "  statements {} errors {} setup-statements {} setup-errors {}",
            c.statements, c.statement_errors, c.setup_statements, c.setup_errors
        );
        let _ = writeln!(
            out,
            "  verdicts pass {} invalid {} bug {} infra {} panic {}",
            c.verdict_pass, c.verdict_invalid, c.verdict_bug, c.verdict_infra, c.verdict_panic
        );
        let _ = writeln!(
            out,
            "  supervisor retries {} backoff-ticks {} incidents {} watchdog {} quarantines {}",
            c.retries, c.backoff_ticks, c.incidents, c.watchdog_trips, c.quarantines
        );
        let _ = writeln!(
            out,
            "  reduce bugs {} statements-removed {}",
            c.reduced_bugs, c.reduced_statements_removed
        );
        let _ = writeln!(
            out,
            "  prioritize kept {} dropped {}",
            c.prioritized_kept, c.prioritized_dropped
        );
        for (oracle, histogram) in &trace.oracles {
            render_histogram(&mut out, &format!("latency {}", oracle.name()), histogram);
        }
        render_histogram(&mut out, "latency statement", &trace.statements);
    }
    out
}

fn render_histogram(out: &mut String, label: &str, histogram: &LatencyHistogram) {
    let _ = writeln!(
        out,
        "  {label} count {} ticks {} max {}",
        histogram.count(),
        histogram.sum(),
        histogram.max()
    );
    for (index, lower, count) in histogram.nonzero_buckets() {
        let _ = writeln!(out, "    b{index} ({lower}+) {count}");
    }
}

// ------------------------------------------------------- wall-clock plane ----

/// An operational backend event, drained from connections via
/// [`DbmsConnection::drain_backend_events`]. Counts are aggregates since
/// the previous drain. **Outside the determinism contract**: checkout and
/// re-sync counts depend on the pool size, wire bytes on transport
/// framing — none of it may leak into [`TraceSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendEvent {
    /// A pool slot was checked out for cases.
    SlotCheckouts {
        /// The slot index.
        slot: usize,
        /// Checkouts since the last drain.
        count: u64,
    },
    /// A stale pool slot was re-synced by replaying the sync log.
    SlotResyncs {
        /// The slot index.
        slot: usize,
        /// Re-syncs since the last drain.
        count: u64,
        /// Statements replayed across those re-syncs.
        replayed: u64,
    },
    /// Bytes written to a wire backend.
    WireWrites {
        /// Bytes written since the last drain.
        bytes: u64,
    },
    /// Bytes read from a wire backend.
    WireReads {
        /// Bytes read since the last drain.
        bytes: u64,
    },
    /// Statements framed with an end-of-output sentinel on the wire.
    SentinelFrames {
        /// Frames since the last drain.
        count: u64,
    },
    /// Backend child processes (re)spawned.
    Respawns {
        /// Respawns since the last drain.
        count: u64,
    },
    /// Runtime capability probes executed against pool slots.
    CapabilityProbes {
        /// Probes run since the last drain.
        count: u64,
        /// Probes that downgraded at least one statically claimed family.
        downgrades: u64,
    },
    /// Circuit-breaker trips on a physical pool slot.
    BreakerTrips {
        /// The physical slot index the tripped virtual slot maps to.
        slot: usize,
        /// Trips since the last drain.
        count: u64,
    },
    /// Circuit-breaker recoveries (half-open probe succeeded).
    BreakerRecoveries {
        /// The physical slot index the recovered virtual slot maps to.
        slot: usize,
        /// Recoveries since the last drain.
        count: u64,
    },
}

/// Accumulated wall-clock-plane backend telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendTelemetry {
    /// Pool slot checkouts.
    pub slot_checkouts: u64,
    /// Stale-slot re-syncs.
    pub slot_resyncs: u64,
    /// Statements replayed during re-syncs.
    pub resync_statements: u64,
    /// Bytes written to wire backends.
    pub wire_bytes_written: u64,
    /// Bytes read from wire backends.
    pub wire_bytes_read: u64,
    /// Sentinel-framed statements on the wire.
    pub sentinel_frames: u64,
    /// Backend child respawns.
    pub respawns: u64,
    /// Runtime capability probes executed.
    pub capability_probes: u64,
    /// Capability probes that downgraded a static claim.
    pub capability_downgrades: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries.
    pub breaker_recoveries: u64,
}

impl BackendTelemetry {
    /// Folds one drained event into the totals.
    pub fn absorb(&mut self, event: &BackendEvent) {
        match event {
            BackendEvent::SlotCheckouts { count, .. } => self.slot_checkouts += count,
            BackendEvent::SlotResyncs {
                count, replayed, ..
            } => {
                self.slot_resyncs += count;
                self.resync_statements += replayed;
            }
            BackendEvent::WireWrites { bytes } => self.wire_bytes_written += bytes,
            BackendEvent::WireReads { bytes } => self.wire_bytes_read += bytes,
            BackendEvent::SentinelFrames { count } => self.sentinel_frames += count,
            BackendEvent::Respawns { count } => self.respawns += count,
            BackendEvent::CapabilityProbes { count, downgrades } => {
                self.capability_probes += count;
                self.capability_downgrades += downgrades;
            }
            BackendEvent::BreakerTrips { count, .. } => self.breaker_trips += count,
            BackendEvent::BreakerRecoveries { count, .. } => self.breaker_recoveries += count,
        }
    }
}

/// A live-progress snapshot, delivered through the [`Tracer`]'s periodic
/// callback. Wall-clock plane: the rates use real elapsed time.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// The dialect under test.
    pub dialect: String,
    /// Cases resolved so far.
    pub cases: u64,
    /// Bug verdicts so far.
    pub bugs: u64,
    /// Invalid verdicts so far.
    pub invalid: u64,
    /// Valid fraction of resolved cases (1.0 while nothing resolved).
    pub validity_rate: f64,
    /// Cases per wall-clock second since tracing began.
    pub cases_per_sec: f64,
    /// Wall-clock seconds since tracing began.
    pub elapsed_secs: f64,
    /// Whether the dialect has been quarantined.
    pub quarantined: bool,
    /// Operational backend telemetry accumulated so far.
    pub backend: BackendTelemetry,
}

// --------------------------------------------------------- flight recorder ----

/// The complete event history of one case, as kept by the flight
/// recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRecord {
    /// Database index within the campaign.
    pub database: usize,
    /// Campaign-global test-case counter.
    pub case_index: u64,
    /// The case seed.
    pub case_seed: u64,
    /// The oracle that ran the case.
    pub oracle: OracleKind,
    /// The deterministic-plane events of the case, in emission order.
    pub events: Vec<TraceEvent>,
}

impl CaseRecord {
    /// The case's resolution, from its verdict event (`"open"` if the
    /// case never resolved — e.g. the campaign was killed mid-case).
    pub fn outcome(&self) -> &'static str {
        self.events
            .iter()
            .rev()
            .find_map(|event| match &event.kind {
                TraceEventKind::Verdict { verdict } => Some(verdict.name()),
                _ => None,
            })
            .unwrap_or("open")
    }

    /// Whether the record is pinned (kept forever, never ring-evicted):
    /// bug verdicts and cases with recorded incidents.
    pub fn pinned(&self) -> bool {
        self.events.iter().any(|event| {
            matches!(
                event.kind,
                TraceEventKind::Verdict {
                    verdict: TraceVerdict::Bug
                } | TraceEventKind::Incident { .. }
            )
        })
    }
}

/// A bounded in-memory flight recorder: the last `capacity` ordinary
/// cases plus the full history of every pinned (bug or incident) case.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<CaseRecord>,
    pinned: Vec<CaseRecord>,
    current: Option<CaseRecord>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` non-pinned recent cases.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ..FlightRecorder::default()
        }
    }

    /// Routes one deterministic-plane event.
    fn event(&mut self, event: &TraceEvent) {
        if let TraceEventKind::CaseStarted {
            database,
            case_index,
            oracle,
        } = event.kind
        {
            self.seal();
            self.current = Some(CaseRecord {
                database,
                case_index,
                case_seed: event.case_seed,
                oracle,
                events: vec![event.clone()],
            });
            return;
        }
        // Out-of-case events (setup replay, ledger-only incidents) are
        // summary material, not case history.
        let Some(current) = self.current.as_mut() else {
            return;
        };
        if event.case_seed == current.case_seed {
            current.events.push(event.clone());
        }
    }

    /// Finalises the open case record, if any.
    pub fn seal(&mut self) {
        let Some(record) = self.current.take() else {
            return;
        };
        if record.pinned() {
            self.pinned.push(record);
        } else {
            self.ring.push_back(record);
            while self.ring.len() > self.capacity {
                self.ring.pop_front();
            }
        }
    }

    /// The pinned (bug / incident) case records, in occurrence order.
    pub fn pinned(&self) -> &[CaseRecord] {
        &self.pinned
    }

    /// The ring of recent non-pinned case records, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &CaseRecord> {
        self.ring.iter()
    }

    /// All sealed records: pinned first, then the recent ring.
    pub fn records(&self) -> impl Iterator<Item = &CaseRecord> {
        self.pinned.iter().chain(self.ring.iter())
    }

    /// The pinned record for a case seed, if the recorder kept one.
    pub fn pinned_by_seed(&self, case_seed: u64) -> Option<&CaseRecord> {
        self.pinned
            .iter()
            .find(|record| record.case_seed == case_seed)
    }
}

// ------------------------------------------------------------------ JSONL ----

pub(crate) fn json_escape(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_event_json(out: &mut String, event: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"seed\":{},\"ticks\":{}",
        event.case_seed, event.ticks
    );
    match &event.kind {
        TraceEventKind::CaseStarted {
            database,
            case_index,
            oracle,
        } => {
            let _ = write!(
                out,
                ",\"kind\":\"case_started\",\"database\":{database},\"case_index\":{case_index},\"oracle\":\"{}\"",
                oracle.name()
            );
        }
        TraceEventKind::SetupStatement { ok } => {
            let _ = write!(out, ",\"kind\":\"setup_statement\",\"ok\":{ok}");
        }
        TraceEventKind::Statement { ok } => {
            let _ = write!(out, ",\"kind\":\"statement\",\"ok\":{ok}");
        }
        TraceEventKind::Verdict { verdict } => {
            let _ = write!(
                out,
                ",\"kind\":\"verdict\",\"verdict\":\"{}\"",
                verdict.name()
            );
        }
        TraceEventKind::Retry { attempt, kind } => {
            let _ = write!(
                out,
                ",\"kind\":\"retry\",\"attempt\":{attempt},\"incident\":\"{}\"",
                kind.name()
            );
        }
        TraceEventKind::Incident { kind } => {
            let _ = write!(
                out,
                ",\"kind\":\"incident\",\"incident\":\"{}\"",
                kind.name()
            );
        }
        TraceEventKind::Quarantined => {
            let _ = write!(out, ",\"kind\":\"quarantined\"");
        }
        TraceEventKind::Reduced {
            statements_before,
            statements_after,
        } => {
            let _ = write!(
                out,
                ",\"kind\":\"reduced\",\"before\":{statements_before},\"after\":{statements_after}"
            );
        }
        TraceEventKind::Prioritized { kept } => {
            let _ = write!(out, ",\"kind\":\"prioritized\",\"kept\":{kept}");
        }
    }
    out.push('}');
}

fn write_record_json(out: &mut String, dialect: &str, record: &CaseRecord) {
    out.push_str("{\"type\":\"case\",\"dialect\":\"");
    json_escape(out, dialect);
    let _ = write!(
        out,
        "\",\"database\":{},\"case_index\":{},\"case_seed\":{},\"oracle\":\"{}\",\"outcome\":\"{}\",\"pinned\":{},\"events\":[",
        record.database,
        record.case_index,
        record.case_seed,
        record.oracle.name(),
        record.outcome(),
        record.pinned()
    );
    for (index, event) in record.events.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        write_event_json(out, event);
    }
    out.push_str("]}\n");
}

/// Validates that every non-empty line of `text` is one syntactically
/// well-formed JSON value (the flight recorder's self-check, also used by
/// the CI `--trace-check` gate). Returns the number of validated lines.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut validated = 0;
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|err| format!("line {}: {err}", index + 1))?;
        validated += 1;
    }
    Ok(validated)
}

/// Validates one JSON value (syntax only; hand-rolled, no dependencies).
fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    json_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => json_object(bytes, pos),
        Some(b'[') => json_array(bytes, pos),
        Some(b'"') => json_string(bytes, pos),
        Some(b't') => json_literal(bytes, pos, "true"),
        Some(b'f') => json_literal(bytes, pos, "false"),
        Some(b'n') => json_literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => json_number(bytes, pos),
        Some(other) => Err(format!("unexpected byte {other:#04x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn json_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        json_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        json_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn json_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        json_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn json_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while let Some(&byte) = bytes.get(*pos) {
        match byte {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).map(u8::is_ascii_hexdigit).unwrap_or(false) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1F => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn json_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while bytes.get(*pos).map(u8::is_ascii_digit).unwrap_or(false) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while bytes.get(*pos).map(u8::is_ascii_digit).unwrap_or(false) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("malformed fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while bytes.get(*pos).map(u8::is_ascii_digit).unwrap_or(false) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("malformed exponent at byte {start}"));
        }
    }
    Ok(())
}

fn json_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

// ----------------------------------------------------------------- tracer ----

struct Progress {
    every: u64,
    callback: Box<dyn FnMut(&ProgressSnapshot)>,
    quarantined: bool,
}

/// The batteries-included [`TraceSink`]: builds the deterministic
/// [`TraceSummary`], optionally keeps a [`FlightRecorder`] (with JSONL
/// flushing to a path), accumulates [`BackendTelemetry`], and drives a
/// periodic wall-clock progress callback.
pub struct Tracer {
    summary: TraceSummary,
    dialect: String,
    current_oracle: Option<OracleKind>,
    telemetry: BackendTelemetry,
    recorder: Option<FlightRecorder>,
    jsonl_path: Option<PathBuf>,
    /// The latest coverage-atlas JSON line the campaign handed over
    /// (updated at every checkpoint flush and at campaign end).
    atlas_line: Option<String>,
    progress: Option<Progress>,
    started: Instant,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("dialect", &self.dialect)
            .field("summary", &self.summary)
            .field("telemetry", &self.telemetry)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer building the deterministic summary only.
    pub fn new() -> Tracer {
        Tracer {
            summary: TraceSummary::new(),
            dialect: String::new(),
            current_oracle: None,
            telemetry: BackendTelemetry::default(),
            recorder: None,
            jsonl_path: None,
            atlas_line: None,
            progress: None,
            started: Instant::now(),
        }
    }

    /// Adds a flight recorder keeping `ring_capacity` recent cases (plus
    /// every bug/incident case, unbounded).
    pub fn with_flight_recorder(mut self, ring_capacity: usize) -> Tracer {
        self.recorder = Some(FlightRecorder::new(ring_capacity));
        self
    }

    /// Writes the flight recorder's JSONL to `path` on every flush
    /// (checkpoints and campaign end), atomically (temp file + rename).
    /// Implies a flight recorder (default ring capacity 64 if none was
    /// configured).
    pub fn with_jsonl_path(mut self, path: impl Into<PathBuf>) -> Tracer {
        if self.recorder.is_none() {
            self.recorder = Some(FlightRecorder::new(64));
        }
        self.jsonl_path = Some(path.into());
        self
    }

    /// Invokes `callback` every `every` resolved cases with a live
    /// [`ProgressSnapshot`] (wall-clock plane).
    pub fn with_progress(
        mut self,
        every: u64,
        callback: impl FnMut(&ProgressSnapshot) + 'static,
    ) -> Tracer {
        self.progress = Some(Progress {
            every: every.max(1),
            callback: Box::new(callback),
            quarantined: false,
        });
        self
    }

    /// The deterministic trace summary accumulated so far.
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// The wall-clock backend telemetry accumulated so far.
    pub fn telemetry(&self) -> &BackendTelemetry {
        &self.telemetry
    }

    /// The flight recorder, if one was configured. Call
    /// [`FlightRecorder::seal`] (or [`TraceSink::flush`]) first to
    /// finalise the last case.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// The flight recorder's JSONL document (header line, one line per
    /// sealed case, telemetry footer), if a recorder is configured.
    pub fn jsonl(&self) -> Option<String> {
        let recorder = self.recorder.as_ref()?;
        let mut out = String::new();
        out.push_str("{\"type\":\"flight_recorder\",\"version\":1,\"dialect\":\"");
        json_escape(&mut out, &self.dialect);
        let _ = writeln!(
            out,
            "\",\"pinned\":{},\"recent\":{}}}",
            recorder.pinned.len(),
            recorder.ring.len()
        );
        for record in recorder.records() {
            write_record_json(&mut out, &self.dialect, record);
        }
        if let Some(atlas) = &self.atlas_line {
            out.push_str(atlas);
        }
        let t = &self.telemetry;
        let _ = writeln!(
            out,
            "{{\"type\":\"backend_telemetry\",\"slot_checkouts\":{},\"slot_resyncs\":{},\"resync_statements\":{},\"wire_bytes_written\":{},\"wire_bytes_read\":{},\"sentinel_frames\":{},\"respawns\":{}}}",
            t.slot_checkouts,
            t.slot_resyncs,
            t.resync_statements,
            t.wire_bytes_written,
            t.wire_bytes_read,
            t.sentinel_frames,
            t.respawns
        );
        Some(out)
    }

    fn dialect_trace(&mut self) -> &mut DialectTrace {
        self.summary
            .dialects
            .entry(self.dialect.clone())
            .or_default()
    }

    fn maybe_report_progress(&mut self) {
        let Some(progress) = self.progress.as_mut() else {
            return;
        };
        let trace = match self.summary.dialects.get(&self.dialect) {
            Some(trace) => trace,
            None => return,
        };
        let c = &trace.counters;
        let resolved =
            c.verdict_pass + c.verdict_invalid + c.verdict_bug + c.verdict_infra + c.verdict_panic;
        if resolved == 0 || resolved % progress.every != 0 {
            return;
        }
        let elapsed_secs = self.started.elapsed().as_secs_f64();
        let valid = resolved - c.verdict_invalid;
        let snapshot = ProgressSnapshot {
            dialect: self.dialect.clone(),
            cases: resolved,
            bugs: c.verdict_bug,
            invalid: c.verdict_invalid,
            validity_rate: if resolved == 0 {
                1.0
            } else {
                valid as f64 / resolved as f64
            },
            cases_per_sec: if elapsed_secs > 0.0 {
                resolved as f64 / elapsed_secs
            } else {
                0.0
            },
            elapsed_secs,
            quarantined: progress.quarantined,
            backend: self.telemetry,
        };
        (progress.callback)(&snapshot);
    }
}

impl TraceSink for Tracer {
    fn begin_campaign(&mut self, dialect: &str) {
        self.dialect = dialect.to_string();
        self.dialect_trace();
    }

    fn event(&mut self, event: &TraceEvent) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.event(event);
        }
        let ticks = event.ticks;
        match &event.kind {
            TraceEventKind::CaseStarted { oracle, .. } => {
                self.current_oracle = Some(*oracle);
                self.dialect_trace().counters.cases += 1;
            }
            TraceEventKind::SetupStatement { ok } => {
                let counters = &mut self.dialect_trace().counters;
                counters.setup_statements += 1;
                if !ok {
                    counters.setup_errors += 1;
                }
            }
            TraceEventKind::Statement { ok } => {
                let trace = self.dialect_trace();
                trace.counters.statements += 1;
                if !ok {
                    trace.counters.statement_errors += 1;
                }
                trace.statements.record(ticks);
            }
            TraceEventKind::Verdict { verdict } => {
                let oracle = self.current_oracle;
                let trace = self.dialect_trace();
                match verdict {
                    TraceVerdict::Pass => trace.counters.verdict_pass += 1,
                    TraceVerdict::Invalid => trace.counters.verdict_invalid += 1,
                    TraceVerdict::Bug => trace.counters.verdict_bug += 1,
                    TraceVerdict::InfraFailed => trace.counters.verdict_infra += 1,
                    TraceVerdict::Panicked => trace.counters.verdict_panic += 1,
                }
                trace.counters.case_ticks += ticks;
                if let Some(oracle) = oracle {
                    trace.oracles.entry(oracle).or_default().record(ticks);
                }
                self.maybe_report_progress();
            }
            TraceEventKind::Retry { .. } => {
                let counters = &mut self.dialect_trace().counters;
                counters.retries += 1;
                counters.backoff_ticks += ticks;
            }
            TraceEventKind::Incident { kind } => {
                let counters = &mut self.dialect_trace().counters;
                counters.incidents += 1;
                if *kind == IncidentKind::WatchdogTimeout {
                    counters.watchdog_trips += 1;
                }
            }
            TraceEventKind::Quarantined => {
                self.dialect_trace().counters.quarantines += 1;
                if let Some(progress) = self.progress.as_mut() {
                    progress.quarantined = true;
                }
            }
            TraceEventKind::Reduced {
                statements_before,
                statements_after,
            } => {
                let counters = &mut self.dialect_trace().counters;
                counters.reduced_bugs += 1;
                counters.reduced_statements_removed +=
                    statements_before.saturating_sub(*statements_after) as u64;
            }
            TraceEventKind::Prioritized { kept } => {
                let counters = &mut self.dialect_trace().counters;
                if *kept {
                    counters.prioritized_kept += 1;
                } else {
                    counters.prioritized_dropped += 1;
                }
            }
        }
    }

    fn backend_event(&mut self, event: &BackendEvent) {
        self.telemetry.absorb(event);
    }

    fn coverage(&mut self, dialect: &str, atlas: &crate::atlas::CampaignCoverage) {
        self.atlas_line = Some(atlas.to_json_line(dialect));
    }

    fn flush(&mut self, _reason: FlushReason) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.seal();
        }
        // Telemetry must never fail the campaign: write errors are
        // dropped (the in-memory recorder stays available regardless).
        if let (Some(path), Some(text)) = (self.jsonl_path.clone(), self.jsonl()) {
            let tmp = {
                let mut os = path.as_os_str().to_os_string();
                os.push(".tmp");
                PathBuf::from(os)
            };
            if std::fs::write(&tmp, text).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }
}

// ------------------------------------------------------ traced connection ----

/// A [`DbmsConnection`] decorator emitting one deterministic-plane
/// statement event per statement, stamped with the statement's
/// virtual-tick cost (clock delta around the call) and the current case
/// seed (tracked from [`DbmsConnection::begin_case`]; seed 0 classifies
/// the statement as out-of-case setup/replay work).
///
/// Sessions from [`DbmsConnection::open_session`] are deliberately *not*
/// traced: session clocks are independent of the primary connection's,
/// and the supervisor's verdict elapsed already covers the case.
pub struct TracedConnection<'a> {
    inner: &'a mut dyn DbmsConnection,
    trace: TraceHandle,
    case_seed: u64,
}

impl<'a> TracedConnection<'a> {
    /// Wraps a connection so its statements stream into `trace`.
    pub fn new(inner: &'a mut dyn DbmsConnection, trace: TraceHandle) -> TracedConnection<'a> {
        TracedConnection {
            inner,
            trace,
            case_seed: 0,
        }
    }

    fn statement_event(&mut self, ticks: u64, ok: bool) {
        let kind = if self.case_seed == 0 {
            TraceEventKind::SetupStatement { ok }
        } else {
            TraceEventKind::Statement { ok }
        };
        self.trace.borrow_mut().event(&TraceEvent {
            case_seed: self.case_seed,
            ticks,
            kind,
        });
    }
}

impl DbmsConnection for TracedConnection<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        let before = self.inner.virtual_ticks();
        let outcome = self.inner.execute(sql);
        let ticks = self.inner.virtual_ticks().saturating_sub(before);
        self.statement_event(ticks, outcome.is_success());
        outcome
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        let before = self.inner.virtual_ticks();
        let result = self.inner.query(sql);
        let ticks = self.inner.virtual_ticks().saturating_sub(before);
        self.statement_event(ticks, result.is_ok());
        result
    }

    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        let before = self.inner.virtual_ticks();
        let outcome = self.inner.execute_ast(stmt);
        let ticks = self.inner.virtual_ticks().saturating_sub(before);
        self.statement_event(ticks, outcome.is_success());
        outcome
    }

    fn query_ast(&mut self, select: &Select) -> Result<QueryResult, String> {
        let before = self.inner.virtual_ticks();
        let result = self.inner.query_ast(select);
        let ticks = self.inner.virtual_ticks().saturating_sub(before);
        self.statement_event(ticks, result.is_ok());
        result
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn quirks(&self) -> DialectQuirks {
        self.inner.quirks()
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        self.inner.open_session()
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        self.inner.storage_metrics()
    }

    fn begin_case(&mut self, case_seed: u64) {
        self.inner.begin_case(case_seed);
        self.case_seed = case_seed;
    }

    fn virtual_ticks(&self) -> u64 {
        self.inner.virtual_ticks()
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        self.inner.checkpoint()
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        self.inner.restore(checkpoint)
    }

    fn drain_backend_events(&mut self) -> Vec<BackendEvent> {
        self.inner.drain_backend_events()
    }

    fn engine_coverage(&self) -> Option<crate::dbms::EngineCoverage> {
        self.inner.engine_coverage()
    }

    fn drain_resilience_events(&mut self) -> Vec<crate::driver::ResilienceEvent> {
        self.inner.drain_resilience_events()
    }

    fn note_case_outcome(&mut self, case_seed: u64, infra_failed: bool) {
        self.inner.note_case_outcome(case_seed, infra_failed);
    }

    fn resilience_checkpoint(&self) -> Option<String> {
        self.inner.resilience_checkpoint()
    }

    fn restore_resilience(&mut self, data: &str) -> bool {
        self.inner.restore_resilience(data)
    }

    fn note_database_boundary(&mut self) {
        self.inner.note_database_boundary();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = LatencyHistogram::default();
        for ticks in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(ticks);
        }
        let buckets: Vec<(usize, u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 2, 2),
                (3, 4, 2),
                (4, 8, 1),
                (64, 1 << 63, 1)
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_merge_is_exact_summation() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for ticks in [1u64, 5, 9, 100] {
            a.record(ticks);
            whole.record(ticks);
        }
        for ticks in [0u64, 5, 7, 1000] {
            b.record(ticks);
            whole.record(ticks);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn summary_merge_is_order_independent() {
        let mut left = TraceSummary::new();
        let mut right = TraceSummary::new();
        let mut shard_a = TraceSummary::new();
        shard_a
            .dialects
            .entry("x".into())
            .or_default()
            .counters
            .cases = 3;
        let mut shard_b = TraceSummary::new();
        shard_b
            .dialects
            .entry("x".into())
            .or_default()
            .counters
            .cases = 4;
        shard_b
            .dialects
            .entry("y".into())
            .or_default()
            .counters
            .verdict_bug = 1;
        left.merge(&shard_a);
        left.merge(&shard_b);
        right.merge(&shard_b);
        right.merge(&shard_a);
        assert_eq!(left, right);
        assert_eq!(render_trace_summary(&left), render_trace_summary(&right));
        assert_eq!(left.dialects["x"].counters.cases, 7);
    }

    #[test]
    fn tracer_aggregates_case_lifecycle() {
        let mut tracer = Tracer::new();
        tracer.begin_campaign("toy");
        tracer.event(&TraceEvent {
            case_seed: 9,
            ticks: 0,
            kind: TraceEventKind::CaseStarted {
                database: 0,
                case_index: 0,
                oracle: OracleKind::Tlp,
            },
        });
        tracer.event(&TraceEvent {
            case_seed: 9,
            ticks: 2,
            kind: TraceEventKind::Statement { ok: true },
        });
        tracer.event(&TraceEvent {
            case_seed: 9,
            ticks: 5,
            kind: TraceEventKind::Verdict {
                verdict: TraceVerdict::Bug,
            },
        });
        tracer.event(&TraceEvent {
            case_seed: 9,
            ticks: 0,
            kind: TraceEventKind::Prioritized { kept: true },
        });
        let trace = &tracer.summary().dialects["toy"];
        assert_eq!(trace.counters.cases, 1);
        assert_eq!(trace.counters.verdict_bug, 1);
        assert_eq!(trace.counters.case_ticks, 5);
        assert_eq!(trace.counters.prioritized_kept, 1);
        assert_eq!(trace.oracles[&OracleKind::Tlp].count(), 1);
        assert_eq!(trace.statements.count(), 1);
        assert_eq!(trace.statements.sum(), 2);
    }

    #[test]
    fn flight_recorder_pins_bugs_and_evicts_ring() {
        let mut recorder = FlightRecorder::new(2);
        for case in 0..5u64 {
            recorder.event(&TraceEvent {
                case_seed: case + 1,
                ticks: 0,
                kind: TraceEventKind::CaseStarted {
                    database: 0,
                    case_index: case,
                    oracle: OracleKind::Tlp,
                },
            });
            let verdict = if case == 1 {
                TraceVerdict::Bug
            } else {
                TraceVerdict::Pass
            };
            recorder.event(&TraceEvent {
                case_seed: case + 1,
                ticks: 3,
                kind: TraceEventKind::Verdict { verdict },
            });
        }
        recorder.seal();
        assert_eq!(recorder.pinned().len(), 1);
        assert_eq!(recorder.pinned()[0].case_seed, 2);
        assert_eq!(recorder.pinned()[0].outcome(), "bug");
        let recent: Vec<u64> = recorder.recent().map(|r| r.case_seed).collect();
        assert_eq!(recent, vec![4, 5]);
        assert!(recorder.pinned_by_seed(2).is_some());
        assert!(recorder.pinned_by_seed(3).is_none());
    }

    #[test]
    fn jsonl_output_validates() {
        let mut tracer = Tracer::new().with_flight_recorder(4);
        tracer.begin_campaign("toy \"dialect\"");
        tracer.event(&TraceEvent {
            case_seed: 7,
            ticks: 0,
            kind: TraceEventKind::CaseStarted {
                database: 0,
                case_index: 0,
                oracle: OracleKind::NoRec,
            },
        });
        tracer.event(&TraceEvent {
            case_seed: 7,
            ticks: 1,
            kind: TraceEventKind::Incident {
                kind: IncidentKind::BackendCrash,
            },
        });
        tracer.event(&TraceEvent {
            case_seed: 7,
            ticks: 4,
            kind: TraceEventKind::Verdict {
                verdict: TraceVerdict::InfraFailed,
            },
        });
        tracer.backend_event(&BackendEvent::WireWrites { bytes: 128 });
        tracer.flush(FlushReason::CampaignEnd);
        let jsonl = tracer.jsonl().unwrap();
        let lines = validate_jsonl(&jsonl).unwrap();
        assert_eq!(lines, 3); // header + 1 pinned case + telemetry footer
        assert!(jsonl.contains("\"outcome\":\"infra_failed\""));
        assert!(jsonl.contains("\"wire_bytes_written\":128"));
    }

    #[test]
    fn jsonl_validator_rejects_garbage() {
        assert!(validate_jsonl("{\"ok\":true}").is_ok());
        assert!(validate_jsonl("{\"ok\":true,}").is_err());
        assert!(validate_jsonl("{'single':1}").is_err());
        assert!(validate_jsonl("{\"x\":1} trailing").is_err());
        assert!(validate_jsonl("{\"x\":01e}").is_err());
        assert!(validate_jsonl("[1, 2, {\"y\":-3.5e+2}, null, \"s\\u00e9\"]").is_ok());
    }

    #[test]
    fn render_is_stable_and_integer_only() {
        let mut tracer = Tracer::new();
        tracer.begin_campaign("toy");
        tracer.event(&TraceEvent {
            case_seed: 1,
            ticks: 0,
            kind: TraceEventKind::CaseStarted {
                database: 0,
                case_index: 0,
                oracle: OracleKind::Tlp,
            },
        });
        tracer.event(&TraceEvent {
            case_seed: 1,
            ticks: 6,
            kind: TraceEventKind::Verdict {
                verdict: TraceVerdict::Pass,
            },
        });
        let rendered = render_trace_summary(tracer.summary());
        assert!(rendered.starts_with("=== trace summary ===\n"));
        assert!(rendered.contains("dialect toy\n"));
        assert!(rendered.contains("  latency TLP count 1 ticks 6 max 6\n"));
        assert!(rendered.contains("    b3 (4+) 1\n"));
        // Re-rendering is byte-identical.
        assert_eq!(rendered, render_trace_summary(tracer.summary()));
    }
}
