//! The SQL *feature* universe.
//!
//! A feature is "an element or property in the query language, which we
//! expect to be either supported or unsupported by a given DBMS"
//! (Section 3). Features drive two mechanisms:
//!
//! 1. the adaptive generator learns, per feature, whether statements using
//!    it succeed, and suppresses unsupported features;
//! 2. the bug prioritizer compares the feature *sets* of bug-inducing test
//!    cases to flag likely duplicates.
//!
//! Granularities follow Table 6 of the paper: statements, clauses &
//! keywords, expressions (functions and operators), data types, plus
//! *abstract properties* (typing discipline) and *composite* features such
//! as `SIN1INT` ("the first argument of `SIN` had type INTEGER").

use sql_ast::{AggregateFunction, BinaryOp, DataType, JoinType, ScalarFunction, UnaryOp};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt;

/// An identified SQL feature.
///
/// Features are interned as strings so that composite features (which are
/// data-dependent, e.g. `FN_SIN_ARG1_INTEGER`) and structural features share
/// one representation. Structural features with fixed names (operators,
/// join types, clauses, data types) are borrowed `'static` strings, so
/// constructing and cloning them on the generation hot path never
/// allocates; only data-dependent names are owned.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Feature(Cow<'static, str>);

impl Feature {
    /// Creates a feature from its canonical name.
    pub fn new(name: impl Into<String>) -> Feature {
        Feature(Cow::Owned(name.into()))
    }

    /// Creates a feature from a `'static` canonical name, without
    /// allocating.
    pub const fn from_static(name: &'static str) -> Feature {
        Feature(Cow::Borrowed(name))
    }

    /// The canonical name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Statement-kind feature (e.g. `STMT_CREATE_INDEX`).
    pub fn statement(name: &'static str) -> Feature {
        Feature(Cow::Borrowed(name))
    }

    /// Clause/keyword feature (e.g. `CLAUSE_WHERE`, `KW_UNIQUE`).
    pub fn clause(name: &str) -> Feature {
        match clause_feature_static(name) {
            Some(feature) => Feature(Cow::Borrowed(feature)),
            None => Feature(Cow::Owned(format!("CLAUSE_{name}"))),
        }
    }

    /// Keyword feature.
    pub fn keyword(name: &str) -> Feature {
        match keyword_feature_static(name) {
            Some(feature) => Feature(Cow::Borrowed(feature)),
            None => Feature(Cow::Owned(format!("KW_{name}"))),
        }
    }

    /// Binary operator feature.
    pub fn binary_op(op: BinaryOp) -> Feature {
        Feature(Cow::Borrowed(op.feature_name()))
    }

    /// Unary operator feature.
    pub fn unary_op(op: UnaryOp) -> Feature {
        Feature(Cow::Borrowed(op.feature_name()))
    }

    /// Scalar function feature.
    pub fn function(func: ScalarFunction) -> Feature {
        Feature(Cow::Borrowed(func.feature_name()))
    }

    /// Aggregate function feature.
    pub fn aggregate(func: AggregateFunction) -> Feature {
        Feature(Cow::Borrowed(func.feature_name()))
    }

    /// Join type feature.
    pub fn join(join: JoinType) -> Feature {
        Feature(Cow::Borrowed(join.feature_name()))
    }

    /// Data type feature (for column definitions).
    pub fn data_type(ty: DataType) -> Feature {
        Feature(Cow::Borrowed(ty.feature_name()))
    }

    /// Composite function-argument-type feature, e.g. `FN_SIN_ARG1_INTEGER`
    /// (the paper's `SIN1INT`).
    pub fn function_arg_type(func: ScalarFunction, arg_index: usize, ty: DataType) -> Feature {
        Feature(Cow::Owned(format!(
            "FN_{}_ARG{}_{}",
            func.name(),
            arg_index + 1,
            ty.sql_keyword()
        )))
    }

    /// Abstract property feature (e.g. `PROP_DYNAMIC_TYPING`).
    pub fn property(name: &str) -> Feature {
        Feature(Cow::Owned(format!("PROP_{name}")))
    }
}

/// Static names for the clauses the generator emits, so the hot path avoids
/// `format!`. Unknown names fall back to an owned string.
fn clause_feature_static(name: &str) -> Option<&'static str> {
    Some(match name {
        "WHERE" => "CLAUSE_WHERE",
        "DISTINCT" => "CLAUSE_DISTINCT",
        "GROUP_BY" => "CLAUSE_GROUP_BY",
        "HAVING" => "CLAUSE_HAVING",
        "ORDER_BY" => "CLAUSE_ORDER_BY",
        "LIMIT" => "CLAUSE_LIMIT",
        "OFFSET" => "CLAUSE_OFFSET",
        "CASE" => "CLAUSE_CASE",
        "SUBQUERY" => "CLAUSE_SUBQUERY",
        "SET_OPERATION" => "CLAUSE_SET_OPERATION",
        _ => return None,
    })
}

/// Static names for the keywords the generator emits.
fn keyword_feature_static(name: &str) -> Option<&'static str> {
    Some(match name {
        "PRIMARY_KEY" => "KW_PRIMARY_KEY",
        "NOT_NULL" => "KW_NOT_NULL",
        "UNIQUE" => "KW_UNIQUE",
        "UNIQUE_INDEX" => "KW_UNIQUE_INDEX",
        "DEFAULT" => "KW_DEFAULT",
        "OR_IGNORE" => "KW_OR_IGNORE",
        "PARTIAL_INDEX" => "KW_PARTIAL_INDEX",
        _ => return None,
    })
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Feature {
    fn from(s: &str) -> Feature {
        Feature::new(s)
    }
}

/// A set of features recorded while generating a statement or test case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeatureSet {
    features: BTreeSet<Feature>,
}

impl FeatureSet {
    /// Creates an empty set.
    pub fn new() -> FeatureSet {
        FeatureSet::default()
    }

    /// Adds a feature.
    pub fn insert(&mut self, feature: Feature) {
        self.features.insert(feature);
    }

    /// Adds every feature of another set.
    pub fn extend(&mut self, other: &FeatureSet) {
        self.features.extend(other.features.iter().cloned());
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Whether the set contains a feature.
    pub fn contains(&self, feature: &Feature) -> bool {
        self.features.contains(feature)
    }

    /// Whether `self` is a subset of `other` — the prioritizer's duplicate
    /// criterion (Fig. 4).
    pub fn is_subset_of(&self, other: &FeatureSet) -> bool {
        self.features.is_subset(&other.features)
    }

    /// Iterates over the features.
    pub fn iter(&self) -> impl Iterator<Item = &Feature> {
        self.features.iter()
    }
}

impl FromIterator<Feature> for FeatureSet {
    fn from_iter<T: IntoIterator<Item = Feature>>(iter: T) -> FeatureSet {
        FeatureSet {
            features: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, feat) in self.features.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{feat}")?;
        }
        write!(f, "}}")
    }
}

/// Enumerates the complete feature universe of the generator: every
/// statement kind, clause, operator, function, join type and data type the
/// generator can emit, plus the abstract typing properties.
///
/// Figure 7 of the paper counts this universe against the features
/// hand-written generators implement; the `fig7_feature_overlap` bench
/// binary reproduces that comparison.
pub fn feature_universe() -> Vec<Feature> {
    let mut out = Vec::new();
    for stmt in [
        "STMT_CREATE_TABLE",
        "STMT_CREATE_INDEX",
        "STMT_CREATE_VIEW",
        "STMT_INSERT",
        "STMT_ANALYZE",
        "STMT_SELECT",
        "STMT_UPDATE",
        "STMT_DELETE",
        // Transaction control — the `transactions` capability the rollback
        // and isolation oracles exercise and the support model learns per
        // dialect.
        "STMT_BEGIN",
        "STMT_COMMIT",
        "STMT_ROLLBACK",
        "STMT_SAVEPOINT",
        "STMT_ROLLBACK_TO",
        "STMT_RELEASE_SAVEPOINT",
    ] {
        out.push(Feature::statement(stmt));
    }
    for clause in [
        "WHERE",
        "GROUP_BY",
        "HAVING",
        "ORDER_BY",
        "LIMIT",
        "OFFSET",
        "DISTINCT",
        "SUBQUERY",
        "SET_OPERATION",
        "CASE",
    ] {
        out.push(Feature::clause(clause));
    }
    for kw in [
        "UNIQUE_INDEX",
        "PARTIAL_INDEX",
        "PRIMARY_KEY",
        "NOT_NULL",
        "DEFAULT",
        "OR_IGNORE",
    ] {
        out.push(Feature::keyword(kw));
    }
    for op in BinaryOp::ALL {
        out.push(Feature::binary_op(op));
    }
    for op in UnaryOp::ALL {
        out.push(Feature::unary_op(op));
    }
    for func in ScalarFunction::ALL {
        out.push(Feature::function(func));
    }
    for agg in AggregateFunction::ALL {
        out.push(Feature::aggregate(agg));
    }
    for join in JoinType::ALL {
        out.push(Feature::join(join));
    }
    for ty in DataType::COLUMN_TYPES {
        out.push(Feature::data_type(ty));
    }
    out.push(Feature::property("DYNAMIC_TYPING"));
    out.push(Feature::property("IMPLICIT_CAST"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_relation_matches_paper_example() {
        // Figure 4: a prior bug with {NULLIF, !=} makes {NULLIF, !=, +} a
        // potential duplicate but not {CASE, !=}.
        let prior: FeatureSet = [
            Feature::function(ScalarFunction::Nullif),
            Feature::binary_op(BinaryOp::Neq),
        ]
        .into_iter()
        .collect();
        let with_plus: FeatureSet = [
            Feature::function(ScalarFunction::Nullif),
            Feature::binary_op(BinaryOp::Neq),
            Feature::binary_op(BinaryOp::Add),
        ]
        .into_iter()
        .collect();
        let with_case: FeatureSet = [Feature::binary_op(BinaryOp::Neq), Feature::clause("CASE")]
            .into_iter()
            .collect();
        assert!(prior.is_subset_of(&with_plus));
        assert!(!prior.is_subset_of(&with_case));
    }

    #[test]
    fn universe_is_large_and_unique() {
        let universe = feature_universe();
        let set: BTreeSet<_> = universe.iter().collect();
        assert_eq!(set.len(), universe.len());
        // Statements + clauses + 27 operators + ~60 functions + aggregates +
        // joins + types: comfortably above 100 distinct features.
        assert!(universe.len() > 100, "{}", universe.len());
    }

    #[test]
    fn composite_feature_names_follow_convention() {
        let f = Feature::function_arg_type(ScalarFunction::Sin, 0, DataType::Integer);
        assert_eq!(f.name(), "FN_SIN_ARG1_INTEGER");
    }

    #[test]
    fn feature_set_display_is_readable() {
        let set: FeatureSet = [Feature::new("A"), Feature::new("B")].into_iter().collect();
        assert_eq!(set.to_string(), "{A, B}");
    }
}
