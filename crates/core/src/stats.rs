//! Validity-feedback statistics and the Bayesian support model.
//!
//! The adaptive generator records, per feature, how many statements that
//! contained the feature were attempted and how many succeeded. For *query*
//! features it models the per-feature success probability θ with a binomial
//! likelihood and a uniform prior, so that the posterior is
//! `Beta(y + 1, N − y + 1)` (Equations 1–3 of the paper). A feature is
//! deemed **unsupported** when at least `credible_mass` (95%) of the
//! posterior probability lies below the user threshold `p` (default 1%).
//! For *DDL/DML* features a simpler rule is used: a feature that fails more
//! than a fixed number of consecutive times is deemed unsupported.

use crate::feature::{Feature, FeatureSet};
use std::collections::BTreeMap;

/// Tuning knobs of the feedback mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsConfig {
    /// Minimum acceptable success probability for a query feature (the
    /// paper's user-specified threshold `p`, default 1%).
    pub query_threshold: f64,
    /// Posterior mass that must lie below the threshold before a feature is
    /// declared unsupported (the paper uses a 95% credible interval).
    pub credible_mass: f64,
    /// Number of consecutive failures after which a DDL/DML feature is
    /// deemed unsupported.
    pub ddl_failure_limit: u64,
    /// Minimum number of attempts before a query feature can be declared
    /// unsupported (avoids judging on tiny samples).
    pub min_attempts: u64,
}

impl Default for StatsConfig {
    fn default() -> StatsConfig {
        StatsConfig {
            query_threshold: 0.01,
            credible_mass: 0.95,
            ddl_failure_limit: 10,
            min_attempts: 20,
        }
    }
}

/// Per-feature execution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeatureCounts {
    /// Total number of statements containing the feature.
    pub attempts: u64,
    /// Number of those statements that executed successfully.
    pub successes: u64,
    /// Current run of consecutive failures.
    pub consecutive_failures: u64,
}

impl FeatureCounts {
    /// Posterior mean of the success probability under the Beta posterior.
    pub fn posterior_mean(&self) -> f64 {
        (self.successes as f64 + 1.0) / (self.attempts as f64 + 2.0)
    }

    /// Posterior probability that the success probability is below `p`,
    /// i.e. the regularised incomplete beta `I_p(y + 1, N − y + 1)`.
    pub fn posterior_mass_below(&self, p: f64) -> f64 {
        regularized_incomplete_beta(
            p,
            self.successes as f64 + 1.0,
            (self.attempts - self.successes) as f64 + 1.0,
        )
    }
}

/// Whether a feature was used in a DDL/DML statement or a query; the two
/// categories use different unsupported-detection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Feature observed in a DDL or DML statement.
    DdlDml,
    /// Feature observed in a query.
    Query,
}

/// Aggregated validity feedback across all features.
#[derive(Debug, Clone, Default)]
pub struct FeatureStats {
    query: BTreeMap<Feature, FeatureCounts>,
    ddl: BTreeMap<Feature, FeatureCounts>,
}

impl FeatureStats {
    /// Creates empty statistics.
    pub fn new() -> FeatureStats {
        FeatureStats::default()
    }

    /// Records the outcome of one statement execution for every feature in
    /// its feature set.
    pub fn record(&mut self, features: &FeatureSet, kind: FeatureKind, success: bool) {
        let map = match kind {
            FeatureKind::Query => &mut self.query,
            FeatureKind::DdlDml => &mut self.ddl,
        };
        for feature in features.iter() {
            let counts = map.entry(feature.clone()).or_default();
            counts.attempts += 1;
            if success {
                counts.successes += 1;
                counts.consecutive_failures = 0;
            } else {
                counts.consecutive_failures += 1;
            }
        }
    }

    /// The counts recorded for a feature in the given category.
    pub fn counts(&self, feature: &Feature, kind: FeatureKind) -> FeatureCounts {
        let map = match kind {
            FeatureKind::Query => &self.query,
            FeatureKind::DdlDml => &self.ddl,
        };
        map.get(feature).copied().unwrap_or_default()
    }

    /// Decides whether a feature is unsupported under the configured rules
    /// (Beta-posterior test for queries, consecutive-failure rule for
    /// DDL/DML).
    pub fn is_unsupported(
        &self,
        feature: &Feature,
        kind: FeatureKind,
        config: &StatsConfig,
    ) -> bool {
        let counts = self.counts(feature, kind);
        match kind {
            FeatureKind::DdlDml => counts.consecutive_failures >= config.ddl_failure_limit,
            FeatureKind::Query => {
                counts.attempts >= config.min_attempts
                    && counts.posterior_mass_below(config.query_threshold) >= config.credible_mass
            }
        }
    }

    /// All features currently considered unsupported in a category.
    pub fn unsupported_features(&self, kind: FeatureKind, config: &StatsConfig) -> Vec<Feature> {
        let map = match kind {
            FeatureKind::Query => &self.query,
            FeatureKind::DdlDml => &self.ddl,
        };
        map.keys()
            .filter(|f| self.is_unsupported(f, kind, config))
            .cloned()
            .collect()
    }

    /// Total attempts and successes across all query features (used for the
    /// validity-rate metrics of Table 4).
    pub fn query_totals(&self) -> (u64, u64) {
        let attempts = self.query.values().map(|c| c.attempts).sum();
        let successes = self.query.values().map(|c| c.successes).sum();
        (attempts, successes)
    }

    /// Iterates over all query-feature counts (for persistence).
    pub fn iter_query(&self) -> impl Iterator<Item = (&Feature, &FeatureCounts)> {
        self.query.iter()
    }

    /// Iterates over all DDL/DML-feature counts (for persistence).
    pub fn iter_ddl(&self) -> impl Iterator<Item = (&Feature, &FeatureCounts)> {
        self.ddl.iter()
    }

    /// Inserts raw counts (used when loading a persisted profile).
    pub fn load_counts(&mut self, feature: Feature, kind: FeatureKind, counts: FeatureCounts) {
        match kind {
            FeatureKind::Query => self.query.insert(feature, counts),
            FeatureKind::DdlDml => self.ddl.insert(feature, counts),
        };
    }

    /// Merges another profile's observations into this one, reading as if
    /// `other`'s statements were executed *after* this profile's: attempts
    /// and successes add, and the consecutive-failure run is taken from
    /// `other` for every feature it observed (the later run supersedes the
    /// earlier one). This is how the partitioned campaign runner folds
    /// per-database learned profiles together in database order, keeping
    /// the merged result independent of worker scheduling.
    pub fn merge(&mut self, other: &FeatureStats) {
        for (feature, counts) in &other.query {
            let entry = self.query.entry(feature.clone()).or_default();
            entry.attempts += counts.attempts;
            entry.successes += counts.successes;
            entry.consecutive_failures = counts.consecutive_failures;
        }
        for (feature, counts) in &other.ddl {
            let entry = self.ddl.entry(feature.clone()).or_default();
            entry.attempts += counts.attempts;
            entry.successes += counts.successes;
            entry.consecutive_failures = counts.consecutive_failures;
        }
    }
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Continued-fraction evaluation for the incomplete beta function
/// (Numerical Recipes `betacf`).
fn beta_continued_fraction(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3.0e-12;
    const FPMIN: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The regularised incomplete beta function `I_x(a, b)`, i.e. the CDF of a
/// `Beta(a, b)` distribution evaluated at `x`.
pub fn regularized_incomplete_beta(x: f64, a: f64, b: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(x, a, b) / a
    } else {
        1.0 - front * beta_continued_fraction(1.0 - x, b, a) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_set(names: &[&str]) -> FeatureSet {
        names.iter().map(|n| Feature::new(*n)).collect()
    }

    #[test]
    fn incomplete_beta_matches_known_values() {
        // I_x(1, 1) is the uniform CDF.
        assert!((regularized_incomplete_beta(0.3, 1.0, 1.0) - 0.3).abs() < 1e-9);
        // Symmetric case: I_0.5(2, 2) = 0.5.
        assert!((regularized_incomplete_beta(0.5, 2.0, 2.0) - 0.5).abs() < 1e-9);
        // Beta(1, 401) at 0.01: the paper's example says more than 95% of
        // the mass lies below 0.01 (the 95% credible interval is roughly
        // [6e-5, 0.009]).
        let mass = regularized_incomplete_beta(0.01, 1.0, 401.0);
        assert!(mass > 0.95, "mass = {mass}");
        // Monotonic in x.
        assert!(
            regularized_incomplete_beta(0.2, 3.0, 5.0) < regularized_incomplete_beta(0.4, 3.0, 5.0)
        );
    }

    #[test]
    fn paper_example_400_failures_is_unsupported() {
        // y = 0, N = 400 with threshold 0.01 → unsupported (Section 4).
        let mut stats = FeatureStats::new();
        let features = feature_set(&["OP_NULLSAFE_EQ"]);
        for _ in 0..400 {
            stats.record(&features, FeatureKind::Query, false);
        }
        let config = StatsConfig::default();
        assert!(stats.is_unsupported(&Feature::new("OP_NULLSAFE_EQ"), FeatureKind::Query, &config));
    }

    #[test]
    fn frequently_succeeding_feature_stays_supported() {
        let mut stats = FeatureStats::new();
        let features = feature_set(&["OP_EQ"]);
        for i in 0..400 {
            stats.record(&features, FeatureKind::Query, i % 2 == 0);
        }
        let config = StatsConfig::default();
        assert!(!stats.is_unsupported(&Feature::new("OP_EQ"), FeatureKind::Query, &config));
        let counts = stats.counts(&Feature::new("OP_EQ"), FeatureKind::Query);
        assert!((counts.posterior_mean() - 0.5).abs() < 0.05);
    }

    #[test]
    fn small_samples_are_never_judged() {
        let mut stats = FeatureStats::new();
        let features = feature_set(&["FN_SIN"]);
        for _ in 0..5 {
            stats.record(&features, FeatureKind::Query, false);
        }
        assert!(!stats.is_unsupported(
            &Feature::new("FN_SIN"),
            FeatureKind::Query,
            &StatsConfig::default()
        ));
    }

    #[test]
    fn ddl_rule_uses_consecutive_failures() {
        let mut stats = FeatureStats::new();
        let features = feature_set(&["STMT_CREATE_INDEX"]);
        let config = StatsConfig::default();
        for _ in 0..9 {
            stats.record(&features, FeatureKind::DdlDml, false);
        }
        assert!(!stats.is_unsupported(
            &Feature::new("STMT_CREATE_INDEX"),
            FeatureKind::DdlDml,
            &config
        ));
        stats.record(&features, FeatureKind::DdlDml, false);
        assert!(stats.is_unsupported(
            &Feature::new("STMT_CREATE_INDEX"),
            FeatureKind::DdlDml,
            &config
        ));
        // One success resets the run.
        stats.record(&features, FeatureKind::DdlDml, true);
        assert!(!stats.is_unsupported(
            &Feature::new("STMT_CREATE_INDEX"),
            FeatureKind::DdlDml,
            &config
        ));
    }

    #[test]
    fn query_totals_track_validity_rate() {
        let mut stats = FeatureStats::new();
        let features = feature_set(&["OP_EQ", "FN_SIN"]);
        stats.record(&features, FeatureKind::Query, true);
        stats.record(&features, FeatureKind::Query, false);
        let (attempts, successes) = stats.query_totals();
        assert_eq!(attempts, 4);
        assert_eq!(successes, 2);
    }
}
