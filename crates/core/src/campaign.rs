//! The end-to-end testing campaign (Figure 2).
//!
//! A campaign repeatedly (1) builds a database state with generated DDL/DML,
//! (2) generates random queries, (3) applies the configured oracles,
//! (4) records validity feedback, (5) reduces and prioritizes bug-inducing
//! test cases, and (6) reports metrics — the same pipeline the paper runs
//! against each DBMS.

use crate::dbms::{DbmsConnection, StorageMetrics};
use crate::feature::FeatureSet;
use crate::generator::{
    AdaptiveGenerator, GeneratedQuery, GeneratedSchedule, GeneratedTxnSession, GeneratorConfig,
};
use crate::oracle::{
    check_isolation, check_norec, check_rollback, check_tlp, BugReport, OracleKind, OracleOutcome,
};
use crate::prioritizer::{BugPrioritizer, PriorityDecision};
use crate::reducer::{BugReducer, ReducibleCase, ScheduleCase, TxnCase};
use crate::resume::{save_checkpoint, CampaignCheckpoint};
use crate::stats::FeatureKind;
use crate::supervisor::{
    CampaignIncident, IncidentKind, RobustnessCounters, SupervisedCase, Supervisor,
    SupervisorConfig,
};
use crate::trace::{
    emit, emit_backend, FlushReason, TraceEventKind, TraceHandle, TraceVerdict, TracedConnection,
};
use sql_ast::{fnv1a64, splitmix64, Statement};

/// Configuration of a testing campaign.
///
/// Construct with [`CampaignConfig::builder`]: the struct is
/// `#[non_exhaustive]`, so downstream crates cannot use struct literals
/// (fields may be added between releases without breaking them). Existing
/// fields remain `pub` for read/mutate access.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CampaignConfig {
    /// Seed for the generator's RNG.
    pub seed: u64,
    /// Generator configuration (feedback on/off, depth schedule, ...).
    pub generator: GeneratorConfig,
    /// Database states to build over the course of the campaign.
    pub databases: usize,
    /// DDL/DML statements issued per database state.
    pub ddl_per_database: usize,
    /// Queries (test cases) issued per database state.
    pub queries_per_database: usize,
    /// The oracles to alternate between.
    pub oracles: Vec<OracleKind>,
    /// Whether to reduce prioritized bug-inducing test cases.
    pub reduce_bugs: bool,
    /// Budget of oracle re-validations per reduction.
    pub max_reduction_checks: usize,
    /// Coverage-directed mode: features the current database's cases have
    /// not exercised yet get a seed-stable weight boost in generation (the
    /// boost derives from the case seed — no wall clock), re-aiming the
    /// generator at cold regions. Off by default; the A/B knob the bench
    /// uses to compare directed vs. uniform time-to-coverage.
    pub coverage_directed: bool,
    /// Coverage-atlas accounting: per-case feature observation, engine
    /// polls and the saturation curve. On by default; the off position
    /// exists so the bench can price the accounting itself against an
    /// otherwise byte-identical campaign (the atlas observes, never
    /// perturbs — it touches no RNG, so the generated workload is the
    /// same either way). Ignored — treated as on — when
    /// [`coverage_directed`](Self::coverage_directed) is set, which needs
    /// the atlas to know what is cold.
    pub coverage_atlas: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0,
            generator: GeneratorConfig::default(),
            databases: 5,
            ddl_per_database: 12,
            queries_per_database: 200,
            oracles: vec![OracleKind::Tlp, OracleKind::NoRec],
            reduce_bugs: true,
            max_reduction_checks: 64,
            coverage_directed: false,
            coverage_atlas: true,
        }
    }
}

impl CampaignConfig {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            config: CampaignConfig::default(),
        }
    }
}

/// Builder for [`CampaignConfig`] (see [`CampaignConfig::builder`]).
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    config: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Seed for the generator's RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Generator configuration (feedback on/off, depth schedule, ...).
    pub fn generator(mut self, generator: GeneratorConfig) -> Self {
        self.config.generator = generator;
        self
    }

    /// Database states to build over the course of the campaign.
    pub fn databases(mut self, databases: usize) -> Self {
        self.config.databases = databases;
        self
    }

    /// DDL/DML statements issued per database state.
    pub fn ddl_per_database(mut self, ddl: usize) -> Self {
        self.config.ddl_per_database = ddl;
        self
    }

    /// Queries (test cases) issued per database state.
    pub fn queries_per_database(mut self, queries: usize) -> Self {
        self.config.queries_per_database = queries;
        self
    }

    /// Alias for [`queries_per_database`](Self::queries_per_database):
    /// test cases per database state.
    pub fn cases(self, cases: usize) -> Self {
        self.queries_per_database(cases)
    }

    /// The oracles to alternate between.
    pub fn oracles(mut self, oracles: Vec<OracleKind>) -> Self {
        self.config.oracles = oracles;
        self
    }

    /// Whether to reduce prioritized bug-inducing test cases.
    pub fn reduce_bugs(mut self, reduce: bool) -> Self {
        self.config.reduce_bugs = reduce;
        self
    }

    /// Budget of oracle re-validations per reduction.
    pub fn max_reduction_checks(mut self, checks: usize) -> Self {
        self.config.max_reduction_checks = checks;
        self
    }

    /// Coverage-directed mode: boost generation of features the current
    /// database's cases have not exercised yet (seed-stable weights, see
    /// [`CampaignConfig::coverage_directed`]).
    pub fn coverage_directed(mut self, directed: bool) -> Self {
        self.config.coverage_directed = directed;
        self
    }

    /// Coverage-atlas accounting on/off (see
    /// [`CampaignConfig::coverage_atlas`]). The off position is a bench
    /// instrument, not an operating mode.
    pub fn coverage_atlas(mut self, atlas: bool) -> Self {
        self.config.coverage_atlas = atlas;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> CampaignConfig {
        self.config
    }
}

/// Aggregate metrics of a campaign, mirroring the quantities reported in
/// Tables 2, 4 and 5 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignMetrics {
    /// DDL/DML statements sent to the DBMS.
    pub ddl_statements: u64,
    /// DDL/DML statements that executed successfully.
    pub ddl_successes: u64,
    /// Oracle test cases executed (each involves several queries).
    pub test_cases: u64,
    /// Test cases whose derived queries all executed successfully.
    pub valid_test_cases: u64,
    /// Bug-inducing test cases detected (before prioritization).
    pub detected_bug_cases: u64,
    /// Bug-inducing test cases kept by the prioritizer.
    pub prioritized_bugs: u64,
    /// Bug-inducing test cases marked as potential duplicates.
    pub deduplicated_bugs: u64,
    /// Concurrent schedules executed by the isolation oracle.
    pub isolation_schedules: u64,
    /// Commits rejected by the DBMS's write-write conflict detection during
    /// isolation-oracle schedules (first-committer-wins aborts — a
    /// legitimate outcome, reported as the conflict-abort rate).
    pub conflict_aborts: u64,
    /// `BEGIN` snapshots the backend's engine took over the campaign
    /// (zero for backends that expose no storage metrics).
    pub txn_begins: u64,
    /// Table versions shared into those snapshots by pointer.
    pub tables_snapshotted: u64,
    /// Table versions actually deep-cloned on first write (CoW detaches) —
    /// the snapshot work the copy-on-write storage could not avoid.
    pub tables_cow_cloned: u64,
    /// Commits admitted by row-range write intent that table-level
    /// first-committer-wins validation would have aborted.
    pub conflicts_avoided: u64,
}

impl CampaignMetrics {
    /// Validity rate of oracle test cases (Table 4).
    pub fn validity_rate(&self) -> f64 {
        if self.test_cases == 0 {
            return 0.0;
        }
        self.valid_test_cases as f64 / self.test_cases as f64
    }

    /// Accumulates another campaign's metrics into this one (used by the
    /// fleet runner to report fleet-wide totals).
    pub fn merge(&mut self, other: &CampaignMetrics) {
        self.ddl_statements += other.ddl_statements;
        self.ddl_successes += other.ddl_successes;
        self.test_cases += other.test_cases;
        self.valid_test_cases += other.valid_test_cases;
        self.detected_bug_cases += other.detected_bug_cases;
        self.prioritized_bugs += other.prioritized_bugs;
        self.deduplicated_bugs += other.deduplicated_bugs;
        self.isolation_schedules += other.isolation_schedules;
        self.conflict_aborts += other.conflict_aborts;
        self.txn_begins += other.txn_begins;
        self.tables_snapshotted += other.tables_snapshotted;
        self.tables_cow_cloned += other.tables_cow_cloned;
        self.conflicts_avoided += other.conflicts_avoided;
    }

    /// Fraction of isolation-oracle schedules in which at least one commit
    /// was rejected by conflict detection. (Schedules can abort more than
    /// once only with more than two sessions, so this is a rate in
    /// practice.)
    pub fn conflict_abort_rate(&self) -> f64 {
        if self.isolation_schedules == 0 {
            return 0.0;
        }
        self.conflict_aborts as f64 / self.isolation_schedules as f64
    }

    /// Validity rate of DDL/DML statements.
    pub fn ddl_validity_rate(&self) -> f64 {
        if self.ddl_statements == 0 {
            return 0.0;
        }
        self.ddl_successes as f64 / self.ddl_statements as f64
    }

    /// Fraction of snapshotted table versions that were actually
    /// deep-cloned (lower is better; `BEGIN` work CoW storage avoided is
    /// `1 - rate`).
    pub fn cow_clone_rate(&self) -> f64 {
        if self.tables_snapshotted == 0 {
            return 0.0;
        }
        self.tables_cow_cloned as f64 / self.tables_snapshotted as f64
    }
}

/// The report produced by a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// The DBMS the campaign ran against.
    pub dbms_name: String,
    /// Aggregate metrics.
    pub metrics: CampaignMetrics,
    /// The prioritized (and, if configured, reduced) bug reports.
    pub reports: Vec<BugReport>,
    /// The prioritized bug-inducing cases in replayable form.
    pub prioritized_cases: Vec<ReducibleCase>,
    /// The prioritized transactional cases flagged by the rollback oracle,
    /// in replayable form.
    pub txn_cases: Vec<TxnCase>,
    /// The prioritized concurrent schedules flagged by the isolation
    /// oracle, in replayable form (deterministic interleavings included).
    pub schedule_cases: Vec<ScheduleCase>,
    /// Validity-rate series sampled every `sample_every` test cases (used to
    /// show the convergence behaviour described in Section 5.4).
    pub validity_series: Vec<f64>,
    /// Supervision incidents recorded over the campaign (infrastructure
    /// failures, watchdog trips, isolated panics). Incidents are operational
    /// bookkeeping — they never appear in [`CampaignReport::reports`].
    pub incidents: Vec<CampaignIncident>,
    /// Aggregate robustness counters (retries, watchdog trips, quarantines,
    /// ...). All zero for a campaign over a healthy backend.
    pub robustness: RobustnessCounters,
    /// `true` when the campaign was quarantined after too many consecutive
    /// infrastructure failures and this report covers only the cases that
    /// ran before the cut-off.
    pub degraded: bool,
    /// The coverage atlas: per-oracle feature coverage, the engine-plane
    /// point union, and the saturation curve. Byte-identical (under
    /// [`crate::atlas::render_atlas_report`]) for any worker count, pool
    /// size and execution path, and across kill-and-resume.
    pub coverage: crate::atlas::CampaignCoverage,
}

/// Derives the per-case fault/supervision seed from the campaign seed and
/// the case's position. Deterministic, stable across resume (the position is
/// the global case counter), and never zero — zero is reserved as the
/// "safe mode" sentinel of [`DbmsConnection::begin_case`].
pub fn derive_case_seed(campaign_seed: u64, database: u64, case_index: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&database.to_le_bytes());
    bytes[8..].copy_from_slice(&case_index.to_le_bytes());
    let seed = splitmix64(campaign_seed ^ fnv1a64(&bytes));
    if seed == 0 {
        1
    } else {
        seed
    }
}

/// The generated payload of one oracle slot, produced exactly once per case
/// so the generator's RNG position is independent of supervision retries.
/// One payload exists at a time, so the variant size spread is irrelevant.
#[allow(clippy::large_enum_variant)]
enum CasePayload {
    /// A single-query oracle case (TLP or NoREC).
    Query(GeneratedQuery, OracleKind),
    /// A rollback-oracle transactional session.
    Txn(GeneratedTxnSession),
    /// An isolation-oracle concurrent schedule.
    Schedule(GeneratedSchedule),
}

impl CasePayload {
    fn features(&self) -> &FeatureSet {
        match self {
            CasePayload::Query(query, _) => &query.features,
            CasePayload::Txn(session) => &session.features,
            CasePayload::Schedule(schedule) => &schedule.features,
        }
    }
}

/// Where to pick the campaign loop back up after a checkpoint restore.
struct ResumePoint {
    database: usize,
    next_case: usize,
    oracle_index: usize,
    setup_log: Vec<String>,
    storage_accum: StorageMetrics,
    report: CampaignReport,
}

/// A running testing campaign.
#[derive(Clone)]
pub struct Campaign {
    config: CampaignConfig,
    /// The adaptive generator (exposed so experiments can inspect the
    /// learned profile after a run).
    pub generator: AdaptiveGenerator,
    prioritizer: BugPrioritizer,
    trace: Option<TraceHandle>,
    /// The last capability report applied via [`Campaign::apply_capability`],
    /// re-applied at every database boundary so a probed downgrade stays
    /// suppressed even after the generator's per-database resets.
    applied_capability: Option<crate::driver::Capability>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("generator", &self.generator)
            .field("prioritizer", &self.prioritizer)
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Campaign {
        let generator = AdaptiveGenerator::new(config.seed, config.generator.clone());
        Campaign {
            config,
            generator,
            prioritizer: BugPrioritizer::new(),
            trace: None,
            applied_capability: None,
        }
    }

    /// Creates a campaign whose generator starts from a pre-built generator
    /// (e.g. a perfect-knowledge baseline or a loaded profile).
    pub fn with_generator(config: CampaignConfig, generator: AdaptiveGenerator) -> Campaign {
        Campaign {
            config,
            generator,
            prioritizer: BugPrioritizer::new(),
            trace: None,
            applied_capability: None,
        }
    }

    /// Attaches a telemetry sink (see [`crate::trace`]): subsequent runs
    /// stream structured case-lifecycle events into it from the campaign
    /// loop, the supervisor and every traced statement. Pass `None` to
    /// detach. Tracing never changes a campaign's report — the
    /// deterministic plane observes the run, the wall-clock plane lives
    /// outside the determinism contract entirely.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// Applies a driver's [`Capability`](crate::driver::Capability) report
    /// to the generator: statement features the backend rules out are
    /// suppressed before learning starts, and concurrent-schedule
    /// generation is disabled for single-session backends. Idempotent —
    /// call it again with the same capability when resuming.
    pub fn apply_capability(&mut self, capability: &crate::driver::Capability) {
        self.applied_capability = Some(capability.clone());
        self.generator.apply_capability(capability);
    }

    /// Runs the campaign over a connection [`Pool`](crate::driver::Pool):
    /// applies the pool's capability report to the generator, then runs
    /// supervised with checkout-per-case through the pool. Reports are
    /// byte-identical for any pool size.
    pub fn run_pooled(
        &mut self,
        pool: &mut crate::driver::Pool,
        supervision: &SupervisorConfig,
    ) -> CampaignReport {
        self.apply_capability(&pool.capability().clone());
        self.run_supervised(pool, supervision)
    }

    /// Resumes a checkpointed campaign over a connection
    /// [`Pool`](crate::driver::Pool), re-applying the pool's capability
    /// report first (capability suppression is configuration, not
    /// checkpointed state). See [`Campaign::resume`].
    pub fn resume_pooled(
        &mut self,
        pool: &mut crate::driver::Pool,
        supervision: &SupervisorConfig,
        checkpoint: CampaignCheckpoint,
    ) -> CampaignReport {
        self.apply_capability(&pool.capability().clone());
        self.resume(pool, supervision, checkpoint)
    }

    /// Runs the campaign against a DBMS and produces a report.
    ///
    /// Every campaign runs under the default [`SupervisorConfig`], which is
    /// inert for well-behaved backends: no checkpointing, and a
    /// watchdog/retry machinery that only acts on panics, virtual-clock
    /// overruns and [`crate::INFRA_MARKER`] messages — so this is
    /// behaviourally identical to the historical unsupervised loop for any
    /// backend that produces none of those.
    pub fn run(&mut self, conn: &mut dyn DbmsConnection) -> CampaignReport {
        self.run_supervised(conn, &SupervisorConfig::default())
    }

    /// Runs the campaign under an explicit supervision policy: deadline
    /// watchdog, bounded deterministic retry, quarantine, and (when
    /// configured) periodic crash-safe checkpoints.
    pub fn run_supervised(
        &mut self,
        conn: &mut dyn DbmsConnection,
        supervision: &SupervisorConfig,
    ) -> CampaignReport {
        let mut supervisor = Supervisor::new(supervision.clone());
        supervisor.set_trace(self.trace.clone());
        self.run_inner(conn, &mut supervisor, None)
    }

    /// Resumes a campaign from a checkpoint and runs it to completion.
    ///
    /// The campaign must have been created with the same
    /// [`CampaignConfig`] that produced the checkpoint; the final report is
    /// then byte-identical (under [`crate::resume::render_report`]) to the
    /// report of an uninterrupted run.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's seed disagrees with the campaign
    /// config's — resuming under a different configuration cannot reproduce
    /// the original run and would silently produce garbage.
    pub fn resume(
        &mut self,
        conn: &mut dyn DbmsConnection,
        supervision: &SupervisorConfig,
        checkpoint: CampaignCheckpoint,
    ) -> CampaignReport {
        assert_eq!(
            checkpoint.config_seed, self.config.seed,
            "resume: checkpoint was written by a campaign with a different seed"
        );
        // Restore the generator: schema and statistics verbatim, then the
        // private runtime state (RNG position, schedules, suppression).
        self.generator.schema = checkpoint.schema;
        self.generator.stats = checkpoint.stats;
        self.generator.restore_runtime_state(
            checkpoint.rng_state,
            checkpoint.recorded,
            checkpoint.current_depth,
            checkpoint.suppressed_query.iter().cloned().collect(),
            checkpoint.suppressed_ddl.iter().cloned().collect(),
        );
        self.prioritizer =
            BugPrioritizer::restore(checkpoint.kept_sets, checkpoint.prioritizer_stats);
        let mut supervisor = Supervisor::with_state(
            supervision.clone(),
            checkpoint.report.robustness,
            checkpoint.report.incidents.clone(),
            checkpoint.consecutive_infra,
        );
        supervisor.set_trace(self.trace.clone());
        // Rebuild the backend to the state the checkpoint describes: safe
        // mode (no fault arming), full reset, setup-log replay. The storage
        // baseline is sampled *after* this replay inside `run_inner`, so
        // replayed setup work never double-counts into the accumulated
        // delta.
        conn.begin_case(0);
        conn.reset();
        for sql in &checkpoint.setup_log {
            let _ = conn.execute(sql);
        }
        // Restore the connection layer's breaker/backoff ledger so the
        // resumed run routes checkouts exactly like the uninterrupted one
        // would have. A connection without resilience state (unpooled)
        // ignores it — breaker routing is verdict-neutral, so the report
        // stays byte-identical either way.
        if let Some(data) = &checkpoint.resilience {
            let _ = conn.restore_resilience(data);
        }
        let resume_point = ResumePoint {
            database: checkpoint.database,
            next_case: checkpoint.next_case,
            oracle_index: checkpoint.oracle_index,
            setup_log: checkpoint.setup_log,
            storage_accum: checkpoint.storage_delta,
            report: checkpoint.report,
        };
        self.run_inner(conn, &mut supervisor, Some(resume_point))
    }

    #[allow(clippy::too_many_lines)]
    fn run_inner(
        &mut self,
        conn: &mut dyn DbmsConnection,
        supervisor: &mut Supervisor,
        resume: Option<ResumePoint>,
    ) -> CampaignReport {
        // When tracing, wrap the connection so every statement streams a
        // deterministic-plane event stamped with its virtual-tick cost.
        // The wrapper is transparent to the campaign: same outcomes, same
        // clock, same quirks.
        let trace = self.trace.clone();
        let mut traced;
        let conn: &mut dyn DbmsConnection = match &trace {
            Some(sink) => {
                sink.borrow_mut().begin_campaign(conn.name());
                traced = TracedConnection::new(conn, sink.clone());
                &mut traced
            }
            None => conn,
        };
        let (mut report, start_db, resumed_case, mut oracle_index, mut resumed_setup, mut accum) =
            match resume {
                Some(r) => (
                    r.report,
                    r.database,
                    r.next_case,
                    r.oracle_index,
                    Some(r.setup_log),
                    r.storage_accum,
                ),
                None => (
                    CampaignReport {
                        dbms_name: conn.name().to_string(),
                        ..CampaignReport::default()
                    },
                    0,
                    0,
                    0,
                    None,
                    StorageMetrics::default(),
                ),
            };
        // Baseline for the storage-metric delta. A backend error here is an
        // incident (satellite of the fault model: backend errors surface as
        // incident counters, never as silently-zero metrics), and the
        // campaign proceeds with a default baseline exactly as the legacy
        // swallow did.
        let mut storage_baseline = match conn.storage_metrics() {
            Ok(Some(metrics)) => metrics,
            Ok(None) => StorageMetrics::default(),
            Err(message) => {
                supervisor.counters.storage_metric_errors += 1;
                supervisor.record(CampaignIncident {
                    kind: IncidentKind::StorageMetricsError,
                    database: start_db,
                    case_index: report.metrics.test_cases,
                    attempt: 0,
                    deadline_ticks: 0,
                    observed_ticks: 0,
                    detail: message,
                });
                StorageMetrics::default()
            }
        };
        let quirks = conn.quirks();
        let sample_every = 50u64;
        let mut quarantined = false;
        // The cold-feature pool for coverage-directed generation, computed
        // once (the universe enumeration allocates >100 features).
        let feature_pool = if self.config.coverage_directed {
            crate::feature::feature_universe()
        } else {
            Vec::new()
        };
        // Directed mode needs the atlas to know what is cold, so it
        // overrides the accounting knob (see `CampaignConfig::coverage_atlas`).
        let atlas_enabled = self.config.coverage_atlas || self.config.coverage_directed;

        'campaign: for db in start_db..self.config.databases {
            // Phase 1: build the database state (skipped when resuming
            // mid-database — the resume path already replayed the
            // checkpointed setup log and the generator's schema model and
            // RNG carry the phase's effects).
            let setup_log: Vec<String> = match resumed_setup.take() {
                Some(log) => log,
                None => {
                    // A fresh database starts a fresh novelty stream in the
                    // atlas (the resumed branch above restored the stream's
                    // mid-database state from the checkpoint instead).
                    if atlas_enabled {
                        report.coverage.begin_database();
                    }
                    // Database boundary: the connection layer resets its
                    // breaker ledger (so breaker state is a pure function of
                    // this database's case schedule, not of pool history) and
                    // re-announces any static-vs-probed capability drift.
                    // Re-applying the stored capability keeps probed
                    // downgrades suppressed across the generator's
                    // per-database resets — graceful degradation, not an
                    // invalid-case storm.
                    conn.note_database_boundary();
                    if let Some(capability) = self.applied_capability.clone() {
                        self.generator.apply_capability(&capability);
                    }
                    conn.reset();
                    self.generator.reset_schema();
                    let mut setup_log: Vec<String> = Vec::new();
                    for _ in 0..self.config.ddl_per_database {
                        let generated = self.generator.generate_ddl_statement();
                        // AST fast path: the generator already holds the
                        // typed statement, so backends that can consume it
                        // skip the render→lex→parse round-trip.
                        // `generated.sql` is still used for the replayable
                        // setup log.
                        let outcome = conn.execute_ast(&generated.statement);
                        let success = outcome.is_success();
                        report.metrics.ddl_statements += 1;
                        if success {
                            report.metrics.ddl_successes += 1;
                            self.generator.apply_success(&generated.statement);
                            setup_log.push(generated.sql.clone());
                            if let Statement::Insert(insert) = &generated.statement {
                                if quirks.requires_refresh {
                                    let refresh = format!("REFRESH TABLE {}", insert.table);
                                    if conn.execute(&refresh).is_success() {
                                        setup_log.push(refresh);
                                    }
                                }
                                if quirks.requires_commit {
                                    let _ = conn.execute("COMMIT");
                                }
                            }
                        }
                        self.generator.record_outcome(
                            &generated.features,
                            FeatureKind::DdlDml,
                            success,
                        );
                    }
                    setup_log
                }
            };

            // Phase 2: issue oracle-checked test cases under supervision.
            let start_case = if db == start_db { resumed_case } else { 0 };
            for case_no in start_case..self.config.queries_per_database {
                let mut oracle = self.config.oracles[oracle_index % self.config.oracles.len()];
                oracle_index += 1;
                // The case seed is a pure function of the cursor, so it is
                // available *before* generation — coverage-directed weight
                // boosts derive from it (seed-stable, no wall clock).
                let case_seed =
                    derive_case_seed(self.config.seed, db as u64, report.metrics.test_cases);
                if self.config.coverage_directed {
                    let cold = report.coverage.cold_features(&feature_pool);
                    let boost = 2 + (splitmix64(case_seed) % 3) as usize;
                    self.generator.set_coverage_direction(cold, boost);
                }
                // Generate the case payload once, before supervision: the
                // generator's RNG must advance exactly once per case
                // regardless of how many attempts the supervisor needs.
                let payload = match oracle {
                    OracleKind::Rollback => match self.generator.generate_txn_session() {
                        Some(session) => Some(CasePayload::Txn(session)),
                        // No transactional session available (no base table
                        // yet, or the learned profile says the dialect
                        // rejects transactions): fall back to a TLP-checked
                        // query so the slot is not wasted.
                        None => {
                            oracle = OracleKind::Tlp;
                            self.generator
                                .generate_query()
                                .map(|query| CasePayload::Query(query, OracleKind::Tlp))
                        }
                    },
                    OracleKind::Isolation => match self.generator.generate_schedule() {
                        Some(schedule) => Some(CasePayload::Schedule(schedule)),
                        // Same degradation rule as the rollback oracle.
                        None => {
                            oracle = OracleKind::Tlp;
                            self.generator
                                .generate_query()
                                .map(|query| CasePayload::Query(query, OracleKind::Tlp))
                        }
                    },
                    OracleKind::Tlp | OracleKind::NoRec => self
                        .generator
                        .generate_query()
                        .map(|query| CasePayload::Query(query, oracle)),
                };
                // Direction is per-case: clear it before anything else runs
                // (DDL of the next database must stay uniform).
                if self.config.coverage_directed {
                    self.generator.clear_coverage_direction();
                }
                let Some(payload) = payload else { break };
                emit(
                    &trace,
                    case_seed,
                    0,
                    TraceEventKind::CaseStarted {
                        database: db,
                        case_index: report.metrics.test_cases,
                        oracle,
                    },
                );
                let mut conflict_aborts = 0u64;
                let verdict = supervisor.run_case(
                    conn,
                    &setup_log,
                    db,
                    report.metrics.test_cases,
                    case_seed,
                    &mut |conn| match &payload {
                        CasePayload::Query(query, oracle) => match oracle {
                            OracleKind::Tlp => check_tlp(
                                conn,
                                &query.select,
                                &query.predicate,
                                &query.features,
                                &setup_log,
                            ),
                            OracleKind::NoRec => check_norec(
                                conn,
                                &query.select,
                                &query.predicate,
                                &query.features,
                                &setup_log,
                            ),
                            OracleKind::Rollback | OracleKind::Isolation => {
                                unreachable!("stateful oracles carry their own payloads")
                            }
                        },
                        CasePayload::Txn(session) => check_rollback(
                            conn,
                            &session.table,
                            &session.statements,
                            &session.features,
                            &setup_log,
                        ),
                        CasePayload::Schedule(schedule) => {
                            let v = check_isolation(
                                conn,
                                &schedule.schedule,
                                &schedule.features,
                                &setup_log,
                            );
                            // Only the attempt that completes contributes
                            // its conflict aborts (overwrite, not add):
                            // retried attempts were rolled back wholesale.
                            conflict_aborts = v.conflict_aborts;
                            v.outcome
                        }
                    },
                );
                report.metrics.test_cases += 1;
                if matches!(payload, CasePayload::Schedule(_)) {
                    report.metrics.isolation_schedules += 1;
                }
                match verdict {
                    SupervisedCase::Completed(outcome) => {
                        if matches!(payload, CasePayload::Schedule(_)) {
                            report.metrics.conflict_aborts += conflict_aborts;
                        }
                        if atlas_enabled {
                            report.coverage.observe_case(
                                oracle,
                                match &outcome {
                                    OracleOutcome::Passed => TraceVerdict::Pass,
                                    OracleOutcome::Invalid(_) => TraceVerdict::Invalid,
                                    OracleOutcome::Bug(_) => TraceVerdict::Bug,
                                },
                                payload.features(),
                                case_no as u64,
                            );
                        }
                        let valid = outcome.is_valid();
                        if valid {
                            report.metrics.valid_test_cases += 1;
                        }
                        self.generator.record_outcome(
                            payload.features(),
                            FeatureKind::Query,
                            valid,
                        );
                        if report.metrics.test_cases.is_multiple_of(sample_every) {
                            report.validity_series.push(report.metrics.validity_rate());
                        }
                        if let OracleOutcome::Bug(bug) = outcome {
                            report.metrics.detected_bug_cases += 1;
                            match &payload {
                                CasePayload::Query(query, oracle) => self.handle_bug(
                                    conn,
                                    *bug,
                                    &query.features,
                                    &setup_log,
                                    query,
                                    *oracle,
                                    case_seed,
                                    &mut report,
                                ),
                                CasePayload::Txn(session) => self.handle_txn_bug(
                                    conn,
                                    *bug,
                                    session,
                                    &setup_log,
                                    case_seed,
                                    &mut report,
                                ),
                                CasePayload::Schedule(schedule) => self.handle_schedule_bug(
                                    conn,
                                    *bug,
                                    schedule,
                                    &setup_log,
                                    case_seed,
                                    &mut report,
                                ),
                            }
                        }
                    }
                    // Abandoned cases: counted (the slot was spent), never
                    // valid, and never fed to the generator's learning —
                    // an infrastructure failure says nothing about dialect
                    // feature support. The atlas still observes the
                    // payload's features: they were generated, and counting
                    // them keeps the novelty stream identical across
                    // configurations that retry differently.
                    SupervisedCase::InfraFailed => {
                        if atlas_enabled {
                            report.coverage.observe_case(
                                oracle,
                                TraceVerdict::InfraFailed,
                                payload.features(),
                                case_no as u64,
                            );
                        }
                        if report.metrics.test_cases.is_multiple_of(sample_every) {
                            report.validity_series.push(report.metrics.validity_rate());
                        }
                    }
                    SupervisedCase::Panicked => {
                        if atlas_enabled {
                            report.coverage.observe_case(
                                oracle,
                                TraceVerdict::Panicked,
                                payload.features(),
                                case_no as u64,
                            );
                        }
                        if report.metrics.test_cases.is_multiple_of(sample_every) {
                            report.validity_series.push(report.metrics.validity_rate());
                        }
                    }
                }
                // Drain wall-clock-plane backend telemetry (pool checkout
                // counters, wire bytes) accumulated during the case.
                emit_backend(&trace, conn);
                if supervisor.should_quarantine() {
                    // Too many consecutive infrastructure failures: the
                    // backend is effectively down. Mark the partial report
                    // degraded and stop this dialect — the fleet keeps
                    // running the others.
                    supervisor.counters.quarantines += 1;
                    emit(&trace, case_seed, 0, TraceEventKind::Quarantined);
                    quarantined = true;
                    break 'campaign;
                }
                let supervision = supervisor.config().clone();
                if supervision.checkpoint_every > 0
                    && report
                        .metrics
                        .test_cases
                        .is_multiple_of(supervision.checkpoint_every)
                {
                    if let Some(path) = &supervision.checkpoint_path {
                        self.settle_storage(
                            conn,
                            supervisor,
                            db,
                            report.metrics.test_cases,
                            &mut storage_baseline,
                            &mut accum,
                        );
                        // Fold the backend's engine coverage into the atlas
                        // before snapshotting: the checkpoint must carry
                        // every point reached so far, or a resumed run
                        // (whose fresh connection re-reaches only the
                        // replayed setup's points) would under-report.
                        // Reported sets are monotone, so the union is
                        // idempotent across polls.
                        if atlas_enabled {
                            if let Some(coverage) = conn.engine_coverage() {
                                report.coverage.absorb_engine(&coverage);
                            }
                        }
                        let checkpoint = self.make_checkpoint(
                            &report,
                            supervisor,
                            db,
                            case_no + 1,
                            oracle_index,
                            &setup_log,
                            accum,
                            conn.resilience_checkpoint(),
                        );
                        // A failed checkpoint write costs resumability, not
                        // correctness: the campaign continues and the
                        // previous checkpoint (if any) stays valid thanks to
                        // the atomic temp-file+rename protocol.
                        let _ = save_checkpoint(&checkpoint, path);
                        // The flight recorder flushes alongside the
                        // checkpoint, so post-mortem forensics survive the
                        // same crashes resume does. The atlas travels the
                        // same path: its JSONL snapshot lands in the flushed
                        // file.
                        if let Some(sink) = &trace {
                            let mut sink = sink.borrow_mut();
                            if atlas_enabled {
                                sink.coverage(&report.dbms_name, &report.coverage);
                            }
                            sink.flush(FlushReason::Checkpoint);
                        }
                    }
                }
                if let Some(budget) = supervision.stop_after_cases {
                    if report.metrics.test_cases >= budget {
                        // Simulated kill: return the in-flight state as-is,
                        // with no finalisation and no extra checkpoint —
                        // exactly what a crash leaves behind. Resume re-runs
                        // everything after the last cadence checkpoint.
                        report.robustness = supervisor.counters;
                        report.incidents = supervisor.incidents.clone();
                        return report;
                    }
                }
            }
        }
        report.metrics.prioritized_bugs = self.prioritizer.stats().prioritized as u64;
        report.metrics.deduplicated_bugs = self.prioritizer.stats().deduplicated as u64;
        self.settle_storage(
            conn,
            supervisor,
            self.config.databases.saturating_sub(1),
            report.metrics.test_cases,
            &mut storage_baseline,
            &mut accum,
        );
        report.metrics.txn_begins = accum.txn_begins;
        report.metrics.tables_snapshotted = accum.tables_snapshotted;
        report.metrics.tables_cow_cloned = accum.tables_cow_cloned;
        report.metrics.conflicts_avoided = accum.conflicts_avoided;
        report.degraded = report.degraded || quarantined;
        report.robustness = supervisor.counters;
        report.incidents = supervisor.incidents.clone();
        // Final atlas accounting: the engine-point union (monotone sets, so
        // this one poll sees everything this process reached) and the last
        // database's trailing dry run.
        if atlas_enabled {
            if let Some(coverage) = conn.engine_coverage() {
                report.coverage.absorb_engine(&coverage);
            }
            report.coverage.finish();
        }
        emit_backend(&trace, conn);
        if let Some(sink) = &trace {
            let mut sink = sink.borrow_mut();
            if atlas_enabled {
                sink.coverage(&report.dbms_name, &report.coverage);
            }
            sink.flush(FlushReason::CampaignEnd);
        }
        report
    }

    /// Folds the backend's storage-counter delta since `baseline` into
    /// `accum` and advances the baseline. A backend error becomes a
    /// recorded incident (the legacy code swallowed it into zeros).
    #[allow(clippy::unused_self)]
    fn settle_storage(
        &self,
        conn: &mut dyn DbmsConnection,
        supervisor: &mut Supervisor,
        database: usize,
        case_index: u64,
        baseline: &mut StorageMetrics,
        accum: &mut StorageMetrics,
    ) {
        match conn.storage_metrics() {
            Ok(Some(now)) => {
                accum.merge(&now.since(baseline));
                *baseline = now;
            }
            Ok(None) => {}
            Err(message) => {
                supervisor.counters.storage_metric_errors += 1;
                supervisor.record(CampaignIncident {
                    kind: IncidentKind::StorageMetricsError,
                    database,
                    case_index,
                    attempt: 0,
                    deadline_ticks: 0,
                    observed_ticks: 0,
                    detail: message,
                });
            }
        }
    }

    /// Builds the resume checkpoint describing the campaign's exact state:
    /// cursor, generator, prioritizer, partial report, incident history.
    #[allow(clippy::too_many_arguments)]
    fn make_checkpoint(
        &self,
        report: &CampaignReport,
        supervisor: &Supervisor,
        database: usize,
        next_case: usize,
        oracle_index: usize,
        setup_log: &[String],
        storage_accum: StorageMetrics,
        resilience: Option<String>,
    ) -> CampaignCheckpoint {
        let mut snapshot = report.clone();
        snapshot.robustness = supervisor.counters;
        snapshot.incidents = supervisor.incidents.clone();
        CampaignCheckpoint {
            config_seed: self.config.seed,
            database,
            next_case,
            oracle_index,
            rng_state: self.generator.rng_state(),
            recorded: self.generator.recorded_executions(),
            current_depth: self.generator.current_depth(),
            schema: self.generator.schema.clone(),
            stats: self.generator.stats.clone(),
            suppressed_query: self
                .generator
                .suppressed_query_features()
                .iter()
                .cloned()
                .collect(),
            suppressed_ddl: self
                .generator
                .suppressed_ddl_features()
                .iter()
                .cloned()
                .collect(),
            kept_sets: self.prioritizer.kept_sets().to_vec(),
            prioritizer_stats: self.prioritizer.stats(),
            setup_log: setup_log.to_vec(),
            storage_delta: storage_accum,
            consecutive_infra: supervisor.consecutive_infra(),
            resilience,
            report: snapshot,
        }
    }

    /// Handles a rollback-oracle bug: prioritization, optional reduction,
    /// and state rebuild — the same treatment the single-query oracles get.
    #[allow(clippy::too_many_arguments)]
    fn handle_txn_bug(
        &mut self,
        conn: &mut dyn DbmsConnection,
        bug: BugReport,
        session: &GeneratedTxnSession,
        setup_log: &[String],
        case_seed: u64,
        report: &mut CampaignReport,
    ) {
        match self.prioritizer.classify(&session.features) {
            PriorityDecision::PotentialDuplicate => {
                emit(
                    &self.trace,
                    case_seed,
                    0,
                    TraceEventKind::Prioritized { kept: false },
                );
            }
            PriorityDecision::New => {
                emit(
                    &self.trace,
                    case_seed,
                    0,
                    TraceEventKind::Prioritized { kept: true },
                );
                let mut case = TxnCase {
                    setup: setup_log.to_vec(),
                    table: session.table.clone(),
                    statements: session.statements.clone(),
                    features: session.features.clone(),
                };
                let mut final_bug = bug;
                if self.config.reduce_bugs {
                    let statements_before = case.setup.len() + case.statements.len();
                    let (reduced, _stats) = {
                        let mut reducer = BugReducer::new(conn, self.config.max_reduction_checks);
                        reducer.reduce_txn(&case)
                    };
                    case = reduced;
                    emit(
                        &self.trace,
                        case_seed,
                        0,
                        TraceEventKind::Reduced {
                            statements_before,
                            statements_after: case.setup.len() + case.statements.len(),
                        },
                    );
                    final_bug.setup = case.setup.clone();
                    // Re-render the reduced session with the oracle's
                    // transaction bracketing and probes, so the report stays
                    // replayable verbatim.
                    final_bug.queries = case.replay_script();
                    // Reduction left the DBMS in a reduced-setup state;
                    // rebuild the campaign's current state.
                    conn.reset();
                    for sql in setup_log {
                        let _ = conn.execute(sql);
                    }
                }
                report.reports.push(final_bug);
                report.txn_cases.push(case);
            }
        }
    }

    /// Handles an isolation-oracle bug: prioritization, optional reduction,
    /// and state rebuild. Conflict-aborted commits were already folded into
    /// the conflict-abort rate by the caller — they never reach this path.
    #[allow(clippy::too_many_arguments)]
    fn handle_schedule_bug(
        &mut self,
        conn: &mut dyn DbmsConnection,
        bug: BugReport,
        schedule: &GeneratedSchedule,
        setup_log: &[String],
        case_seed: u64,
        report: &mut CampaignReport,
    ) {
        match self.prioritizer.classify(&schedule.features) {
            PriorityDecision::PotentialDuplicate => {
                emit(
                    &self.trace,
                    case_seed,
                    0,
                    TraceEventKind::Prioritized { kept: false },
                );
            }
            PriorityDecision::New => {
                emit(
                    &self.trace,
                    case_seed,
                    0,
                    TraceEventKind::Prioritized { kept: true },
                );
                let mut case = ScheduleCase {
                    setup: setup_log.to_vec(),
                    schedule: schedule.schedule.clone(),
                    features: schedule.features.clone(),
                };
                let mut final_bug = bug;
                if self.config.reduce_bugs {
                    let statements_before = schedule_statement_count(&case);
                    let (reduced, _stats) = {
                        let mut reducer = BugReducer::new(conn, self.config.max_reduction_checks);
                        reducer.reduce_schedule(&case)
                    };
                    case = reduced;
                    emit(
                        &self.trace,
                        case_seed,
                        0,
                        TraceEventKind::Reduced {
                            statements_before,
                            statements_after: schedule_statement_count(&case),
                        },
                    );
                    final_bug.setup = case.setup.clone();
                    final_bug.queries = case.schedule.replay_script();
                    // Reduction left the DBMS in a reduced-setup state;
                    // rebuild the campaign's current state.
                    conn.reset();
                    for sql in setup_log {
                        let _ = conn.execute(sql);
                    }
                }
                report.reports.push(final_bug);
                report.schedule_cases.push(case);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_bug(
        &mut self,
        conn: &mut dyn DbmsConnection,
        bug: BugReport,
        features: &FeatureSet,
        setup_log: &[String],
        query: &crate::generator::GeneratedQuery,
        oracle: OracleKind,
        case_seed: u64,
        report: &mut CampaignReport,
    ) {
        match self.prioritizer.classify(features) {
            PriorityDecision::PotentialDuplicate => {
                emit(
                    &self.trace,
                    case_seed,
                    0,
                    TraceEventKind::Prioritized { kept: false },
                );
            }
            PriorityDecision::New => {
                emit(
                    &self.trace,
                    case_seed,
                    0,
                    TraceEventKind::Prioritized { kept: true },
                );
                let mut case = ReducibleCase {
                    setup: setup_log.to_vec(),
                    query: query.select.clone(),
                    predicate: query.predicate.clone(),
                    oracle,
                    features: features.clone(),
                };
                let mut final_bug = bug;
                if self.config.reduce_bugs {
                    let statements_before = case.setup.len() + 1;
                    let (reduced, _stats) = {
                        let mut reducer = BugReducer::new(conn, self.config.max_reduction_checks);
                        reducer.reduce(&case)
                    };
                    case = reduced;
                    emit(
                        &self.trace,
                        case_seed,
                        0,
                        TraceEventKind::Reduced {
                            statements_before,
                            statements_after: case.setup.len() + 1,
                        },
                    );
                    final_bug.setup = case.setup.clone();
                    // Re-render the (possibly reduced) queries for the report.
                    final_bug.queries = vec![case.query.to_string()];
                    // Reduction resets the DBMS; rebuild the current state so
                    // subsequent test cases keep running against it.
                    conn.reset();
                    for sql in setup_log {
                        let _ = conn.execute(sql);
                    }
                }
                report.reports.push(final_bug);
                report.prioritized_cases.push(case);
            }
        }
    }
}

/// Statement count of a schedule case, for reduction telemetry: the setup
/// plus every session's body statements.
fn schedule_statement_count(case: &ScheduleCase) -> usize {
    case.setup.len()
        + case
            .schedule
            .sessions
            .iter()
            .map(|session| session.statements.len())
            .sum::<usize>()
}

/// Replays a bug-inducing test case's statements on another DBMS and returns
/// the fraction that executed successfully — the quantity plotted in the
/// Figure 6 heatmap (the SQL feature study).
pub fn replay_validity(conn: &mut dyn DbmsConnection, case: &ReducibleCase) -> f64 {
    conn.reset();
    let mut total = 0usize;
    let mut ok = 0usize;
    for sql in &case.setup {
        total += 1;
        if conn.execute(sql).is_success() {
            ok += 1;
        }
    }
    total += 1;
    if conn.query_ast(&case.query).is_ok() {
        ok += 1;
    }
    if total == 0 {
        return 0.0;
    }
    ok as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbms::{DialectQuirks, QueryResult, StatementOutcome};
    use sql_ast::Value;

    /// A minimal scriptable DBMS: accepts all DDL, answers every query with
    /// a fixed single row, and (optionally) "loses" rows for NOT-queries to
    /// simulate a logic bug.
    struct ToyDbms {
        buggy: bool,
        reject_nullsafe: bool,
    }

    impl DbmsConnection for ToyDbms {
        fn name(&self) -> &str {
            "toy"
        }
        fn execute(&mut self, sql: &str) -> StatementOutcome {
            if self.reject_nullsafe && sql.contains("<=>") {
                StatementOutcome::Failure("operator <=> not supported".into())
            } else {
                StatementOutcome::Success
            }
        }
        fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
            if self.reject_nullsafe && sql.contains("<=>") {
                return Err("operator <=> not supported".into());
            }
            // The toy "table" is empty, so a sound DBMS returns no rows for
            // any query; the buggy variant spuriously returns a row for
            // negated partitions, which TLP flags as an inconsistency.
            let rows = if self.buggy && sql.contains("(NOT ") {
                vec![vec![Value::Integer(1)]]
            } else {
                vec![]
            };
            Ok(QueryResult {
                columns: vec!["c0".into()],
                rows,
            })
        }
        fn reset(&mut self) {}
        fn quirks(&self) -> DialectQuirks {
            DialectQuirks::default()
        }
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 3,
            databases: 1,
            ddl_per_database: 6,
            queries_per_database: 40,
            oracles: vec![OracleKind::Tlp],
            reduce_bugs: false,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_and_reports_metrics() {
        let mut campaign = Campaign::new(small_config());
        let mut conn = ToyDbms {
            buggy: false,
            reject_nullsafe: false,
        };
        let report = campaign.run(&mut conn);
        assert_eq!(report.dbms_name, "toy");
        assert_eq!(report.metrics.ddl_statements, 6);
        assert!(report.metrics.test_cases > 0);
        assert!(report.metrics.validity_rate() > 0.0);
        assert_eq!(report.metrics.detected_bug_cases, 0);
    }

    #[test]
    fn campaign_detects_and_prioritizes_bugs() {
        let mut campaign = Campaign::new(small_config());
        let mut conn = ToyDbms {
            buggy: true,
            reject_nullsafe: false,
        };
        let report = campaign.run(&mut conn);
        assert!(report.metrics.detected_bug_cases > 0);
        assert!(report.metrics.prioritized_bugs > 0);
        assert!(report.metrics.prioritized_bugs <= report.metrics.detected_bug_cases);
        assert_eq!(
            report.metrics.prioritized_bugs + report.metrics.deduplicated_bugs,
            report.metrics.detected_bug_cases
        );
        assert_eq!(report.reports.len() as u64, report.metrics.prioritized_bugs);
    }

    #[test]
    fn feedback_learns_to_avoid_rejected_operator() {
        let mut config = small_config();
        config.queries_per_database = 600;
        config.generator.update_interval = 25;
        config.generator.stats.min_attempts = 10;
        // With a few hundred test cases the Bayesian test cannot push below
        // the paper's 1% threshold (that needs ~300 observations per
        // feature), so this test uses a higher threshold, as a user of the
        // platform would for short runs.
        config.generator.stats.query_threshold = 0.2;
        let mut campaign = Campaign::new(config);
        let mut conn = ToyDbms {
            buggy: false,
            reject_nullsafe: true,
        };
        let report = campaign.run(&mut conn);
        // After the campaign the null-safe operator must be suppressed.
        campaign.generator.refresh_suppression();
        assert!(campaign
            .generator
            .suppressed_query_features()
            .iter()
            .any(|f| f.name() == "OP_NULLSAFE_EQ"));
        // And the validity rate should have improved over the campaign.
        let series = &report.validity_series;
        assert!(series.len() >= 2);
        assert!(series.last().unwrap() >= series.first().unwrap());
    }

    #[test]
    fn replay_validity_counts_successful_statements() {
        let case = ReducibleCase {
            setup: vec!["CREATE TABLE t0 (c0 INT)".into(), "SELECT 1 <=> 1".into()],
            query: sql_ast::Select::from_table(
                "t0",
                vec![sql_ast::SelectItem::expr(sql_ast::Expr::column("c0"))],
            ),
            predicate: sql_ast::Expr::boolean(true),
            oracle: OracleKind::Tlp,
            features: FeatureSet::new(),
        };
        let mut conn = ToyDbms {
            buggy: false,
            reject_nullsafe: true,
        };
        let validity = replay_validity(&mut conn, &case);
        assert!((validity - 2.0 / 3.0).abs() < 1e-9);
    }
}
