//! The end-to-end testing campaign (Figure 2).
//!
//! A campaign repeatedly (1) builds a database state with generated DDL/DML,
//! (2) generates random queries, (3) applies the configured oracles,
//! (4) records validity feedback, (5) reduces and prioritizes bug-inducing
//! test cases, and (6) reports metrics — the same pipeline the paper runs
//! against each DBMS.

use crate::dbms::DbmsConnection;
use crate::feature::FeatureSet;
use crate::generator::{
    AdaptiveGenerator, GeneratedSchedule, GeneratedTxnSession, GeneratorConfig,
};
use crate::oracle::{
    check_isolation, check_norec, check_rollback, check_tlp, BugReport, OracleKind, OracleOutcome,
};
use crate::prioritizer::{BugPrioritizer, PriorityDecision};
use crate::reducer::{BugReducer, ReducibleCase, ScheduleCase, TxnCase};
use crate::stats::FeatureKind;
use sql_ast::Statement;

/// Configuration of a testing campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Seed for the generator's RNG.
    pub seed: u64,
    /// Generator configuration (feedback on/off, depth schedule, ...).
    pub generator: GeneratorConfig,
    /// Database states to build over the course of the campaign.
    pub databases: usize,
    /// DDL/DML statements issued per database state.
    pub ddl_per_database: usize,
    /// Queries (test cases) issued per database state.
    pub queries_per_database: usize,
    /// The oracles to alternate between.
    pub oracles: Vec<OracleKind>,
    /// Whether to reduce prioritized bug-inducing test cases.
    pub reduce_bugs: bool,
    /// Budget of oracle re-validations per reduction.
    pub max_reduction_checks: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0,
            generator: GeneratorConfig::default(),
            databases: 5,
            ddl_per_database: 12,
            queries_per_database: 200,
            oracles: vec![OracleKind::Tlp, OracleKind::NoRec],
            reduce_bugs: true,
            max_reduction_checks: 64,
        }
    }
}

/// Aggregate metrics of a campaign, mirroring the quantities reported in
/// Tables 2, 4 and 5 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignMetrics {
    /// DDL/DML statements sent to the DBMS.
    pub ddl_statements: u64,
    /// DDL/DML statements that executed successfully.
    pub ddl_successes: u64,
    /// Oracle test cases executed (each involves several queries).
    pub test_cases: u64,
    /// Test cases whose derived queries all executed successfully.
    pub valid_test_cases: u64,
    /// Bug-inducing test cases detected (before prioritization).
    pub detected_bug_cases: u64,
    /// Bug-inducing test cases kept by the prioritizer.
    pub prioritized_bugs: u64,
    /// Bug-inducing test cases marked as potential duplicates.
    pub deduplicated_bugs: u64,
    /// Concurrent schedules executed by the isolation oracle.
    pub isolation_schedules: u64,
    /// Commits rejected by the DBMS's write-write conflict detection during
    /// isolation-oracle schedules (first-committer-wins aborts — a
    /// legitimate outcome, reported as the conflict-abort rate).
    pub conflict_aborts: u64,
    /// `BEGIN` snapshots the backend's engine took over the campaign
    /// (zero for backends that expose no storage metrics).
    pub txn_begins: u64,
    /// Table versions shared into those snapshots by pointer.
    pub tables_snapshotted: u64,
    /// Table versions actually deep-cloned on first write (CoW detaches) —
    /// the snapshot work the copy-on-write storage could not avoid.
    pub tables_cow_cloned: u64,
    /// Commits admitted by row-range write intent that table-level
    /// first-committer-wins validation would have aborted.
    pub conflicts_avoided: u64,
}

impl CampaignMetrics {
    /// Validity rate of oracle test cases (Table 4).
    pub fn validity_rate(&self) -> f64 {
        if self.test_cases == 0 {
            return 0.0;
        }
        self.valid_test_cases as f64 / self.test_cases as f64
    }

    /// Accumulates another campaign's metrics into this one (used by the
    /// fleet runner to report fleet-wide totals).
    pub fn merge(&mut self, other: &CampaignMetrics) {
        self.ddl_statements += other.ddl_statements;
        self.ddl_successes += other.ddl_successes;
        self.test_cases += other.test_cases;
        self.valid_test_cases += other.valid_test_cases;
        self.detected_bug_cases += other.detected_bug_cases;
        self.prioritized_bugs += other.prioritized_bugs;
        self.deduplicated_bugs += other.deduplicated_bugs;
        self.isolation_schedules += other.isolation_schedules;
        self.conflict_aborts += other.conflict_aborts;
        self.txn_begins += other.txn_begins;
        self.tables_snapshotted += other.tables_snapshotted;
        self.tables_cow_cloned += other.tables_cow_cloned;
        self.conflicts_avoided += other.conflicts_avoided;
    }

    /// Fraction of isolation-oracle schedules in which at least one commit
    /// was rejected by conflict detection. (Schedules can abort more than
    /// once only with more than two sessions, so this is a rate in
    /// practice.)
    pub fn conflict_abort_rate(&self) -> f64 {
        if self.isolation_schedules == 0 {
            return 0.0;
        }
        self.conflict_aborts as f64 / self.isolation_schedules as f64
    }

    /// Validity rate of DDL/DML statements.
    pub fn ddl_validity_rate(&self) -> f64 {
        if self.ddl_statements == 0 {
            return 0.0;
        }
        self.ddl_successes as f64 / self.ddl_statements as f64
    }

    /// Fraction of snapshotted table versions that were actually
    /// deep-cloned (lower is better; `BEGIN` work CoW storage avoided is
    /// `1 - rate`).
    pub fn cow_clone_rate(&self) -> f64 {
        if self.tables_snapshotted == 0 {
            return 0.0;
        }
        self.tables_cow_cloned as f64 / self.tables_snapshotted as f64
    }
}

/// The report produced by a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// The DBMS the campaign ran against.
    pub dbms_name: String,
    /// Aggregate metrics.
    pub metrics: CampaignMetrics,
    /// The prioritized (and, if configured, reduced) bug reports.
    pub reports: Vec<BugReport>,
    /// The prioritized bug-inducing cases in replayable form.
    pub prioritized_cases: Vec<ReducibleCase>,
    /// The prioritized transactional cases flagged by the rollback oracle,
    /// in replayable form.
    pub txn_cases: Vec<TxnCase>,
    /// The prioritized concurrent schedules flagged by the isolation
    /// oracle, in replayable form (deterministic interleavings included).
    pub schedule_cases: Vec<ScheduleCase>,
    /// Validity-rate series sampled every `sample_every` test cases (used to
    /// show the convergence behaviour described in Section 5.4).
    pub validity_series: Vec<f64>,
}

/// A running testing campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    /// The adaptive generator (exposed so experiments can inspect the
    /// learned profile after a run).
    pub generator: AdaptiveGenerator,
    prioritizer: BugPrioritizer,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Campaign {
        let generator = AdaptiveGenerator::new(config.seed, config.generator.clone());
        Campaign {
            config,
            generator,
            prioritizer: BugPrioritizer::new(),
        }
    }

    /// Creates a campaign whose generator starts from a pre-built generator
    /// (e.g. a perfect-knowledge baseline or a loaded profile).
    pub fn with_generator(config: CampaignConfig, generator: AdaptiveGenerator) -> Campaign {
        Campaign {
            config,
            generator,
            prioritizer: BugPrioritizer::new(),
        }
    }

    /// Runs the campaign against a DBMS and produces a report.
    pub fn run(&mut self, conn: &mut dyn DbmsConnection) -> CampaignReport {
        let mut report = CampaignReport {
            dbms_name: conn.name().to_string(),
            ..CampaignReport::default()
        };
        let storage_before = conn.storage_metrics().unwrap_or_default();
        let quirks = conn.quirks();
        let sample_every = 50u64;
        let mut oracle_index = 0usize;

        for _ in 0..self.config.databases {
            conn.reset();
            self.generator.reset_schema();
            let mut setup_log: Vec<String> = Vec::new();

            // Phase 1: build the database state.
            for _ in 0..self.config.ddl_per_database {
                let generated = self.generator.generate_ddl_statement();
                // AST fast path: the generator already holds the typed
                // statement, so backends that can consume it skip the
                // render→lex→parse round-trip. `generated.sql` is still used
                // for the replayable setup log.
                let outcome = conn.execute_ast(&generated.statement);
                let success = outcome.is_success();
                report.metrics.ddl_statements += 1;
                if success {
                    report.metrics.ddl_successes += 1;
                    self.generator.apply_success(&generated.statement);
                    setup_log.push(generated.sql.clone());
                    if let Statement::Insert(insert) = &generated.statement {
                        if quirks.requires_refresh {
                            let refresh = format!("REFRESH TABLE {}", insert.table);
                            if conn.execute(&refresh).is_success() {
                                setup_log.push(refresh);
                            }
                        }
                        if quirks.requires_commit {
                            let _ = conn.execute("COMMIT");
                        }
                    }
                }
                self.generator
                    .record_outcome(&generated.features, FeatureKind::DdlDml, success);
            }

            // Phase 2: issue oracle-checked test cases.
            for _ in 0..self.config.queries_per_database {
                let mut oracle = self.config.oracles[oracle_index % self.config.oracles.len()];
                oracle_index += 1;
                if oracle == OracleKind::Rollback {
                    if let Some(session) = self.generator.generate_txn_session() {
                        self.run_txn_case(conn, &session, &setup_log, &mut report, sample_every);
                        continue;
                    }
                    // No transactional session available (no base table yet,
                    // or the learned profile says the dialect rejects
                    // transactions): fall back to a TLP-checked query so the
                    // slot is not wasted.
                    oracle = OracleKind::Tlp;
                }
                if oracle == OracleKind::Isolation {
                    if let Some(schedule) = self.generator.generate_schedule() {
                        self.run_schedule_case(
                            conn,
                            &schedule,
                            &setup_log,
                            &mut report,
                            sample_every,
                        );
                        continue;
                    }
                    // Same degradation rule as the rollback oracle.
                    oracle = OracleKind::Tlp;
                }
                let Some(query) = self.generator.generate_query() else {
                    break;
                };
                let outcome = match oracle {
                    OracleKind::Tlp => check_tlp(
                        conn,
                        &query.select,
                        &query.predicate,
                        &query.features,
                        &setup_log,
                    ),
                    OracleKind::NoRec => check_norec(
                        conn,
                        &query.select,
                        &query.predicate,
                        &query.features,
                        &setup_log,
                    ),
                    // Rollback/isolation slots either ran above or degraded
                    // to TLP.
                    OracleKind::Rollback | OracleKind::Isolation => {
                        unreachable!("stateful oracle slots are handled above")
                    }
                };
                report.metrics.test_cases += 1;
                let valid = outcome.is_valid();
                if valid {
                    report.metrics.valid_test_cases += 1;
                }
                self.generator
                    .record_outcome(&query.features, FeatureKind::Query, valid);
                if report.metrics.test_cases.is_multiple_of(sample_every) {
                    report.validity_series.push(report.metrics.validity_rate());
                }
                if let OracleOutcome::Bug(bug) = outcome {
                    report.metrics.detected_bug_cases += 1;
                    self.handle_bug(
                        conn,
                        *bug,
                        &query.features,
                        &setup_log,
                        &query,
                        oracle,
                        &mut report,
                    );
                }
            }
        }
        report.metrics.prioritized_bugs = self.prioritizer.stats().prioritized as u64;
        report.metrics.deduplicated_bugs = self.prioritizer.stats().deduplicated as u64;
        if let Some(after) = conn.storage_metrics() {
            let delta = after.since(&storage_before);
            report.metrics.txn_begins = delta.txn_begins;
            report.metrics.tables_snapshotted = delta.tables_snapshotted;
            report.metrics.tables_cow_cloned = delta.tables_cow_cloned;
            report.metrics.conflicts_avoided = delta.conflicts_avoided;
        }
        report
    }

    /// Runs one rollback-oracle test case: a generated transactional
    /// session checked for the rollback/commit identities, with the same
    /// metrics, feedback, prioritization and reduction treatment the
    /// single-query oracles get.
    fn run_txn_case(
        &mut self,
        conn: &mut dyn DbmsConnection,
        session: &GeneratedTxnSession,
        setup_log: &[String],
        report: &mut CampaignReport,
        sample_every: u64,
    ) {
        let outcome = check_rollback(
            conn,
            &session.table,
            &session.statements,
            &session.features,
            setup_log,
        );
        report.metrics.test_cases += 1;
        let valid = outcome.is_valid();
        if valid {
            report.metrics.valid_test_cases += 1;
        }
        self.generator
            .record_outcome(&session.features, FeatureKind::Query, valid);
        if report.metrics.test_cases.is_multiple_of(sample_every) {
            report.validity_series.push(report.metrics.validity_rate());
        }
        let OracleOutcome::Bug(bug) = outcome else {
            return;
        };
        report.metrics.detected_bug_cases += 1;
        match self.prioritizer.classify(&session.features) {
            PriorityDecision::PotentialDuplicate => {}
            PriorityDecision::New => {
                let mut case = TxnCase {
                    setup: setup_log.to_vec(),
                    table: session.table.clone(),
                    statements: session.statements.clone(),
                    features: session.features.clone(),
                };
                let mut final_bug = *bug;
                if self.config.reduce_bugs {
                    let (reduced, _stats) = {
                        let mut reducer = BugReducer::new(conn, self.config.max_reduction_checks);
                        reducer.reduce_txn(&case)
                    };
                    case = reduced;
                    final_bug.setup = case.setup.clone();
                    // Re-render the reduced session with the oracle's
                    // transaction bracketing and probes, so the report stays
                    // replayable verbatim.
                    final_bug.queries = case.replay_script();
                    // Reduction left the DBMS in a reduced-setup state;
                    // rebuild the campaign's current state.
                    conn.reset();
                    for sql in setup_log {
                        let _ = conn.execute(sql);
                    }
                }
                report.reports.push(final_bug);
                report.txn_cases.push(case);
            }
        }
    }

    /// Runs one isolation-oracle test case: a generated concurrent schedule
    /// checked against its serial replays, with the same metrics, feedback,
    /// prioritization and reduction treatment the other oracles get.
    /// Conflict-aborted commits count toward the conflict-abort rate, never
    /// toward invalidity or bugs.
    fn run_schedule_case(
        &mut self,
        conn: &mut dyn DbmsConnection,
        schedule: &GeneratedSchedule,
        setup_log: &[String],
        report: &mut CampaignReport,
        sample_every: u64,
    ) {
        let verdict = check_isolation(conn, &schedule.schedule, &schedule.features, setup_log);
        report.metrics.test_cases += 1;
        report.metrics.isolation_schedules += 1;
        report.metrics.conflict_aborts += verdict.conflict_aborts;
        let valid = verdict.outcome.is_valid();
        if valid {
            report.metrics.valid_test_cases += 1;
        }
        self.generator
            .record_outcome(&schedule.features, FeatureKind::Query, valid);
        if report.metrics.test_cases.is_multiple_of(sample_every) {
            report.validity_series.push(report.metrics.validity_rate());
        }
        let OracleOutcome::Bug(bug) = verdict.outcome else {
            return;
        };
        report.metrics.detected_bug_cases += 1;
        match self.prioritizer.classify(&schedule.features) {
            PriorityDecision::PotentialDuplicate => {}
            PriorityDecision::New => {
                let mut case = ScheduleCase {
                    setup: setup_log.to_vec(),
                    schedule: schedule.schedule.clone(),
                    features: schedule.features.clone(),
                };
                let mut final_bug = *bug;
                if self.config.reduce_bugs {
                    let (reduced, _stats) = {
                        let mut reducer = BugReducer::new(conn, self.config.max_reduction_checks);
                        reducer.reduce_schedule(&case)
                    };
                    case = reduced;
                    final_bug.setup = case.setup.clone();
                    final_bug.queries = case.schedule.replay_script();
                    // Reduction left the DBMS in a reduced-setup state;
                    // rebuild the campaign's current state.
                    conn.reset();
                    for sql in setup_log {
                        let _ = conn.execute(sql);
                    }
                }
                report.reports.push(final_bug);
                report.schedule_cases.push(case);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_bug(
        &mut self,
        conn: &mut dyn DbmsConnection,
        bug: BugReport,
        features: &FeatureSet,
        setup_log: &[String],
        query: &crate::generator::GeneratedQuery,
        oracle: OracleKind,
        report: &mut CampaignReport,
    ) {
        match self.prioritizer.classify(features) {
            PriorityDecision::PotentialDuplicate => {}
            PriorityDecision::New => {
                let mut case = ReducibleCase {
                    setup: setup_log.to_vec(),
                    query: query.select.clone(),
                    predicate: query.predicate.clone(),
                    oracle,
                    features: features.clone(),
                };
                let mut final_bug = bug;
                if self.config.reduce_bugs {
                    let (reduced, _stats) = {
                        let mut reducer = BugReducer::new(conn, self.config.max_reduction_checks);
                        reducer.reduce(&case)
                    };
                    case = reduced;
                    final_bug.setup = case.setup.clone();
                    // Re-render the (possibly reduced) queries for the report.
                    final_bug.queries = vec![case.query.to_string()];
                    // Reduction resets the DBMS; rebuild the current state so
                    // subsequent test cases keep running against it.
                    conn.reset();
                    for sql in setup_log {
                        let _ = conn.execute(sql);
                    }
                }
                report.reports.push(final_bug);
                report.prioritized_cases.push(case);
            }
        }
    }
}

/// Replays a bug-inducing test case's statements on another DBMS and returns
/// the fraction that executed successfully — the quantity plotted in the
/// Figure 6 heatmap (the SQL feature study).
pub fn replay_validity(conn: &mut dyn DbmsConnection, case: &ReducibleCase) -> f64 {
    conn.reset();
    let mut total = 0usize;
    let mut ok = 0usize;
    for sql in &case.setup {
        total += 1;
        if conn.execute(sql).is_success() {
            ok += 1;
        }
    }
    total += 1;
    if conn.query_ast(&case.query).is_ok() {
        ok += 1;
    }
    if total == 0 {
        return 0.0;
    }
    ok as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbms::{DialectQuirks, QueryResult, StatementOutcome};
    use sql_ast::Value;

    /// A minimal scriptable DBMS: accepts all DDL, answers every query with
    /// a fixed single row, and (optionally) "loses" rows for NOT-queries to
    /// simulate a logic bug.
    struct ToyDbms {
        buggy: bool,
        reject_nullsafe: bool,
    }

    impl DbmsConnection for ToyDbms {
        fn name(&self) -> &str {
            "toy"
        }
        fn execute(&mut self, sql: &str) -> StatementOutcome {
            if self.reject_nullsafe && sql.contains("<=>") {
                StatementOutcome::Failure("operator <=> not supported".into())
            } else {
                StatementOutcome::Success
            }
        }
        fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
            if self.reject_nullsafe && sql.contains("<=>") {
                return Err("operator <=> not supported".into());
            }
            // The toy "table" is empty, so a sound DBMS returns no rows for
            // any query; the buggy variant spuriously returns a row for
            // negated partitions, which TLP flags as an inconsistency.
            let rows = if self.buggy && sql.contains("(NOT ") {
                vec![vec![Value::Integer(1)]]
            } else {
                vec![]
            };
            Ok(QueryResult {
                columns: vec!["c0".into()],
                rows,
            })
        }
        fn reset(&mut self) {}
        fn quirks(&self) -> DialectQuirks {
            DialectQuirks::default()
        }
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 3,
            databases: 1,
            ddl_per_database: 6,
            queries_per_database: 40,
            oracles: vec![OracleKind::Tlp],
            reduce_bugs: false,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_and_reports_metrics() {
        let mut campaign = Campaign::new(small_config());
        let mut conn = ToyDbms {
            buggy: false,
            reject_nullsafe: false,
        };
        let report = campaign.run(&mut conn);
        assert_eq!(report.dbms_name, "toy");
        assert_eq!(report.metrics.ddl_statements, 6);
        assert!(report.metrics.test_cases > 0);
        assert!(report.metrics.validity_rate() > 0.0);
        assert_eq!(report.metrics.detected_bug_cases, 0);
    }

    #[test]
    fn campaign_detects_and_prioritizes_bugs() {
        let mut campaign = Campaign::new(small_config());
        let mut conn = ToyDbms {
            buggy: true,
            reject_nullsafe: false,
        };
        let report = campaign.run(&mut conn);
        assert!(report.metrics.detected_bug_cases > 0);
        assert!(report.metrics.prioritized_bugs > 0);
        assert!(report.metrics.prioritized_bugs <= report.metrics.detected_bug_cases);
        assert_eq!(
            report.metrics.prioritized_bugs + report.metrics.deduplicated_bugs,
            report.metrics.detected_bug_cases
        );
        assert_eq!(report.reports.len() as u64, report.metrics.prioritized_bugs);
    }

    #[test]
    fn feedback_learns_to_avoid_rejected_operator() {
        let mut config = small_config();
        config.queries_per_database = 600;
        config.generator.update_interval = 25;
        config.generator.stats.min_attempts = 10;
        // With a few hundred test cases the Bayesian test cannot push below
        // the paper's 1% threshold (that needs ~300 observations per
        // feature), so this test uses a higher threshold, as a user of the
        // platform would for short runs.
        config.generator.stats.query_threshold = 0.2;
        let mut campaign = Campaign::new(config);
        let mut conn = ToyDbms {
            buggy: false,
            reject_nullsafe: true,
        };
        let report = campaign.run(&mut conn);
        // After the campaign the null-safe operator must be suppressed.
        campaign.generator.refresh_suppression();
        assert!(campaign
            .generator
            .suppressed_query_features()
            .iter()
            .any(|f| f.name() == "OP_NULLSAFE_EQ"));
        // And the validity rate should have improved over the campaign.
        let series = &report.validity_series;
        assert!(series.len() >= 2);
        assert!(series.last().unwrap() >= series.first().unwrap());
    }

    #[test]
    fn replay_validity_counts_successful_statements() {
        let case = ReducibleCase {
            setup: vec!["CREATE TABLE t0 (c0 INT)".into(), "SELECT 1 <=> 1".into()],
            query: sql_ast::Select::from_table(
                "t0",
                vec![sql_ast::SelectItem::expr(sql_ast::Expr::column("c0"))],
            ),
            predicate: sql_ast::Expr::boolean(true),
            oracle: OracleKind::Tlp,
            features: FeatureSet::new(),
        };
        let mut conn = ToyDbms {
            buggy: false,
            reject_nullsafe: true,
        };
        let validity = replay_validity(&mut conn, &case);
        assert!((validity - 2.0 / 3.0).abs() < 1e-9);
    }
}
