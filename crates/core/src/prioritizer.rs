//! Feature-set based bug prioritization (Section 3, Figure 4).
//!
//! SQLancer++ can trigger tens of thousands of bug-inducing test cases per
//! hour on an untested system (Table 5). The prioritizer keeps the feature
//! sets of previously *prioritized* (i.e. kept-for-reporting) test cases; a
//! new bug-inducing test case is marked a **potential duplicate** when some
//! previously kept feature set is a subset of its feature set — the
//! intuition being that the earlier, smaller feature combination is likely
//! the same root cause.

use crate::feature::FeatureSet;

/// The prioritizer's verdict for one bug-inducing test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityDecision {
    /// No previously kept feature set is a subset: report this one.
    New,
    /// A previously kept feature set is contained in this one: hold it back
    /// until the earlier bugs are fixed.
    PotentialDuplicate,
}

/// Statistics kept by the prioritizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrioritizerStats {
    /// Total bug-inducing test cases seen.
    pub seen: usize,
    /// Test cases prioritized (kept for reporting).
    pub prioritized: usize,
    /// Test cases marked as potential duplicates.
    pub deduplicated: usize,
}

/// The bug prioritizer.
#[derive(Debug, Clone, Default)]
pub struct BugPrioritizer {
    kept: Vec<FeatureSet>,
    stats: PrioritizerStats,
    exact_only: bool,
}

impl BugPrioritizer {
    /// Creates an empty prioritizer using the paper's subset rule.
    pub fn new() -> BugPrioritizer {
        BugPrioritizer::default()
    }

    /// Creates a prioritizer that only deduplicates *exactly equal* feature
    /// sets. Used as an ablation baseline (DESIGN.md §4.4): it keeps far
    /// more cases than the subset rule.
    pub fn exact_match_only() -> BugPrioritizer {
        BugPrioritizer {
            exact_only: true,
            ..BugPrioritizer::default()
        }
    }

    /// Classifies a bug-inducing test case and updates the kept sets.
    pub fn classify(&mut self, features: &FeatureSet) -> PriorityDecision {
        self.stats.seen += 1;
        let duplicate = if self.exact_only {
            self.kept.iter().any(|s| s == features)
        } else {
            self.kept.iter().any(|s| s.is_subset_of(features))
        };
        if duplicate {
            self.stats.deduplicated += 1;
            PriorityDecision::PotentialDuplicate
        } else {
            self.kept.push(features.clone());
            self.stats.prioritized += 1;
            PriorityDecision::New
        }
    }

    /// Reconstructs a subset-rule prioritizer from checkpointed state.
    ///
    /// Both parts must be carried: the kept sets drive future
    /// classifications, and the statistics cannot be recomputed from them
    /// (deduplicated cases' feature sets are not retained anywhere).
    pub fn restore(kept: Vec<FeatureSet>, stats: PrioritizerStats) -> BugPrioritizer {
        BugPrioritizer {
            kept,
            stats,
            exact_only: false,
        }
    }

    /// The feature sets currently kept for reporting.
    pub fn kept_sets(&self) -> &[FeatureSet] {
        &self.kept
    }

    /// Running statistics.
    pub fn stats(&self) -> PrioritizerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;

    fn set(names: &[&str]) -> FeatureSet {
        names.iter().map(|n| Feature::new(*n)).collect()
    }

    #[test]
    fn figure_4_scenario() {
        // ① {NULLIF, !=} is new; ② and ③ contain it → duplicates;
        // ④ {CASE, !=} is new again.
        let mut prioritizer = BugPrioritizer::new();
        assert_eq!(
            prioritizer.classify(&set(&["FN_NULLIF", "OP_NEQ"])),
            PriorityDecision::New
        );
        assert_eq!(
            prioritizer.classify(&set(&["FN_NULLIF", "OP_NEQ", "OP_ADD"])),
            PriorityDecision::PotentialDuplicate
        );
        assert_eq!(
            prioritizer.classify(&set(&["FN_NULLIF", "OP_NEQ", "JOIN_INNER"])),
            PriorityDecision::PotentialDuplicate
        );
        assert_eq!(
            prioritizer.classify(&set(&["CLAUSE_CASE", "OP_NEQ"])),
            PriorityDecision::New
        );
        let stats = prioritizer.stats();
        assert_eq!(stats.seen, 4);
        assert_eq!(stats.prioritized, 2);
        assert_eq!(stats.deduplicated, 2);
    }

    #[test]
    fn subset_rule_keeps_fewer_than_exact_rule() {
        let cases = [
            set(&["A", "B"]),
            set(&["A", "B", "C"]),
            set(&["A", "B", "D"]),
            set(&["A", "B"]),
            set(&["E"]),
        ];
        let mut subset = BugPrioritizer::new();
        let mut exact = BugPrioritizer::exact_match_only();
        for case in &cases {
            subset.classify(case);
            exact.classify(case);
        }
        assert_eq!(subset.stats().prioritized, 2);
        assert_eq!(exact.stats().prioritized, 4);
        assert!(subset.stats().prioritized < exact.stats().prioritized);
    }

    #[test]
    fn identical_sets_are_duplicates_under_both_rules() {
        let mut subset = BugPrioritizer::new();
        let mut exact = BugPrioritizer::exact_match_only();
        for p in [&mut subset, &mut exact] {
            assert_eq!(p.classify(&set(&["X", "Y"])), PriorityDecision::New);
            assert_eq!(
                p.classify(&set(&["X", "Y"])),
                PriorityDecision::PotentialDuplicate
            );
        }
    }

    #[test]
    fn empty_feature_set_matches_everything_afterwards() {
        let mut prioritizer = BugPrioritizer::new();
        assert_eq!(
            prioritizer.classify(&FeatureSet::new()),
            PriorityDecision::New
        );
        assert_eq!(
            prioritizer.classify(&set(&["ANYTHING"])),
            PriorityDecision::PotentialDuplicate
        );
    }
}
