//! Persistence of the learned feature profile.
//!
//! Figure 5 notes that the probabilities learned in step ④ "can be persisted
//! in a file and loaded in step ① of future executions". The profile format
//! here is a small line-based text format (no external dependencies):
//!
//! ```text
//! # sqlancer++ learned profile v1
//! Q <feature> <attempts> <successes> <consecutive_failures>
//! D <feature> <attempts> <successes> <consecutive_failures>
//! ```

use crate::feature::Feature;
use crate::stats::{FeatureCounts, FeatureKind, FeatureStats};
use std::fmt::Write as _;
use std::path::Path;

/// Serialises learned feature statistics to the profile text format.
pub fn profile_to_string(stats: &FeatureStats) -> String {
    let mut out = String::from("# sqlancer++ learned profile v1\n");
    for (kind_tag, iter) in [
        ("Q", stats.iter_query().collect::<Vec<_>>()),
        ("D", stats.iter_ddl().collect::<Vec<_>>()),
    ] {
        for (feature, counts) in iter {
            let _ = writeln!(
                out,
                "{kind_tag} {} {} {} {}",
                feature.name(),
                counts.attempts,
                counts.successes,
                counts.consecutive_failures
            );
        }
    }
    out
}

/// Parses a profile produced by [`profile_to_string`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn profile_from_string(text: &str) -> Result<FeatureStats, String> {
    let mut stats = FeatureStats::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 5 {
            return Err(format!(
                "line {}: expected 5 fields, got {}",
                line_no + 1,
                parts.len()
            ));
        }
        let kind = match parts[0] {
            "Q" => FeatureKind::Query,
            "D" => FeatureKind::DdlDml,
            other => return Err(format!("line {}: unknown category '{other}'", line_no + 1)),
        };
        let parse = |s: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: malformed number '{s}'", line_no + 1))
        };
        let counts = FeatureCounts {
            attempts: parse(parts[2])?,
            successes: parse(parts[3])?,
            consecutive_failures: parse(parts[4])?,
        };
        if counts.successes > counts.attempts {
            return Err(format!("line {}: successes exceed attempts", line_no + 1));
        }
        stats.load_counts(Feature::new(parts[1]), kind, counts);
    }
    Ok(stats)
}

/// Saves a profile to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_profile(stats: &FeatureStats, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, profile_to_string(stats))
}

/// Loads a profile from a file.
///
/// # Errors
///
/// Propagates I/O errors and format errors.
pub fn load_profile(path: &Path) -> Result<FeatureStats, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    profile_from_string(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureSet;

    #[test]
    fn profile_round_trips() {
        let mut stats = FeatureStats::new();
        let features: FeatureSet = [Feature::new("OP_EQ"), Feature::new("FN_SIN")]
            .into_iter()
            .collect();
        for i in 0..50 {
            stats.record(&features, FeatureKind::Query, i % 3 != 0);
        }
        stats.record(&features, FeatureKind::DdlDml, false);
        let text = profile_to_string(&stats);
        let loaded = profile_from_string(&text).unwrap();
        assert_eq!(
            loaded.counts(&Feature::new("OP_EQ"), FeatureKind::Query),
            stats.counts(&Feature::new("OP_EQ"), FeatureKind::Query)
        );
        assert_eq!(
            loaded.counts(&Feature::new("FN_SIN"), FeatureKind::DdlDml),
            stats.counts(&Feature::new("FN_SIN"), FeatureKind::DdlDml)
        );
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(profile_from_string("Q OP_EQ 1 2").is_err());
        assert!(profile_from_string("X OP_EQ 1 1 0").is_err());
        assert!(profile_from_string("Q OP_EQ one 1 0").is_err());
        assert!(
            profile_from_string("Q OP_EQ 1 2 0").is_err(),
            "successes > attempts"
        );
        assert!(profile_from_string("# only a comment\n").is_ok());
    }
}
