//! The internal schema model.
//!
//! SQLancer++ never queries `information_schema`, `sqlite_master` or any
//! other DBMS-specific metadata interface (challenge C2 of the paper).
//! Instead it maintains its own model of the schema: whenever a generated
//! DDL statement *succeeds* on the DBMS under test, the corresponding object
//! is added to the model (Figure 3); when it fails, the model is left
//! untouched.

use rand::seq::SliceRandom;
use rand::Rng;
use sql_ast::{DataType, Statement};

/// A column in the schema model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelColumn {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether the column is (directly or via PK) NOT NULL.
    pub not_null: bool,
    /// Whether the column is part of the primary key.
    pub primary_key: bool,
}

/// A table (or view) in the schema model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelTable {
    /// Object name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<ModelColumn>,
    /// Whether this object is a view (views are not insert targets).
    pub is_view: bool,
    /// Approximate number of rows successfully inserted so far.
    pub approx_rows: usize,
}

impl ModelTable {
    /// Names of all columns.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// An index in the schema model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelIndex {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed columns.
    pub columns: Vec<String>,
    /// Whether the index is unique.
    pub unique: bool,
}

/// The internal model of the database schema (Figure 3 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaModel {
    tables: Vec<ModelTable>,
    indexes: Vec<ModelIndex>,
    name_counter: usize,
}

impl SchemaModel {
    /// Creates an empty model.
    pub fn new() -> SchemaModel {
        SchemaModel::default()
    }

    /// Reconstructs a model from previously captured parts (a campaign
    /// checkpoint). The `name_counter` must be carried verbatim: it advances
    /// even for DDL the DBMS rejected and for query-time subquery aliases,
    /// so it cannot be recomputed from the surviving objects.
    pub fn restore(
        tables: Vec<ModelTable>,
        indexes: Vec<ModelIndex>,
        name_counter: usize,
    ) -> SchemaModel {
        SchemaModel {
            tables,
            indexes,
            name_counter,
        }
    }

    /// The monotone counter behind [`SchemaModel::free_name`].
    pub fn name_counter(&self) -> usize {
        self.name_counter
    }

    /// All tables and views.
    pub fn tables(&self) -> &[ModelTable] {
        &self.tables
    }

    /// All base tables (no views).
    pub fn base_tables(&self) -> Vec<&ModelTable> {
        self.tables.iter().filter(|t| !t.is_view).collect()
    }

    /// All indexes.
    pub fn indexes(&self) -> &[ModelIndex] {
        &self.indexes
    }

    /// Looks up a table or view by name.
    pub fn table(&self, name: &str) -> Option<&ModelTable> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Number of tables and views in the model.
    pub fn object_count(&self) -> usize {
        self.tables.len() + self.indexes.len()
    }

    /// Returns a fresh object name with the given prefix (`t0`, `t1`, ...,
    /// `v0`, `i0`, ... share one counter so names never collide).
    pub fn free_name(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.name_counter);
        self.name_counter += 1;
        name
    }

    /// Picks a random table or view.
    pub fn random_table<R: Rng>(&self, rng: &mut R) -> Option<&ModelTable> {
        self.tables.choose(rng)
    }

    /// Picks a random base table (insertable).
    pub fn random_base_table<R: Rng>(&self, rng: &mut R) -> Option<&ModelTable> {
        let bases = self.base_tables();
        bases.choose(rng).copied()
    }

    /// Picks a random column of a table.
    pub fn random_column<'a, R: Rng>(
        &'a self,
        table: &'a ModelTable,
        rng: &mut R,
    ) -> Option<&'a ModelColumn> {
        table.columns.choose(rng)
    }

    /// Applies a *successfully executed* statement to the model. This is the
    /// only way the model changes, mirroring the paper's "add the object to
    /// the model only if the DBMS reports success" rule.
    pub fn apply_success(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable(create) => {
                if self.table(&create.name).is_some() {
                    return;
                }
                let mut columns: Vec<ModelColumn> = create
                    .columns
                    .iter()
                    .map(|c| ModelColumn {
                        name: c.name.clone(),
                        data_type: c.data_type,
                        not_null: c.is_not_null(),
                        primary_key: c.has_primary_key(),
                    })
                    .collect();
                for constraint in &create.constraints {
                    if let sql_ast::TableConstraint::PrimaryKey(cols) = constraint {
                        for col in cols {
                            if let Some(c) = columns
                                .iter_mut()
                                .find(|c| c.name.eq_ignore_ascii_case(col))
                            {
                                c.primary_key = true;
                                c.not_null = true;
                            }
                        }
                    }
                }
                self.tables.push(ModelTable {
                    name: create.name.clone(),
                    columns,
                    is_view: false,
                    approx_rows: 0,
                });
            }
            Statement::CreateView(create) => {
                if self.table(&create.name).is_some() {
                    return;
                }
                // Column types of a view are unknown to the model; we record
                // names (either declared or positional) and treat types as
                // Integer for generation purposes, which mirrors the paper's
                // conservative handling of view columns.
                let columns: Vec<ModelColumn> = if create.columns.is_empty() {
                    (0..create.query.projections.len())
                        .map(|i| ModelColumn {
                            name: format!("c{i}"),
                            data_type: DataType::Integer,
                            not_null: false,
                            primary_key: false,
                        })
                        .collect()
                } else {
                    create
                        .columns
                        .iter()
                        .map(|name| ModelColumn {
                            name: name.clone(),
                            data_type: DataType::Integer,
                            not_null: false,
                            primary_key: false,
                        })
                        .collect()
                };
                self.tables.push(ModelTable {
                    name: create.name.clone(),
                    columns,
                    is_view: true,
                    approx_rows: 0,
                });
            }
            Statement::CreateIndex(create) => {
                self.indexes.push(ModelIndex {
                    name: create.name.clone(),
                    table: create.table.clone(),
                    columns: create.columns.clone(),
                    unique: create.unique,
                });
            }
            Statement::Insert(insert) => {
                if let Some(t) = self
                    .tables
                    .iter_mut()
                    .find(|t| t.name.eq_ignore_ascii_case(&insert.table))
                {
                    t.approx_rows += insert.values.len();
                }
            }
            Statement::Delete(delete) => {
                if let Some(t) = self
                    .tables
                    .iter_mut()
                    .find(|t| t.name.eq_ignore_ascii_case(&delete.table))
                {
                    t.approx_rows = 0;
                }
            }
            Statement::Drop { kind, name, .. } => match kind {
                sql_ast::DropKind::Table | sql_ast::DropKind::View => {
                    self.tables.retain(|t| !t.name.eq_ignore_ascii_case(name));
                    self.indexes.retain(|i| !i.table.eq_ignore_ascii_case(name));
                }
                sql_ast::DropKind::Index => {
                    self.indexes.retain(|i| !i.name.eq_ignore_ascii_case(name));
                }
            },
            _ => {}
        }
    }

    /// Clears the model (used when the DBMS is reset between test cases).
    pub fn clear(&mut self) {
        self.tables.clear();
        self.indexes.clear();
        self.name_counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql_parser::parse_statement;

    fn apply(model: &mut SchemaModel, sql: &str) {
        model.apply_success(&parse_statement(sql).unwrap());
    }

    #[test]
    fn model_follows_successful_ddl_only() {
        // Mirrors Figure 3: the failed ALTER in the paper never reaches
        // apply_success, so the model keeps the original column.
        let mut model = SchemaModel::new();
        apply(&mut model, "CREATE TABLE t0 (c0 INT, PRIMARY KEY (c0))");
        apply(&mut model, "CREATE VIEW v0 (c0) AS SELECT c0 + 1 FROM t0");
        assert_eq!(model.tables().len(), 2);
        let t0 = model.table("t0").unwrap();
        assert!(t0.columns[0].primary_key);
        assert!(model.table("v0").unwrap().is_view);
        assert_eq!(model.base_tables().len(), 1);
    }

    #[test]
    fn insert_and_delete_track_approximate_rows() {
        let mut model = SchemaModel::new();
        apply(&mut model, "CREATE TABLE t0 (c0 INT)");
        apply(&mut model, "INSERT INTO t0 (c0) VALUES (1), (2)");
        assert_eq!(model.table("t0").unwrap().approx_rows, 2);
        apply(&mut model, "DELETE FROM t0");
        assert_eq!(model.table("t0").unwrap().approx_rows, 0);
    }

    #[test]
    fn drop_removes_objects_and_dependent_indexes() {
        let mut model = SchemaModel::new();
        apply(&mut model, "CREATE TABLE t0 (c0 INT)");
        apply(&mut model, "CREATE INDEX i0 ON t0(c0)");
        assert_eq!(model.indexes().len(), 1);
        apply(&mut model, "DROP TABLE t0");
        assert!(model.tables().is_empty());
        assert!(model.indexes().is_empty());
    }

    #[test]
    fn free_names_never_collide() {
        let mut model = SchemaModel::new();
        let a = model.free_name("t");
        let b = model.free_name("t");
        let c = model.free_name("v");
        assert_ne!(a, b);
        assert!(!c.ends_with(&a[1..]) || a[1..] != c[1..]);
    }

    #[test]
    fn random_pickers_respect_view_distinction() {
        let mut model = SchemaModel::new();
        apply(&mut model, "CREATE TABLE t0 (c0 INT)");
        apply(&mut model, "CREATE VIEW v0 (c0) AS SELECT c0 FROM t0");
        let mut rng = rand::rngs::mock::StepRng::new(0, 7);
        for _ in 0..10 {
            let t = model.random_base_table(&mut rng).unwrap();
            assert_eq!(t.name, "t0");
        }
        assert!(model.random_table(&mut rng).is_some());
    }
}
