//! The adaptive SQL statement generator (Section 4, Figure 5).
//!
//! The generator produces random DDL/DML statements and queries over its own
//! [`SchemaModel`], records the [`FeatureSet`] used by each statement, and —
//! when feedback is enabled — suppresses features that the Bayesian support
//! model ([`FeatureStats`]) deems unsupported. Probability mass from
//! suppressed alternatives is redistributed uniformly over the remaining
//! ones, which is exactly the update rule of step ④ in Figure 5.
//!
//! Three operating modes reproduce the paper's experimental arms:
//!
//! * **Adaptive** (feedback on) — the paper's *SQLancer++*;
//! * **Random** (feedback off) — the paper's *SQLancer++ Rand*;
//! * **Perfect knowledge** — the generator is told the dialect's supported
//!   feature set up front, standing in for the hand-written, DBMS-specific
//!   generators of *SQLancer*.

use crate::feature::{Feature, FeatureSet};
use crate::oracle::{Schedule, SessionScript};
use crate::schema::{ModelTable, SchemaModel};
use crate::stats::{FeatureKind, FeatureStats, StatsConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sql_ast::{
    AggregateFunction, BeginMode, BinaryOp, CaseBranch, ColumnConstraint, ColumnDef, CreateIndex,
    CreateTable, CreateView, DataType, Expr, Insert, Join, JoinType, OrderByItem, ScalarFunction,
    Select, SelectItem, SortOrder, Statement, TableConstraint, TableFactor, TableWithJoins,
    UnaryOp,
};
use std::collections::BTreeSet;

/// Tuning knobs of the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Maximum expression depth (the paper uses 3).
    pub max_expr_depth: usize,
    /// Maximum number of base tables to create per database (paper: 2).
    pub max_tables: usize,
    /// Maximum number of views to create per database (paper: 1).
    pub max_views: usize,
    /// Maximum rows per `INSERT`.
    pub max_insert_rows: usize,
    /// Whether validity feedback steers generation (`false` = "Rand").
    pub feedback_enabled: bool,
    /// Statistics/threshold configuration for the support model.
    pub stats: StatsConfig,
    /// Number of recorded executions between suppression-table updates
    /// (step ③/④ of Figure 5 run every `update_interval` cases).
    pub update_interval: u64,
    /// Number of recorded executions after which the expression depth grows
    /// by one (the paper's execution strategy starts at depth 1).
    pub depth_schedule_interval: u64,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            max_expr_depth: 3,
            max_tables: 2,
            max_views: 1,
            max_insert_rows: 3,
            feedback_enabled: true,
            stats: StatsConfig::default(),
            update_interval: 50,
            depth_schedule_interval: 200,
        }
    }
}

impl GeneratorConfig {
    /// The "SQLancer++ Rand" configuration: no feedback.
    pub fn random_baseline() -> GeneratorConfig {
        GeneratorConfig {
            feedback_enabled: false,
            ..GeneratorConfig::default()
        }
    }
}

/// A generated statement together with its SQL text and feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedStatement {
    /// The statement AST.
    pub statement: Statement,
    /// Its SQL rendering (what is sent to the DBMS).
    pub sql: String,
    /// The features enabled while generating it.
    pub features: FeatureSet,
    /// Which feedback category it belongs to.
    pub kind: FeatureKind,
}

/// A generated query (always a `SELECT` with an explicit predicate so the
/// oracles can transform it).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedQuery {
    /// The query.
    pub select: Select,
    /// The predicate the query filters on (also present as `where_clause`).
    pub predicate: Expr,
    /// The features enabled while generating it.
    pub features: FeatureSet,
}

/// A generated multi-statement transactional session for the rollback
/// oracle: mutations (and optional savepoint regions) against one table.
/// The oracle supplies the outer `BEGIN`/`COMMIT`/`ROLLBACK` bracketing.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedTxnSession {
    /// The table the mutations target (and the oracle fingerprints).
    pub table: String,
    /// The session body: DML, possibly interleaved with
    /// `SAVEPOINT`/`ROLLBACK TO` pairs.
    pub statements: Vec<Statement>,
    /// The features enabled while generating it — always includes the
    /// transaction-control statement features, which is how the Bayesian
    /// support model learns per-dialect transaction support.
    pub features: FeatureSet,
}

/// A generated two-session concurrent schedule for the isolation oracle:
/// per-session mutation scripts plus an explicit, seed-derived interleaving
/// (a deterministic step list — campaigns stay byte-reproducible, no real
/// threads involved).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedSchedule {
    /// The schedule: session scripts, closers, begin modes, interleaving.
    pub schedule: Schedule,
    /// The features enabled while generating it (transaction-control
    /// features included, so dialect transaction support is learned from
    /// schedule outcomes too).
    pub features: FeatureSet,
}

/// The adaptive statement generator.
#[derive(Debug, Clone)]
pub struct AdaptiveGenerator {
    rng: StdRng,
    /// The internal schema model (Figure 3).
    pub schema: SchemaModel,
    /// Validity-feedback statistics.
    pub stats: FeatureStats,
    config: GeneratorConfig,
    suppressed_query: BTreeSet<Feature>,
    suppressed_ddl: BTreeSet<Feature>,
    known_supported: Option<BTreeSet<Feature>>,
    /// Features the backend's [`Capability`] report rules out up front
    /// (e.g. a driver without transactions). Unlike the learned suppression
    /// tables this set is configuration, not state: it is not checkpointed
    /// and is re-applied from the driver on resume.
    capability_suppressed: BTreeSet<Feature>,
    /// Whether the backend can open concurrent sessions; when `false`,
    /// schedule generation degrades to `None` (the campaign falls back to
    /// a single-query oracle) instead of burning invalid cases.
    multi_session: bool,
    /// Coverage direction for the next statement: `(cold features, extra
    /// weight)`. When set, [`AdaptiveGenerator::pick`] draws weighted —
    /// cold options count `1 + boost` — instead of uniformly. Like
    /// capability suppression this is per-case configuration, not
    /// checkpointed state: the campaign derives it from the atlas and the
    /// case seed before every case and clears it after. A hash set, not a
    /// tree: the pick path probes it once per candidate option, and only
    /// membership is ever observed (iteration order never matters, so the
    /// hasher cannot leak into the campaign's determinism contract).
    coverage_direction: Option<(std::collections::HashSet<Feature>, usize)>,
    /// Reusable weight buffer for the directed draw (pick is the
    /// generator's hottest loop; no per-pick allocation).
    direction_scratch: Vec<usize>,
    recorded: u64,
    current_depth: usize,
}

impl AdaptiveGenerator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, config: GeneratorConfig) -> AdaptiveGenerator {
        AdaptiveGenerator {
            rng: StdRng::seed_from_u64(seed),
            schema: SchemaModel::new(),
            stats: FeatureStats::new(),
            suppressed_query: BTreeSet::new(),
            suppressed_ddl: BTreeSet::new(),
            known_supported: None,
            capability_suppressed: BTreeSet::new(),
            multi_session: true,
            coverage_direction: None,
            direction_scratch: Vec::new(),
            recorded: 0,
            current_depth: 1,
            config,
        }
    }

    /// Creates a perfect-knowledge generator: only features in `supported`
    /// are ever generated. Stands in for a hand-written DBMS-specific
    /// generator (the SQLancer baseline).
    pub fn with_knowledge(
        seed: u64,
        config: GeneratorConfig,
        supported: BTreeSet<Feature>,
    ) -> AdaptiveGenerator {
        let mut generator = AdaptiveGenerator::new(seed, config);
        generator.known_supported = Some(supported);
        generator.current_depth = generator.config.max_expr_depth;
        generator
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Applies a driver's [`Capability`](crate::driver::Capability) report:
    /// statement features the backend rules out up front are suppressed
    /// before any learning happens, and schedule generation is disabled
    /// when the backend cannot open concurrent sessions. Idempotent;
    /// callers re-apply the same capability when resuming a campaign
    /// (capability suppression is configuration, not checkpointed state).
    pub fn apply_capability(&mut self, capability: &crate::driver::Capability) {
        self.capability_suppressed = capability.unsupported_statement_features();
        self.multi_session = capability.multi_session;
    }

    /// Features suppressed by the applied capability report (empty when no
    /// capability has been applied).
    pub fn capability_suppressed_features(&self) -> &BTreeSet<Feature> {
        &self.capability_suppressed
    }

    /// Steers the next statement toward `cold` features: every cold option
    /// in a [`AdaptiveGenerator::pick`] draw counts `1 + boost` tickets
    /// instead of one. The campaign sets this right before generating a
    /// case (boost derived from the case seed, so directed runs are as
    /// reproducible as uniform ones) and clears it right after.
    pub fn set_coverage_direction(&mut self, cold: BTreeSet<Feature>, boost: usize) {
        self.coverage_direction = Some((cold.into_iter().collect(), boost));
    }

    /// Returns picks to uniform draws (see
    /// [`AdaptiveGenerator::set_coverage_direction`]).
    pub fn clear_coverage_direction(&mut self) {
        self.coverage_direction = None;
    }

    /// Current expression-depth budget (grows over time).
    pub fn current_depth(&self) -> usize {
        self.current_depth
    }

    /// Number of executions recorded so far.
    pub fn recorded_executions(&self) -> u64 {
        self.recorded
    }

    /// Features currently suppressed for query generation.
    pub fn suppressed_query_features(&self) -> &BTreeSet<Feature> {
        &self.suppressed_query
    }

    /// Features currently suppressed for DDL/DML generation.
    pub fn suppressed_ddl_features(&self) -> &BTreeSet<Feature> {
        &self.suppressed_ddl
    }

    /// The raw RNG state, for campaign checkpoints. Together with
    /// [`AdaptiveGenerator::restore_runtime_state`] (and direct restoration
    /// of the public `schema` and `stats` fields) this reconstructs the
    /// generator mid-campaign exactly.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restores the private runtime state captured by a campaign
    /// checkpoint: the RNG position, the execution counter driving the
    /// update/depth schedules, the depth budget, and the suppression
    /// tables.
    ///
    /// The suppression tables must be restored verbatim rather than
    /// recomputed from `stats`: they only refresh at `update_interval`
    /// boundaries, so between boundaries they lag the statistics by design
    /// — recomputing them on load would make a resumed campaign diverge
    /// from an uninterrupted one.
    pub fn restore_runtime_state(
        &mut self,
        rng_state: u64,
        recorded: u64,
        current_depth: usize,
        suppressed_query: BTreeSet<Feature>,
        suppressed_ddl: BTreeSet<Feature>,
    ) {
        self.rng = StdRng::seed_from_u64(rng_state);
        self.recorded = recorded;
        self.current_depth = current_depth;
        self.suppressed_query = suppressed_query;
        self.suppressed_ddl = suppressed_ddl;
    }

    /// Whether a feature may currently be generated (the paper's
    /// `shouldGenerate`, Listing 4).
    pub fn should_generate(&self, feature: &Feature, kind: FeatureKind) -> bool {
        if self.capability_suppressed.contains(feature) {
            return false;
        }
        if let Some(known) = &self.known_supported {
            return known.contains(feature);
        }
        if !self.config.feedback_enabled {
            return true;
        }
        match kind {
            FeatureKind::Query => !self.suppressed_query.contains(feature),
            FeatureKind::DdlDml => !self.suppressed_ddl.contains(feature),
        }
    }

    /// Records the execution outcome of a generated statement and updates
    /// the support model, the suppression tables and the depth schedule.
    pub fn record_outcome(&mut self, features: &FeatureSet, kind: FeatureKind, success: bool) {
        self.stats.record(features, kind, success);
        self.recorded += 1;
        if self.config.feedback_enabled && self.recorded.is_multiple_of(self.config.update_interval)
        {
            self.refresh_suppression();
        }
        if self
            .recorded
            .is_multiple_of(self.config.depth_schedule_interval)
            && self.current_depth < self.config.max_expr_depth
        {
            self.current_depth += 1;
        }
    }

    /// Recomputes the suppression tables from the support model (steps ③/④
    /// of Figure 5).
    pub fn refresh_suppression(&mut self) {
        self.suppressed_query = self
            .stats
            .unsupported_features(FeatureKind::Query, &self.config.stats)
            .into_iter()
            .collect();
        self.suppressed_ddl = self
            .stats
            .unsupported_features(FeatureKind::DdlDml, &self.config.stats)
            .into_iter()
            .collect();
    }

    /// Informs the schema model that a statement succeeded.
    pub fn apply_success(&mut self, stmt: &Statement) {
        self.schema.apply_success(stmt);
    }

    /// Clears the schema model (called when the DBMS is reset).
    pub fn reset_schema(&mut self) {
        self.schema.clear();
    }

    // ------------------------------------------------------- choices ----

    fn pick<'a, T>(
        &mut self,
        options: &'a [(T, Feature)],
        kind: FeatureKind,
    ) -> Option<&'a (T, Feature)> {
        let allowed: Vec<&(T, Feature)> = options
            .iter()
            .filter(|(_, f)| self.should_generate(f, kind))
            .collect();
        if allowed.is_empty() {
            return None;
        }
        if let Some((cold, boost)) = &self.coverage_direction {
            if !cold.is_empty() {
                // Coverage-directed draw: cold features carry `1 + boost`
                // tickets each, weighed in a single pass into the reusable
                // scratch buffer. One gen_range call per pick keeps the
                // RNG stream seed-stable regardless of which option wins.
                self.direction_scratch.clear();
                let mut total = 0usize;
                for option in &allowed {
                    let w = 1 + if cold.contains(&option.1) { *boost } else { 0 };
                    total += w;
                    self.direction_scratch.push(w);
                }
                let mut ticket = self.rng.gen_range(0..total);
                for (index, w) in self.direction_scratch.iter().enumerate() {
                    if ticket < *w {
                        return Some(allowed[index]);
                    }
                    ticket -= w;
                }
                unreachable!("ticket within total weight");
            }
            // An exhausted cold set makes every weight 1, and an all-ones
            // weighted draw is exactly the uniform draw below — same RNG
            // consumption, same winner — so fall through to the fast path.
        }
        let idx = self.rng.gen_range(0..allowed.len());
        Some(allowed[idx])
    }

    fn bool_with(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    // ---------------------------------------------------- DDL / DML ----

    /// Generates the next database-construction statement: tables first,
    /// then a mix of inserts, indexes, views and `ANALYZE`.
    pub fn generate_ddl_statement(&mut self) -> GeneratedStatement {
        let base_tables = self.schema.base_tables().len();
        let views = self.schema.tables().len() - base_tables;
        if base_tables < self.config.max_tables {
            return self.generate_create_table();
        }
        let mut options: Vec<(u8, Feature)> = vec![
            (0, Feature::statement("STMT_INSERT")),
            (0, Feature::statement("STMT_INSERT")),
            (0, Feature::statement("STMT_INSERT")),
            (1, Feature::statement("STMT_CREATE_INDEX")),
            (3, Feature::statement("STMT_ANALYZE")),
        ];
        if views < self.config.max_views {
            options.push((2, Feature::statement("STMT_CREATE_VIEW")));
        }
        let choice = self
            .pick(&options, FeatureKind::DdlDml)
            .map(|(c, _)| *c)
            .unwrap_or(0);
        match choice {
            1 => self.generate_create_index(),
            2 => self.generate_create_view(),
            3 => self.generate_analyze(),
            _ => self.generate_insert(),
        }
    }

    fn generate_create_table(&mut self) -> GeneratedStatement {
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_CREATE_TABLE"));
        let name = self.schema.free_name("t");
        let n_columns = self.rng.gen_range(1..=4usize);
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        for i in 0..n_columns {
            let type_options: Vec<(DataType, Feature)> = DataType::COLUMN_TYPES
                .iter()
                .map(|&ty| (ty, Feature::data_type(ty)))
                .collect();
            let (data_type, feature) = self
                .pick(&type_options, FeatureKind::DdlDml)
                .cloned()
                .unwrap_or((DataType::Integer, Feature::data_type(DataType::Integer)));
            features.insert(feature);
            let mut def = ColumnDef::new(format!("c{i}"), data_type);
            if self.bool_with(0.2)
                && self.should_generate(&Feature::keyword("NOT_NULL"), FeatureKind::DdlDml)
            {
                def.constraints.push(ColumnConstraint::NotNull);
                features.insert(Feature::keyword("NOT_NULL"));
            }
            if self.bool_with(0.1)
                && self.should_generate(&Feature::keyword("DEFAULT"), FeatureKind::DdlDml)
            {
                def.constraints
                    .push(ColumnConstraint::Default(self.literal_of(data_type)));
                features.insert(Feature::keyword("DEFAULT"));
            }
            columns.push(def);
        }
        if self.bool_with(0.5)
            && self.should_generate(&Feature::keyword("PRIMARY_KEY"), FeatureKind::DdlDml)
        {
            let pk_col = columns[self.rng.gen_range(0..columns.len())].name.clone();
            constraints.push(TableConstraint::PrimaryKey(vec![pk_col]));
            features.insert(Feature::keyword("PRIMARY_KEY"));
        }
        let statement = Statement::CreateTable(CreateTable {
            name,
            if_not_exists: false,
            columns,
            constraints,
        });
        self.finish(statement, features, FeatureKind::DdlDml)
    }

    fn generate_create_index(&mut self) -> GeneratedStatement {
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_CREATE_INDEX"));
        let Some(table) = self
            .schema
            .random_base_table(&mut self.rng.clone())
            .cloned()
        else {
            return self.generate_create_table();
        };
        let name = self.schema.free_name("i");
        let n = self.rng.gen_range(1..=table.columns.len().min(2));
        let mut cols: Vec<String> = table.column_names();
        cols.shuffle(&mut self.rng);
        cols.truncate(n);
        let unique = self.bool_with(0.3)
            && self.should_generate(&Feature::keyword("UNIQUE_INDEX"), FeatureKind::DdlDml);
        if unique {
            features.insert(Feature::keyword("UNIQUE_INDEX"));
        }
        let where_clause = if self.bool_with(0.2)
            && self.should_generate(&Feature::keyword("PARTIAL_INDEX"), FeatureKind::DdlDml)
        {
            features.insert(Feature::keyword("PARTIAL_INDEX"));
            let (pred, pred_features) = self.generate_predicate(std::slice::from_ref(&table), 2);
            features.extend(&pred_features);
            Some(pred)
        } else {
            None
        };
        let statement = Statement::CreateIndex(CreateIndex {
            name,
            table: table.name.clone(),
            columns: cols,
            unique,
            where_clause,
        });
        self.finish(statement, features, FeatureKind::DdlDml)
    }

    fn generate_create_view(&mut self) -> GeneratedStatement {
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_CREATE_VIEW"));
        let Some(table) = self
            .schema
            .random_base_table(&mut self.rng.clone())
            .cloned()
        else {
            return self.generate_create_table();
        };
        let name = self.schema.free_name("v");
        let n_proj = self.rng.gen_range(1..=2usize);
        let mut projections = Vec::new();
        for _ in 0..n_proj {
            let (expr, expr_features) = self.generate_expr(std::slice::from_ref(&table), 2);
            features.extend(&expr_features);
            projections.push(SelectItem::expr(expr));
        }
        let mut query = Select::from_table(table.name.clone(), projections);
        if self.bool_with(0.4) {
            let (pred, pred_features) = self.generate_predicate(std::slice::from_ref(&table), 2);
            features.extend(&pred_features);
            features.insert(Feature::clause("WHERE"));
            query.where_clause = Some(pred);
        }
        let columns = (0..n_proj).map(|i| format!("c{i}")).collect();
        let statement = Statement::CreateView(CreateView {
            name,
            columns,
            query: Box::new(query),
        });
        self.finish(statement, features, FeatureKind::DdlDml)
    }

    fn generate_insert(&mut self) -> GeneratedStatement {
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_INSERT"));
        let Some(table) = self
            .schema
            .random_base_table(&mut self.rng.clone())
            .cloned()
        else {
            return self.generate_create_table();
        };
        let n_rows = self.rng.gen_range(1..=self.config.max_insert_rows);
        let columns = table.column_names();
        let mut values = Vec::new();
        for _ in 0..n_rows {
            let mut row = Vec::new();
            for col in &table.columns {
                let value = if self.bool_with(0.1) && !col.not_null {
                    Expr::null()
                } else if self.bool_with(0.12)
                    && self
                        .should_generate(&Feature::property("IMPLICIT_CAST"), FeatureKind::DdlDml)
                {
                    // Deliberately ill-typed literal: learns the abstract
                    // implicit-cast property of the dialect.
                    features.insert(Feature::property("IMPLICIT_CAST"));
                    let other = match col.data_type {
                        DataType::Integer => DataType::Text,
                        _ => DataType::Integer,
                    };
                    self.literal_of(other)
                } else {
                    self.literal_of(col.data_type)
                };
                row.push(value);
            }
            values.push(row);
        }
        let or_ignore = self.bool_with(0.25)
            && self.should_generate(&Feature::keyword("OR_IGNORE"), FeatureKind::DdlDml);
        if or_ignore {
            features.insert(Feature::keyword("OR_IGNORE"));
        }
        let statement = Statement::Insert(Insert {
            table: table.name.clone(),
            columns,
            values,
            or_ignore,
        });
        self.finish(statement, features, FeatureKind::DdlDml)
    }

    fn generate_analyze(&mut self) -> GeneratedStatement {
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_ANALYZE"));
        let table = self
            .schema
            .random_base_table(&mut self.rng.clone())
            .map(|t| t.name.clone());
        let statement = Statement::Analyze(if self.bool_with(0.5) { table } else { None });
        self.finish(statement, features, FeatureKind::DdlDml)
    }

    fn finish(
        &mut self,
        statement: Statement,
        features: FeatureSet,
        kind: FeatureKind,
    ) -> GeneratedStatement {
        let sql = statement.to_string();
        GeneratedStatement {
            statement,
            sql,
            features,
            kind,
        }
    }

    // ----------------------------------------------- transactional DML ----

    /// Generates a transactional session for the rollback oracle: 1–4
    /// mutations against one base table, optionally wrapped in a
    /// `SAVEPOINT … ROLLBACK TO` region. Returns `None` when there is no
    /// base table yet or when the learned profile says the dialect does not
    /// support transactions (the `STMT_BEGIN`/`STMT_ROLLBACK`/`STMT_COMMIT`
    /// features are suppressed) — the campaign then falls back to a
    /// single-query oracle.
    pub fn generate_txn_session(&mut self) -> Option<GeneratedTxnSession> {
        for name in ["STMT_BEGIN", "STMT_ROLLBACK", "STMT_COMMIT"] {
            if !self.should_generate(&Feature::statement(name), FeatureKind::Query) {
                return None;
            }
        }
        let table = self
            .schema
            .random_base_table(&mut self.rng.clone())?
            .clone();
        let mut features = FeatureSet::new();
        // The bracketing statements the oracle will issue are part of the
        // test case's feature set even though the generator does not emit
        // them itself: a dialect rejecting BEGIN fails the whole session,
        // and that evidence must land on the right features.
        features.insert(Feature::statement("STMT_BEGIN"));
        features.insert(Feature::statement("STMT_COMMIT"));
        features.insert(Feature::statement("STMT_ROLLBACK"));
        let mut statements = Vec::new();
        for _ in 0..self.rng.gen_range(1..=2usize) {
            let stmt = self.generate_mutation(&table, &mut features);
            statements.push(stmt);
        }
        if self.bool_with(0.5)
            && self.should_generate(&Feature::statement("STMT_SAVEPOINT"), FeatureKind::Query)
            && self.should_generate(&Feature::statement("STMT_ROLLBACK_TO"), FeatureKind::Query)
        {
            features.insert(Feature::statement("STMT_SAVEPOINT"));
            features.insert(Feature::statement("STMT_ROLLBACK_TO"));
            statements.push(Statement::Savepoint("sp1".into()));
            for _ in 0..self.rng.gen_range(1..=2usize) {
                let stmt = self.generate_mutation(&table, &mut features);
                statements.push(stmt);
            }
            statements.push(Statement::RollbackTo("sp1".into()));
            if self.bool_with(0.4) {
                let stmt = self.generate_mutation(&table, &mut features);
                statements.push(stmt);
            }
            // Sometimes retire the savepoint with RELEASE — the frame-merge
            // path, learnable per dialect like the rest of txn control.
            if self.bool_with(0.35)
                && self.should_generate(
                    &Feature::statement("STMT_RELEASE_SAVEPOINT"),
                    FeatureKind::Query,
                )
            {
                features.insert(Feature::statement("STMT_RELEASE_SAVEPOINT"));
                statements.push(Statement::ReleaseSavepoint("sp1".into()));
            }
        }
        Some(GeneratedTxnSession {
            table: table.name.clone(),
            statements,
            features,
        })
    }

    // ------------------------------------------------ concurrent schedules ----

    /// Generates a two-session concurrent schedule for the isolation
    /// oracle, or `None` when no base table exists yet or the learned
    /// profile says the dialect rejects transactions (the campaign then
    /// falls back to a single-query oracle).
    ///
    /// Session 1 is a plain writer: every statement targets one table and
    /// reads nothing else. Session 0 may additionally carry **observer
    /// inserts** — `INSERT … VALUES ((SELECT COUNT(*) FROM <other>))` —
    /// which deposit a cross-table read into its own table. Restricting
    /// foreign reads to one session keeps the oracle sound: under correct
    /// snapshot isolation with first-committer-wins, the concurrent outcome
    /// always equals one of the serial replays (write skew needs *both*
    /// sessions to read tables the other writes), so every mismatch is a
    /// genuine isolation bug.
    pub fn generate_schedule(&mut self) -> Option<GeneratedSchedule> {
        if !self.multi_session {
            return None;
        }
        for name in ["STMT_BEGIN", "STMT_COMMIT", "STMT_ROLLBACK"] {
            if !self.should_generate(&Feature::statement(name), FeatureKind::Query) {
                return None;
            }
        }
        let table_a = self
            .schema
            .random_base_table(&mut self.rng.clone())?
            .clone();
        // Half the schedules contend on one table (conflict pressure), half
        // run on distinct tables when the schema has them.
        let table_b = if self.bool_with(0.5) {
            table_a.clone()
        } else {
            self.schema
                .random_base_table(&mut self.rng.clone())?
                .clone()
        };
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_BEGIN"));
        features.insert(Feature::statement("STMT_COMMIT"));
        features.insert(Feature::statement("STMT_ROLLBACK"));

        // Session 1: plain writer on `table_b`.
        let mut body1 = Vec::new();
        for _ in 0..self.rng.gen_range(1..=2usize) {
            body1.push(self.generate_mutation(&table_b, &mut features));
        }

        // Session 0: writer on `table_a`, usually sandwiching observer
        // inserts around the other session's steps so visibility faults
        // (dirty read, non-repeatable read) leave a committed trace.
        let observing = self.bool_with(0.65)
            && self.should_generate(&Feature::clause("SUBQUERY"), FeatureKind::Query);
        let mut body0 = Vec::new();
        if observing {
            body0.push(self.generate_observer_insert(&table_a, &table_b.name, &mut features));
        }
        for _ in 0..self.rng.gen_range(1..=2usize) {
            body0.push(self.generate_mutation(&table_a, &mut features));
        }
        if observing {
            body0.push(self.generate_observer_insert(&table_a, &table_b.name, &mut features));
        }

        let begin_mode = |generator: &mut Self| {
            if generator.bool_with(0.12) {
                BeginMode::Immediate
            } else if generator.bool_with(0.2) {
                BeginMode::Deferred
            } else {
                BeginMode::Plain
            }
        };
        let sessions = vec![
            SessionScript {
                begin: begin_mode(self),
                statements: body0,
                commit: self.bool_with(0.85),
            },
            SessionScript {
                begin: begin_mode(self),
                statements: body1,
                commit: self.bool_with(0.85),
            },
        ];

        // The interleaving: mostly a "sandwich" (session 1 runs to
        // completion strictly inside session 0's span — the shape that
        // exposes visibility anomalies), otherwise a random merge.
        let steps0 = sessions[0].step_count();
        let steps1 = sessions[1].step_count();
        let interleaving = if self.bool_with(0.55) {
            let split = self.rng.gen_range(1..steps0);
            let mut steps = Vec::with_capacity(steps0 + steps1);
            steps.extend(std::iter::repeat_n(0u8, split));
            steps.extend(std::iter::repeat_n(1u8, steps1));
            steps.extend(std::iter::repeat_n(0u8, steps0 - split));
            steps
        } else {
            let mut remaining = [steps0, steps1];
            let mut steps = Vec::with_capacity(steps0 + steps1);
            while remaining[0] + remaining[1] > 0 {
                let pick = if remaining[0] == 0 {
                    1
                } else if remaining[1] == 0 {
                    0
                } else {
                    usize::from(self.bool_with(0.5))
                };
                remaining[pick] -= 1;
                steps.push(pick as u8);
            }
            steps
        };

        let mut tables = vec![table_a.name.clone(), table_b.name.clone()];
        tables.sort();
        tables.dedup();
        Some(GeneratedSchedule {
            schedule: Schedule {
                tables,
                sessions,
                interleaving,
            },
            features,
        })
    }

    /// An "observer" insert: deposits `(SELECT COUNT(*) FROM <observed>)`
    /// into one column of `target`, turning a cross-table read into
    /// committed, fingerprintable state.
    fn generate_observer_insert(
        &mut self,
        target: &ModelTable,
        observed: &str,
        features: &mut FeatureSet,
    ) -> Statement {
        features.insert(Feature::statement("STMT_INSERT"));
        features.insert(Feature::clause("SUBQUERY"));
        features.insert(Feature::aggregate(AggregateFunction::Count));
        let count = Expr::ScalarSubquery(Box::new(Select {
            projections: vec![SelectItem::expr(Expr::Aggregate {
                func: AggregateFunction::Count,
                arg: None,
                distinct: false,
            })],
            from: vec![TableWithJoins::table(observed.to_string())],
            ..Select::new()
        }));
        // Deposit the count into a numeric column when one exists; other
        // columns get plain literals.
        let slot = target
            .columns
            .iter()
            .position(|c| c.data_type == DataType::Integer)
            .or_else(|| {
                target
                    .columns
                    .iter()
                    .position(|c| c.data_type == DataType::Real)
            })
            .or_else(|| {
                target
                    .columns
                    .iter()
                    .position(|c| c.data_type == DataType::Text)
            })
            .unwrap_or(0);
        let row: Vec<Expr> = target
            .columns
            .iter()
            .enumerate()
            .map(|(i, col)| {
                if i == slot {
                    if col.data_type == DataType::Integer {
                        count.clone()
                    } else {
                        features.insert(Feature::new("OP_CAST"));
                        Expr::Cast {
                            expr: Box::new(count.clone()),
                            data_type: col.data_type,
                        }
                    }
                } else {
                    self.literal_of(col.data_type)
                }
            })
            .collect();
        Statement::Insert(Insert {
            table: target.name.clone(),
            columns: target.column_names(),
            values: vec![row],
            or_ignore: false,
        })
    }

    /// Generates one mutation statement against `table`: mostly `INSERT`,
    /// sometimes `UPDATE` or `DELETE` (which only transactional sessions
    /// exercise — the database-construction phase never destroys state).
    fn generate_mutation(&mut self, table: &ModelTable, features: &mut FeatureSet) -> Statement {
        let choice = self.rng.gen_range(0..5u8);
        match choice {
            0 if self.should_generate(&Feature::statement("STMT_UPDATE"), FeatureKind::Query)
                && !table.columns.is_empty() =>
            {
                features.insert(Feature::statement("STMT_UPDATE"));
                let col = &table.columns[self.rng.gen_range(0..table.columns.len())];
                let value = self.literal_of(col.data_type);
                let (pred, pred_features) = self.generate_predicate(std::slice::from_ref(table), 2);
                features.extend(&pred_features);
                Statement::Update(sql_ast::Update {
                    table: table.name.clone(),
                    assignments: vec![(col.name.clone(), value)],
                    where_clause: Some(pred),
                })
            }
            1 if self.should_generate(&Feature::statement("STMT_DELETE"), FeatureKind::Query) => {
                features.insert(Feature::statement("STMT_DELETE"));
                let where_clause = if self.bool_with(0.8) {
                    let (pred, pred_features) =
                        self.generate_predicate(std::slice::from_ref(table), 2);
                    features.extend(&pred_features);
                    Some(pred)
                } else {
                    None
                };
                Statement::Delete(sql_ast::Delete {
                    table: table.name.clone(),
                    where_clause,
                })
            }
            _ => {
                features.insert(Feature::statement("STMT_INSERT"));
                let mut values = Vec::new();
                for _ in 0..self.rng.gen_range(1..=2usize) {
                    let row: Vec<Expr> = table
                        .columns
                        .iter()
                        .map(|col| {
                            if self.bool_with(0.1) && !col.not_null {
                                Expr::null()
                            } else {
                                self.literal_of(col.data_type)
                            }
                        })
                        .collect();
                    values.push(row);
                }
                Statement::Insert(Insert {
                    table: table.name.clone(),
                    columns: table.column_names(),
                    values,
                    or_ignore: false,
                })
            }
        }
    }

    // -------------------------------------------------------- queries ----

    /// Generates a random query over the current schema model, always with a
    /// predicate so the oracles can transform it.
    pub fn generate_query(&mut self) -> Option<GeneratedQuery> {
        let mut features = FeatureSet::new();
        features.insert(Feature::statement("STMT_SELECT"));
        // Only the (up to three) tables actually referenced are cloned out
        // of the schema model — copying the whole model per query dominated
        // generation cost as schemas grew.
        let table_count = self.schema.tables().len();
        if table_count == 0 {
            return None;
        }
        // FROM: one base relation, optionally joined with another.
        let first_index = self.rng.gen_range(0..table_count);
        let mut in_scope = vec![self.schema.tables()[first_index].clone()];
        let mut from = TableWithJoins::table(in_scope[0].name.clone());
        if table_count > 1 && self.bool_with(0.45) {
            let join_options: Vec<(JoinType, Feature)> = JoinType::ALL
                .iter()
                .map(|&j| (j, Feature::join(j)))
                .collect();
            if let Some((join_type, feature)) =
                self.pick(&join_options, FeatureKind::Query).cloned()
            {
                features.insert(feature);
                let second_index = self.rng.gen_range(0..table_count);
                in_scope.push(self.schema.tables()[second_index].clone());
                let on = if join_type.takes_constraint() {
                    let (pred, pred_features) = self.generate_predicate(&in_scope, 2);
                    features.extend(&pred_features);
                    Some(pred)
                } else {
                    None
                };
                from.joins.push(Join {
                    join_type,
                    relation: TableFactor::table(in_scope[1].name.clone()),
                    on,
                });
            }
        }
        // Optional derived-table subquery as an extra FROM item.
        let mut from_items = vec![from];
        if self.bool_with(0.15)
            && self.should_generate(&Feature::clause("SUBQUERY"), FeatureKind::Query)
        {
            features.insert(Feature::clause("SUBQUERY"));
            let inner_index = self.rng.gen_range(0..table_count);
            let inner_table = self.schema.tables()[inner_index].clone();
            let (inner_expr, inner_features) =
                self.generate_expr(std::slice::from_ref(&inner_table), 2);
            features.extend(&inner_features);
            let sub = Select::from_table(
                inner_table.name,
                vec![SelectItem::aliased(inner_expr, "sc0")],
            );
            let alias = self.schema.free_name("sub");
            from_items.push(TableWithJoins {
                relation: TableFactor::Derived {
                    subquery: Box::new(sub),
                    alias: alias.clone(),
                },
                joins: Vec::new(),
            });
            in_scope.push(ModelTable {
                name: alias,
                columns: vec![crate::schema::ModelColumn {
                    name: "sc0".into(),
                    data_type: DataType::Integer,
                    not_null: false,
                    primary_key: false,
                }],
                is_view: true,
                approx_rows: 0,
            });
        }

        // Projections.
        let mut projections = Vec::new();
        if self.bool_with(0.25) {
            projections.push(SelectItem::Wildcard);
        } else {
            let n = self.rng.gen_range(1..=2usize);
            for _ in 0..n {
                let (expr, expr_features) = self.generate_expr(&in_scope, self.current_depth);
                features.extend(&expr_features);
                projections.push(SelectItem::expr(expr));
            }
        }

        // Predicate.
        let depth = self.current_depth;
        let (predicate, pred_features) = self.generate_predicate(&in_scope, depth);
        features.extend(&pred_features);
        features.insert(Feature::clause("WHERE"));

        let mut select = Select {
            projections,
            from: from_items,
            where_clause: Some(predicate.clone()),
            ..Select::new()
        };
        if self.bool_with(0.12)
            && self.should_generate(&Feature::clause("DISTINCT"), FeatureKind::Query)
        {
            features.insert(Feature::clause("DISTINCT"));
            select.distinct = true;
        }
        if self.bool_with(0.15)
            && self.should_generate(&Feature::clause("ORDER_BY"), FeatureKind::Query)
        {
            features.insert(Feature::clause("ORDER_BY"));
            if let Some(table) = in_scope.first() {
                if let Some(col) = table.columns.first() {
                    select.order_by.push(OrderByItem {
                        expr: Expr::qualified_column(table.name.clone(), col.name.clone()),
                        order: if self.bool_with(0.5) {
                            SortOrder::Asc
                        } else {
                            SortOrder::Desc
                        },
                    });
                }
            }
        }
        if self.bool_with(0.1)
            && self.should_generate(&Feature::clause("LIMIT"), FeatureKind::Query)
        {
            features.insert(Feature::clause("LIMIT"));
            select.limit = Some(self.rng.gen_range(1..=10));
        }
        Some(GeneratedQuery {
            select,
            predicate,
            features,
        })
    }

    /// Generates a predicate expression: usually a comparison, sometimes a
    /// compound boolean expression.
    pub fn generate_predicate(
        &mut self,
        tables: &[ModelTable],
        depth: usize,
    ) -> (Expr, FeatureSet) {
        let mut features = FeatureSet::new();
        let expr = self.gen_bool_expr(tables, depth, &mut features);
        (expr, features)
    }

    /// Generates an arbitrary expression (used for projections and function
    /// arguments).
    pub fn generate_expr(&mut self, tables: &[ModelTable], depth: usize) -> (Expr, FeatureSet) {
        let mut features = FeatureSet::new();
        let expr = self.gen_value_expr(tables, depth, &mut features);
        (expr, features)
    }

    fn gen_bool_expr(
        &mut self,
        tables: &[ModelTable],
        depth: usize,
        features: &mut FeatureSet,
    ) -> Expr {
        if depth <= 1 {
            return self.gen_comparison(tables, 1, features);
        }
        match self.rng.gen_range(0..10) {
            0 | 1 => {
                // Logical connective.
                let ops = [
                    (BinaryOp::And, Feature::binary_op(BinaryOp::And)),
                    (BinaryOp::Or, Feature::binary_op(BinaryOp::Or)),
                ];
                match self.pick(&ops, FeatureKind::Query).cloned() {
                    Some((op, feature)) => {
                        features.insert(feature);
                        let left = self.gen_bool_expr(tables, depth - 1, features);
                        let right = self.gen_bool_expr(tables, depth - 1, features);
                        left.binary(op, right)
                    }
                    None => self.gen_comparison(tables, depth, features),
                }
            }
            2 | 7 => {
                if self.should_generate(&Feature::unary_op(UnaryOp::Not), FeatureKind::Query) {
                    features.insert(Feature::unary_op(UnaryOp::Not));
                    self.gen_bool_expr(tables, depth - 1, features).not()
                } else {
                    self.gen_comparison(tables, depth, features)
                }
            }
            3 => {
                // IS NULL / IS TRUE.
                let inner = self.gen_value_expr(tables, depth - 1, features);
                if self.bool_with(0.5) {
                    Expr::IsNull {
                        expr: Box::new(inner),
                        negated: self.bool_with(0.3),
                    }
                } else {
                    Expr::IsBool {
                        expr: Box::new(inner),
                        target: self.bool_with(0.5),
                        negated: self.bool_with(0.2),
                    }
                }
            }
            4 => {
                // BETWEEN.
                let expr = self.gen_value_expr(tables, depth - 1, features);
                let low = self.gen_value_expr(tables, 1, features);
                let high = self.gen_value_expr(tables, 1, features);
                Expr::Between {
                    expr: Box::new(expr),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated: self.bool_with(0.3),
                }
            }
            5 => {
                // IN list.
                let expr = self.gen_value_expr(tables, depth - 1, features);
                let n = self.rng.gen_range(1..=3usize);
                let list = (0..n)
                    .map(|_| self.gen_value_expr(tables, 1, features))
                    .collect();
                Expr::InList {
                    expr: Box::new(expr),
                    list,
                    negated: self.bool_with(0.3),
                }
            }
            6 => {
                // LIKE on a text-ish operand.
                let expr = self.gen_value_expr(tables, depth - 1, features);
                let patterns = ["%a%", "a_", "%", "_%b", "abc"];
                let pattern = patterns[self.rng.gen_range(0..patterns.len())];
                Expr::Like {
                    expr: Box::new(expr),
                    pattern: Box::new(Expr::text(pattern)),
                    negated: self.bool_with(0.3),
                }
            }
            _ => self.gen_comparison(tables, depth, features),
        }
    }

    fn gen_comparison(
        &mut self,
        tables: &[ModelTable],
        depth: usize,
        features: &mut FeatureSet,
    ) -> Expr {
        let comparison_ops: Vec<(BinaryOp, Feature)> = BinaryOp::COMPARISONS
            .iter()
            .map(|&op| (op, Feature::binary_op(op)))
            .collect();
        let Some((op, feature)) = self.pick(&comparison_ops, FeatureKind::Query).cloned() else {
            // Everything suppressed: fall back to a literal truth value.
            return Expr::boolean(true);
        };
        features.insert(feature);
        let left = self.gen_value_expr(tables, depth.saturating_sub(1).max(1), features);
        let right = self.gen_value_expr(tables, 1, features);
        left.binary(op, right)
    }

    fn gen_value_expr(
        &mut self,
        tables: &[ModelTable],
        depth: usize,
        features: &mut FeatureSet,
    ) -> Expr {
        if depth <= 1 || tables.is_empty() {
            return self.gen_leaf(tables, features);
        }
        match self.rng.gen_range(0..10) {
            0..=2 => {
                // Arithmetic / bitwise / concat binary expression.
                let mut ops: Vec<(BinaryOp, Feature)> = BinaryOp::ARITHMETIC
                    .iter()
                    .chain(BinaryOp::BITWISE.iter())
                    .map(|&op| (op, Feature::binary_op(op)))
                    .collect();
                ops.push((BinaryOp::Concat, Feature::binary_op(BinaryOp::Concat)));
                match self.pick(&ops, FeatureKind::Query).cloned() {
                    Some((op, feature)) => {
                        features.insert(feature);
                        let left = self.gen_value_expr(tables, depth - 1, features);
                        let right = self.gen_value_expr(tables, depth - 1, features);
                        left.binary(op, right)
                    }
                    None => self.gen_leaf(tables, features),
                }
            }
            3 | 4 => self.gen_function_call(tables, depth, features),
            5 => {
                // Unary.
                let ops: Vec<(UnaryOp, Feature)> = [UnaryOp::Neg, UnaryOp::Plus, UnaryOp::BitNot]
                    .iter()
                    .map(|&op| (op, Feature::unary_op(op)))
                    .collect();
                match self.pick(&ops, FeatureKind::Query).cloned() {
                    Some((op, feature)) => {
                        features.insert(feature);
                        Expr::Unary {
                            op,
                            expr: Box::new(self.gen_value_expr(tables, depth - 1, features)),
                        }
                    }
                    None => self.gen_leaf(tables, features),
                }
            }
            6 => {
                // CASE.
                if !self.should_generate(&Feature::clause("CASE"), FeatureKind::Query) {
                    return self.gen_leaf(tables, features);
                }
                features.insert(Feature::clause("CASE"));
                let with_operand = self.bool_with(0.5);
                let operand = with_operand
                    .then(|| Box::new(self.gen_value_expr(tables, depth - 1, features)));
                let when = if with_operand {
                    self.gen_value_expr(tables, 1, features)
                } else {
                    self.gen_bool_expr(tables, depth - 1, features)
                };
                let then = self.gen_value_expr(tables, depth - 1, features);
                let else_expr = self
                    .bool_with(0.6)
                    .then(|| Box::new(self.gen_value_expr(tables, 1, features)));
                Expr::Case {
                    operand,
                    branches: vec![CaseBranch { when, then }],
                    else_expr,
                }
            }
            7 => {
                // CAST.
                let target = DataType::COLUMN_TYPES[self.rng.gen_range(0..3)];
                Expr::Cast {
                    expr: Box::new(self.gen_value_expr(tables, depth - 1, features)),
                    data_type: target,
                }
            }
            _ => self.gen_leaf(tables, features),
        }
    }

    fn gen_function_call(
        &mut self,
        tables: &[ModelTable],
        depth: usize,
        features: &mut FeatureSet,
    ) -> Expr {
        let function_options: Vec<(ScalarFunction, Feature)> = ScalarFunction::ALL
            .iter()
            .map(|&f| (f, Feature::function(f)))
            .collect();
        let Some((func, feature)) = self.pick(&function_options, FeatureKind::Query).cloned()
        else {
            return self.gen_leaf(tables, features);
        };
        features.insert(feature);
        let arity = self.rng.gen_range(func.min_args()..=func.max_args());
        let mut args = Vec::with_capacity(arity);
        for i in 0..arity {
            let arg = self.gen_value_expr(tables, (depth - 1).max(1), features);
            // Composite FN/arg-type feature (the paper's `SIN1INT`): recorded
            // for syntactically obvious argument types only.
            let arg_type = match &arg {
                Expr::Literal(v) => Some(v.data_type()),
                Expr::Column(c) => tables.iter().find_map(|t| {
                    t.columns
                        .iter()
                        .find(|col| col.name.eq_ignore_ascii_case(&c.column))
                        .map(|col| col.data_type)
                }),
                _ => None,
            };
            if let Some(ty) = arg_type {
                if ty != DataType::Null {
                    let composite = Feature::function_arg_type(func, i, ty);
                    if self.should_generate(&composite, FeatureKind::Query) {
                        features.insert(composite);
                    } else {
                        // The learned profile says this argument type fails
                        // for this function; fall back to a literal of a
                        // type that is still believed to work, if any.
                        let replacement = DataType::COLUMN_TYPES.iter().copied().find(|&t| {
                            t != ty
                                && self.should_generate(
                                    &Feature::function_arg_type(func, i, t),
                                    FeatureKind::Query,
                                )
                        });
                        if let Some(t) = replacement {
                            features.insert(Feature::function_arg_type(func, i, t));
                            args.push(self.literal_of(t));
                            continue;
                        }
                    }
                }
            }
            args.push(arg);
        }
        Expr::Function { func, args }
    }

    fn gen_leaf(&mut self, tables: &[ModelTable], features: &mut FeatureSet) -> Expr {
        if !tables.is_empty() && self.bool_with(0.55) {
            let table = &tables[self.rng.gen_range(0..tables.len())];
            if !table.columns.is_empty() {
                let col = &table.columns[self.rng.gen_range(0..table.columns.len())];
                return Expr::qualified_column(table.name.clone(), col.name.clone());
            }
        }
        if self.bool_with(0.14) {
            return Expr::null();
        }
        let ty = DataType::COLUMN_TYPES[self.rng.gen_range(0..3)];
        let _ = features;
        self.literal_of(ty)
    }

    fn literal_of(&mut self, ty: DataType) -> Expr {
        match ty {
            DataType::Integer | DataType::Real | DataType::Null => {
                Expr::integer(self.rng.gen_range(-3i64..=9))
            }
            DataType::Text => {
                let words = ["a", "b", "abc", "A", "", " ", "1", "-1", "x y"];
                Expr::text(words[self.rng.gen_range(0..words.len())])
            }
            DataType::Boolean => Expr::boolean(self.rng.gen_bool(0.5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator_with_schema(feedback: bool) -> AdaptiveGenerator {
        let config = GeneratorConfig {
            feedback_enabled: feedback,
            ..GeneratorConfig::default()
        };
        let mut generator = AdaptiveGenerator::new(42, config);
        for sql in [
            "CREATE TABLE t0 (c0 INTEGER PRIMARY KEY, c1 TEXT, c2 BOOLEAN)",
            "CREATE TABLE t1 (c0 INTEGER, c3 INTEGER)",
        ] {
            generator.apply_success(&sql_parser::parse_statement(sql).unwrap());
        }
        generator
    }

    #[test]
    fn ddl_generation_builds_schema_bottom_up() {
        let mut generator = AdaptiveGenerator::new(1, GeneratorConfig::default());
        let first = generator.generate_ddl_statement();
        assert!(matches!(first.statement, Statement::CreateTable(_)));
        assert!(first
            .features
            .contains(&Feature::statement("STMT_CREATE_TABLE")));
        // Until tables exist, the generator keeps proposing CREATE TABLE.
        let second = generator.generate_ddl_statement();
        assert!(matches!(second.statement, Statement::CreateTable(_)));
    }

    #[test]
    fn generated_statements_parse_back() {
        let mut generator = generator_with_schema(true);
        for _ in 0..200 {
            let stmt = generator.generate_ddl_statement();
            let reparsed = sql_parser::parse_statement(&stmt.sql);
            assert!(reparsed.is_ok(), "unparseable SQL: {}", stmt.sql);
            generator.apply_success(&stmt.statement);
        }
        for _ in 0..200 {
            let query = generator.generate_query().unwrap();
            let sql = query.select.to_string();
            assert!(
                sql_parser::parse_statement(&sql).is_ok(),
                "unparseable SQL: {sql}"
            );
            assert!(!query.features.is_empty());
        }
    }

    #[test]
    fn queries_always_carry_a_predicate() {
        let mut generator = generator_with_schema(true);
        for _ in 0..50 {
            let query = generator.generate_query().unwrap();
            assert!(query.select.where_clause.is_some());
            assert!(query.features.contains(&Feature::clause("WHERE")));
        }
    }

    #[test]
    fn suppression_removes_feature_from_generation() {
        let mut generator = generator_with_schema(true);
        // Report the null-safe operator as always failing.
        let feature = Feature::binary_op(BinaryOp::NullSafeEq);
        let features: FeatureSet = [feature.clone()].into_iter().collect();
        for _ in 0..500 {
            generator.record_outcome(&features, FeatureKind::Query, false);
        }
        generator.refresh_suppression();
        assert!(!generator.should_generate(&feature, FeatureKind::Query));
        // Other comparison operators remain available.
        assert!(generator.should_generate(&Feature::binary_op(BinaryOp::Eq), FeatureKind::Query));
        // Generated queries no longer contain the suppressed operator.
        for _ in 0..100 {
            let query = generator.generate_query().unwrap();
            assert!(
                !query.features.contains(&feature),
                "suppressed feature still generated: {}",
                query.select
            );
        }
    }

    #[test]
    fn random_mode_ignores_feedback() {
        let mut generator = generator_with_schema(false);
        let feature = Feature::binary_op(BinaryOp::NullSafeEq);
        let features: FeatureSet = [feature.clone()].into_iter().collect();
        for _ in 0..500 {
            generator.record_outcome(&features, FeatureKind::Query, false);
        }
        assert!(generator.should_generate(&feature, FeatureKind::Query));
    }

    #[test]
    fn perfect_knowledge_only_generates_known_features() {
        let supported: BTreeSet<Feature> = [
            Feature::statement("STMT_SELECT"),
            Feature::clause("WHERE"),
            Feature::binary_op(BinaryOp::Eq),
            Feature::binary_op(BinaryOp::And),
        ]
        .into_iter()
        .collect();
        let mut generator =
            AdaptiveGenerator::with_knowledge(7, GeneratorConfig::default(), supported.clone());
        {
            let sql = "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)";
            generator.apply_success(&sql_parser::parse_statement(sql).unwrap());
        }
        for _ in 0..100 {
            let query = generator.generate_query().unwrap();
            for feature in query.features.iter() {
                let name = feature.name();
                // Structural features that have no alternatives are exempt.
                if name.starts_with("OP_") || name.starts_with("FN_") || name.starts_with("JOIN_") {
                    assert!(
                        supported.contains(feature),
                        "unknown feature generated: {feature}"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_schedule_grows_with_recorded_executions() {
        let mut generator = generator_with_schema(true);
        assert_eq!(generator.current_depth(), 1);
        let features = FeatureSet::new();
        for _ in 0..generator.config().depth_schedule_interval {
            generator.record_outcome(&features, FeatureKind::Query, true);
        }
        assert_eq!(generator.current_depth(), 2);
        for _ in 0..(2 * generator.config().depth_schedule_interval) {
            generator.record_outcome(&features, FeatureKind::Query, true);
        }
        assert_eq!(generator.current_depth(), generator.config().max_expr_depth);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = generator_with_schema(true);
        let mut b = generator_with_schema(true);
        for _ in 0..20 {
            assert_eq!(
                a.generate_query().unwrap().select.to_string(),
                b.generate_query().unwrap().select.to_string()
            );
        }
    }
}
