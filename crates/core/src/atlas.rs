//! The campaign **coverage atlas**: what the campaign has *explored*.
//!
//! The flight recorder (PR 8) answers what the campaign *did*; the atlas
//! answers what it has *reached* — which grammar features each oracle's
//! cases exercised per dialect, which engine coverage points (plan
//! operators, functions, operators, coercions, statement kinds) any
//! execution hit, and whether generation is **saturating**: how much new
//! coverage each window of cases still discovers, and how long the
//! campaign has gone without anything novel.
//!
//! # Determinism contract
//!
//! The rendered atlas ([`render_atlas_report`]) is **byte-identical for
//! any worker count, pool size and execution path**, and across a
//! kill-and-resume — the same contract as `TraceSummary`. Three design
//! rules make that hold:
//!
//! 1. **Feature novelty is per-database.** A case's novel features are
//!    counted against the features already seen *in its database*; the
//!    seen-set resets at every database boundary. The partitioned runner
//!    shards campaigns at database granularity, so a shard observes
//!    exactly the novelty stream the serial run observes for that
//!    database, and merging is pure summation.
//! 2. **Engine coverage is a union, never a stream.** Per-case first-hit
//!    attribution of engine points is inherently config-dependent across
//!    shard boundaries (a shard cannot know what an earlier database
//!    already reached), so the atlas only claims the invariant quantity:
//!    the set of points ever reached. Backends keep their reported sets
//!    monotone (see [`EngineCoverage`]), which makes the union
//!    independent of pool size and poll cadence.
//! 3. **Every aggregate merges by summation, union or max.** Window
//!    vectors add element-wise, gap histograms add bucket-wise
//!    ([`Log2Histogram`]), feature and point sets union — all
//!    commutative and associative, so shard order cannot matter.
//!
//! The per-database working state (`seen`, `dry_run`) rides along in
//! checkpoints so a resumed campaign continues the novelty stream exactly
//! where the killed one left off (no double-counting of re-executed
//! cases), but it is deliberately excluded from the rendered report: it
//! is positional state, not an invariant aggregate.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};

use crate::dbms::EngineCoverage;
use crate::feature::{Feature, FeatureSet};
use crate::hist::Log2Histogram;
use crate::oracle::OracleKind;
use crate::trace::{json_escape, TraceVerdict};

/// Cases per saturation window: novel-feature counts aggregate over
/// fixed windows of this many cases (indexed within a database), so the
/// decay of discovery is visible without storing per-case data.
pub const SATURATION_WINDOW: u64 = 32;

/// FNV-1a hasher for the per-database seen map. Two things matter on
/// this path: speed on short feature names (std's SipHash costs more
/// than the whole probe should) and a fixed key (SipHash is randomly
/// seeded per process; results would still be deterministic, but a
/// fixed hasher keeps even the map's internal behaviour reproducible).
#[derive(Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The per-database novelty map: feature → oracle-membership bitmask.
pub type SeenMap = HashMap<Feature, u8, BuildHasherDefault<FnvHasher>>;

/// The oracle's bit in a [`CampaignCoverage::seen`] mask.
pub fn oracle_bit(oracle: OracleKind) -> u8 {
    match oracle {
        OracleKind::Tlp => 1 << 0,
        OracleKind::NoRec => 1 << 1,
        OracleKind::Rollback => 1 << 2,
        OracleKind::Isolation => 1 << 3,
    }
}

/// Per-oracle coverage: how many cases ran, their verdict tally, and the
/// union of grammar features those cases exercised.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleCoverage {
    /// Cases observed for this oracle.
    pub cases: u64,
    /// Verdict name (`pass`, `invalid`, `bug`, `infra_failed`,
    /// `panicked`) → count.
    pub verdicts: BTreeMap<String, u64>,
    /// Union of the feature sets of every observed case.
    pub features: FeatureSet,
}

impl OracleCoverage {
    /// Accumulates another oracle's coverage (summation + union).
    pub fn merge(&mut self, other: &OracleCoverage) {
        self.cases += other.cases;
        for (verdict, count) in &other.verdicts {
            *self.verdicts.entry(verdict.clone()).or_default() += count;
        }
        self.features.extend(&other.features);
    }
}

/// The windowed saturation curve: how much *new* feature coverage each
/// window of cases discovered, and how dry the tail of the campaign ran.
/// Novelty is counted per database (see the module docs), so every field
/// merges by summation or max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SaturationCurve {
    /// Novel features discovered in window `w` (cases
    /// `[w*SATURATION_WINDOW, (w+1)*SATURATION_WINDOW)` of each
    /// database), summed over databases.
    pub windows: Vec<u64>,
    /// Cases observed in window `w`, summed over databases.
    pub window_cases: Vec<u64>,
    /// Total novel feature observations (equals the sum of `windows`).
    pub novel_features: u64,
    /// Cases after the last novel case, summed over finished databases —
    /// the "cases since anything new" saturation signal.
    pub trailing_dry_cases: u64,
    /// Longest run of consecutive non-novel cases in any database.
    pub longest_dry_run: u64,
    /// Distribution of the gaps (in cases) between consecutive novel
    /// cases within a database.
    pub gaps: Log2Histogram,
}

impl SaturationCurve {
    /// Accumulates another curve (element-wise/bucket-wise summation,
    /// max of maxima).
    pub fn merge(&mut self, other: &SaturationCurve) {
        if self.windows.len() < other.windows.len() {
            self.windows.resize(other.windows.len(), 0);
        }
        for (index, count) in other.windows.iter().enumerate() {
            self.windows[index] += count;
        }
        if self.window_cases.len() < other.window_cases.len() {
            self.window_cases.resize(other.window_cases.len(), 0);
        }
        for (index, count) in other.window_cases.iter().enumerate() {
            self.window_cases[index] += count;
        }
        self.novel_features += other.novel_features;
        self.trailing_dry_cases += other.trailing_dry_cases;
        self.longest_dry_run = self.longest_dry_run.max(other.longest_dry_run);
        self.gaps.merge(&other.gaps);
    }
}

/// The coverage atlas of one campaign (or a merged fleet of shards):
/// per-oracle feature coverage, the engine-plane point union, and the
/// saturation curve. Lives inside `CampaignReport`, so checkpoints carry
/// it and the partitioned runner merges it shard-wise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignCoverage {
    /// Oracle name (`TLP`, `NoREC`, …) → its coverage.
    pub oracles: BTreeMap<String, OracleCoverage>,
    /// Engine-side coverage points reached by any execution (union over
    /// pool slots, polls and shards).
    pub engine: EngineCoverage,
    /// The windowed saturation curve.
    pub saturation: SaturationCurve,
    /// Working state: features already seen in the **current database**
    /// (resets at every database boundary), each mapped to a bitmask of
    /// the oracles (see [`oracle_bit`]) whose per-oracle feature set is
    /// already known to contain it. The mask is a lookup-avoidance hint:
    /// the hot path pays one hashed probe per feature instead of an
    /// ordered-set walk here plus one in the oracle's set. Checkpointed
    /// (sorted at serialisation time), not rendered.
    pub seen: SeenMap,
    /// Working state: consecutive non-novel cases in the current
    /// database. Checkpointed, not rendered.
    pub dry_run: u64,
}

impl CampaignCoverage {
    /// Starts a new database: flushes the previous database's trailing
    /// dry run into the curve and resets the per-database working state.
    /// Idempotent on a fresh atlas, so calling it before the first
    /// database is fine.
    pub fn begin_database(&mut self) {
        self.saturation.trailing_dry_cases += self.dry_run;
        self.dry_run = 0;
        self.seen.clear();
    }

    /// Finishes the campaign: flushes the last database's trailing dry
    /// run. (Identical to [`CampaignCoverage::begin_database`] minus the
    /// reset — kept separate so call sites read as what they mean.)
    pub fn finish(&mut self) {
        self.saturation.trailing_dry_cases += self.dry_run;
        self.dry_run = 0;
    }

    /// Observes one completed case: tallies the verdict under the
    /// oracle, unions the case's features, and advances the saturation
    /// curve. `case_index` is the case's index **within its database**
    /// (the checkpoint cursor), which places it in a window.
    pub fn observe_case(
        &mut self,
        oracle: OracleKind,
        verdict: TraceVerdict,
        features: &FeatureSet,
        case_index: u64,
    ) {
        // Allocation-light on the hot path: the map keys exist after the
        // first case of each oracle/verdict, and feature inserts only
        // clone on first sight.
        if !self.oracles.contains_key(oracle.name()) {
            self.oracles
                .insert(oracle.name().to_string(), OracleCoverage::default());
        }
        let entry = self.oracles.get_mut(oracle.name()).expect("inserted above");
        entry.cases += 1;
        if !entry.verdicts.contains_key(verdict.name()) {
            entry.verdicts.insert(verdict.name().to_string(), 0);
        }
        *entry
            .verdicts
            .get_mut(verdict.name())
            .expect("inserted above") += 1;
        let bit = oracle_bit(oracle);
        let mut novel = 0u64;
        for feature in features.iter() {
            match self.seen.get_mut(feature) {
                Some(mask) => {
                    // Steady state: one map probe. The oracle-set union
                    // only runs the first time this oracle meets the
                    // feature in this database; afterwards the mask bit
                    // short-circuits it.
                    if *mask & bit == 0 {
                        if !entry.features.contains(feature) {
                            entry.features.insert(feature.clone());
                        }
                        *mask |= bit;
                    }
                }
                None => {
                    self.seen.insert(feature.clone(), bit);
                    novel += 1;
                    if !entry.features.contains(feature) {
                        entry.features.insert(feature.clone());
                    }
                }
            }
        }
        let window = (case_index / SATURATION_WINDOW) as usize;
        if self.saturation.windows.len() <= window {
            self.saturation.windows.resize(window + 1, 0);
            self.saturation.window_cases.resize(window + 1, 0);
        }
        self.saturation.windows[window] += novel;
        self.saturation.window_cases[window] += 1;
        if novel > 0 {
            self.saturation.novel_features += novel;
            self.saturation.gaps.record(self.dry_run);
            self.dry_run = 0;
        } else {
            self.dry_run += 1;
            self.saturation.longest_dry_run = self.saturation.longest_dry_run.max(self.dry_run);
        }
    }

    /// Unions a backend's engine-side coverage into the atlas. Reported
    /// sets are monotone, so polling more or less often cannot change
    /// the final union.
    pub fn absorb_engine(&mut self, coverage: &EngineCoverage) {
        self.engine.merge(coverage);
    }

    /// Accumulates another atlas (shard merge): pure summation/union/max
    /// everywhere, so merge order cannot matter.
    pub fn merge(&mut self, other: &CampaignCoverage) {
        for (oracle, coverage) in &other.oracles {
            self.oracles
                .entry(oracle.clone())
                .or_default()
                .merge(coverage);
        }
        self.engine.merge(&other.engine);
        self.saturation.merge(&other.saturation);
        // Working state: meaningful only while a single campaign is
        // running; merged atlases are final, but carry the union/sum so
        // merge stays lossless. Masks OR together: a set bit is a claim
        // the oracle's set contains the feature, which unions preserve.
        for (feature, mask) in &other.seen {
            *self.seen.entry(feature.clone()).or_insert(0) |= mask;
        }
        self.dry_run += other.dry_run;
    }

    /// Distinct grammar features reached across all oracles.
    pub fn distinct_features(&self) -> usize {
        let mut union: BTreeSet<&Feature> = BTreeSet::new();
        for coverage in self.oracles.values() {
            union.extend(coverage.features.iter());
        }
        union.len()
    }

    /// The features of `universe` no oracle's case has exercised yet in
    /// the current database — the cold set the coverage-directed mode
    /// boosts.
    pub fn cold_features(&self, universe: &[Feature]) -> BTreeSet<Feature> {
        universe
            .iter()
            .filter(|feature| !self.seen.contains_key(feature))
            .cloned()
            .collect()
    }

    /// `true` when nothing was observed (fresh campaign or a backend
    /// with no coverage at all).
    pub fn is_empty(&self) -> bool {
        self.oracles.is_empty() && self.engine.is_empty() && self.saturation.windows.is_empty()
    }

    /// Renders the atlas body (see [`render_atlas_report`] for the
    /// dialect-stamped entry point). Only invariant aggregates are
    /// rendered, making this the byte-identity witness for the
    /// determinism contract.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (oracle, coverage) in &self.oracles {
            let _ = write!(
                out,
                "oracle {oracle} cases {} features {}",
                coverage.cases,
                coverage.features.len()
            );
            for verdict in ["pass", "invalid", "bug", "infra_failed", "panicked"] {
                let count = coverage.verdicts.get(verdict).copied().unwrap_or(0);
                let _ = write!(out, " {verdict} {count}");
            }
            out.push('\n');
            out.push_str("  features");
            for feature in coverage.features.iter() {
                let _ = write!(out, " {feature}");
            }
            out.push('\n');
        }
        for (plane, points) in &self.engine.planes {
            let _ = write!(out, "engine {plane} points {}", points.len());
            for point in points {
                let _ = write!(out, " {point}");
            }
            out.push('\n');
        }
        let curve = &self.saturation;
        let _ = writeln!(
            out,
            "saturation novel {} trailing_dry {} longest_dry {}",
            curve.novel_features, curve.trailing_dry_cases, curve.longest_dry_run
        );
        for (index, (novel, cases)) in curve
            .windows
            .iter()
            .zip(curve.window_cases.iter())
            .enumerate()
        {
            let _ = writeln!(out, "  w{index} cases {cases} novel {novel}");
        }
        if !curve.gaps.is_empty() {
            let _ = writeln!(
                out,
                "  gaps count {} sum {} max {}",
                curve.gaps.count(),
                curve.gaps.sum(),
                curve.gaps.max()
            );
            for (index, lower, count) in curve.gaps.nonzero_buckets() {
                let _ = writeln!(out, "    b{index} ({lower}+) {count}");
            }
        }
        out
    }

    /// One self-validating JSON line describing the atlas — the payload
    /// the tracer appends to the flight-recorder JSONL at every
    /// checkpoint flush.
    pub fn to_json_line(&self, dialect: &str) -> String {
        let mut out = String::from("{\"type\":\"coverage_atlas\",\"dialect\":\"");
        json_escape(&mut out, dialect);
        out.push_str("\",\"oracles\":{");
        for (index, (oracle, coverage)) in self.oracles.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, oracle);
            let _ = write!(out, "\":{{\"cases\":{},\"verdicts\":{{", coverage.cases);
            for (vi, (verdict, count)) in coverage.verdicts.iter().enumerate() {
                if vi > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(&mut out, verdict);
                let _ = write!(out, "\":{count}");
            }
            out.push_str("},\"features\":[");
            for (fi, feature) in coverage.features.iter().enumerate() {
                if fi > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(&mut out, feature.name());
                out.push('"');
            }
            out.push_str("]}");
        }
        out.push_str("},\"engine\":{");
        for (index, (plane, points)) in self.engine.planes.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, plane);
            out.push_str("\":[");
            for (pi, point) in points.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(&mut out, point);
                out.push('"');
            }
            out.push(']');
        }
        let curve = &self.saturation;
        let _ = write!(
            out,
            "}},\"saturation\":{{\"novel\":{},\"trailing_dry\":{},\"longest_dry\":{},\"windows\":[",
            curve.novel_features, curve.trailing_dry_cases, curve.longest_dry_run
        );
        for (index, novel) in curve.windows.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "{novel}");
        }
        out.push_str("],\"window_cases\":[");
        for (index, cases) in curve.window_cases.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "{cases}");
        }
        let _ = write!(
            out,
            "],\"gaps\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
            curve.gaps.count(),
            curve.gaps.sum(),
            curve.gaps.max()
        );
        for (index, (bucket, _, count)) in curve.gaps.nonzero_buckets().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bucket},{count}]");
        }
        out.push_str("]}}}\n");
        out
    }
}

/// Renders a campaign report's coverage atlas: the canonical
/// byte-identity witness (any worker count, pool size, execution path
/// and kill-at-k resume must produce this exact text).
pub fn render_atlas_report(report: &crate::campaign::CampaignReport) -> String {
    format!(
        "=== coverage atlas: {} ===\n{}",
        report.dbms_name,
        report.coverage.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_jsonl;

    fn features(names: &[&str]) -> FeatureSet {
        names.iter().map(|name| Feature::new(*name)).collect()
    }

    #[test]
    fn novelty_is_per_database_and_windows_accumulate() {
        let mut atlas = CampaignCoverage::default();
        atlas.begin_database();
        atlas.observe_case(
            OracleKind::Tlp,
            TraceVerdict::Pass,
            &features(&["A", "B"]),
            0,
        );
        atlas.observe_case(OracleKind::Tlp, TraceVerdict::Invalid, &features(&["A"]), 1);
        assert_eq!(atlas.saturation.novel_features, 2);
        assert_eq!(atlas.dry_run, 1);
        // A new database makes old features novel again.
        atlas.begin_database();
        atlas.observe_case(OracleKind::NoRec, TraceVerdict::Pass, &features(&["A"]), 0);
        assert_eq!(atlas.saturation.novel_features, 3);
        assert_eq!(atlas.saturation.trailing_dry_cases, 1);
        atlas.finish();
        assert_eq!(atlas.saturation.windows[0], 3);
        assert_eq!(atlas.saturation.window_cases[0], 3);
        assert_eq!(atlas.oracles["TLP"].cases, 2);
        assert_eq!(atlas.oracles["TLP"].verdicts["pass"], 1);
        assert_eq!(atlas.oracles["NoREC"].cases, 1);
    }

    #[test]
    fn merge_equals_serial_observation() {
        // Two single-database shards vs one atlas observing both
        // databases: identical rendered output (the shard-merge
        // contract).
        let mut serial = CampaignCoverage::default();
        let mut shard_a = CampaignCoverage::default();
        let mut shard_b = CampaignCoverage::default();
        serial.begin_database();
        shard_a.begin_database();
        for (case, set) in [&["A", "B"][..], &["B"], &["C"]].iter().enumerate() {
            serial.observe_case(
                OracleKind::Tlp,
                TraceVerdict::Pass,
                &features(set),
                case as u64,
            );
            shard_a.observe_case(
                OracleKind::Tlp,
                TraceVerdict::Pass,
                &features(set),
                case as u64,
            );
        }
        serial.begin_database();
        shard_b.begin_database();
        for (case, set) in [&["A"][..], &["D", "E"]].iter().enumerate() {
            serial.observe_case(
                OracleKind::Tlp,
                TraceVerdict::Bug,
                &features(set),
                case as u64,
            );
            shard_b.observe_case(
                OracleKind::Tlp,
                TraceVerdict::Bug,
                &features(set),
                case as u64,
            );
        }
        serial.finish();
        shard_a.finish();
        shard_b.finish();
        let mut merged = CampaignCoverage::default();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(merged.render(), serial.render());
        // Merge in the other order too (commutativity).
        let mut swapped = CampaignCoverage::default();
        swapped.merge(&shard_b);
        swapped.merge(&shard_a);
        assert_eq!(swapped.render(), serial.render());
    }

    #[test]
    fn engine_union_absorbs_duplicates() {
        let mut atlas = CampaignCoverage::default();
        let mut coverage = EngineCoverage::default();
        coverage.record("functions", "SIN");
        coverage.record("plan_operators", "seq_scan");
        atlas.absorb_engine(&coverage);
        atlas.absorb_engine(&coverage);
        assert_eq!(atlas.engine.total_points(), 2);
    }

    #[test]
    fn cold_features_shrink_as_coverage_grows() {
        let universe = vec![Feature::new("A"), Feature::new("B"), Feature::new("C")];
        let mut atlas = CampaignCoverage::default();
        atlas.begin_database();
        assert_eq!(atlas.cold_features(&universe).len(), 3);
        atlas.observe_case(OracleKind::Tlp, TraceVerdict::Pass, &features(&["B"]), 0);
        let cold = atlas.cold_features(&universe);
        assert_eq!(cold.len(), 2);
        assert!(!cold.contains(&Feature::new("B")));
    }

    #[test]
    fn json_line_validates() {
        let mut atlas = CampaignCoverage::default();
        atlas.begin_database();
        atlas.observe_case(
            OracleKind::Tlp,
            TraceVerdict::Pass,
            &features(&["A\"quote", "B"]),
            0,
        );
        let mut coverage = EngineCoverage::default();
        coverage.record("statements", "STMT_SELECT");
        atlas.absorb_engine(&coverage);
        atlas.finish();
        let line = atlas.to_json_line("sim");
        validate_jsonl(&line).expect("atlas JSON line must validate");
        assert!(line.starts_with("{\"type\":\"coverage_atlas\",\"dialect\":\"sim\""));
        assert!(line.ends_with("}\n"));
    }
}
