//! Metamorphic test oracles: Ternary Logic Partitioning (TLP),
//! Non-optimizing Reference Engine Construction (NoREC), the
//! transaction-rollback oracle, and the snapshot-isolation oracle.
//!
//! All oracles are DBMS-agnostic (Section 3, "Result validator"): they
//! derive, from a generated test case, equivalent workloads via purely
//! syntactic transformations and compare the results the DBMS returns for
//! them. TLP and NoREC transform a single query; the rollback oracle
//! transforms a multi-statement *session* — the same mutations bracketed by
//! `BEGIN…ROLLBACK`, `BEGIN…COMMIT` and plain autocommit must leave
//! observably identical (respectively: unchanged, identical, identical)
//! table states; the isolation oracle transforms a two-session concurrent
//! *schedule* — replaying its committed sessions serially in both commit
//! orders, the concurrent outcome must match at least one serial outcome.
//! Everything is measured through ordinary `SELECT *` probes so the
//! SQL-text-only contract is preserved.

use crate::dbms::{DbmsConnection, SERIALIZATION_FAILURE_MARKER};
use crate::feature::FeatureSet;
use sql_ast::{BeginMode, Expr, Select, SelectItem, Statement, TableWithJoins, Value};
use std::fmt;

/// Which oracle produced a verdict.
///
/// The ordering (declaration order) is only used for stable, deterministic
/// grouping — e.g. the trace summary's per-oracle latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OracleKind {
    /// Ternary Logic Partitioning (Rigger & Su, OOPSLA 2020).
    Tlp,
    /// Non-optimizing Reference Engine Construction (Rigger & Su, ESEC/FSE
    /// 2020).
    NoRec,
    /// Transaction-rollback oracle: `BEGIN…ROLLBACK` must be a no-op and
    /// `BEGIN…COMMIT` must match the auto-commit run, compared via 128-bit
    /// table fingerprints.
    Rollback,
    /// Snapshot-isolation oracle: a concurrent two-session schedule's final
    /// table fingerprints must match a serial replay of its committed
    /// sessions in at least one commit order.
    Isolation,
}

impl OracleKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Tlp => "TLP",
            OracleKind::NoRec => "NoREC",
            OracleKind::Rollback => "ROLLBACK",
            OracleKind::Isolation => "ISOLATION",
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bug-inducing test case as reported by an oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct BugReport {
    /// The oracle that found the discrepancy.
    pub oracle: OracleKind,
    /// What went wrong, in one line.
    pub description: String,
    /// The SQL statements that built the database state.
    pub setup: Vec<String>,
    /// The queries whose results disagreed.
    pub queries: Vec<String>,
    /// The feature set of the bug-inducing test case (used by the
    /// prioritizer).
    pub features: FeatureSet,
}

/// The outcome of applying an oracle to one generated query.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleOutcome {
    /// The derived queries agreed: no bug observed.
    Passed,
    /// A derived query failed to execute; the test case is invalid for this
    /// DBMS (this feeds the validity-rate metrics, not the bug list).
    Invalid(String),
    /// The results disagreed: a bug-inducing test case.
    Bug(Box<BugReport>),
}

impl OracleOutcome {
    /// `true` when a bug was found.
    pub fn is_bug(&self) -> bool {
        matches!(self, OracleOutcome::Bug(_))
    }

    /// `true` when every derived query executed successfully.
    pub fn is_valid(&self) -> bool {
        !matches!(self, OracleOutcome::Invalid(_))
    }
}

/// Strips clauses that would break the partitioning property (the original
/// TLP formulation applies to plain filter queries).
fn normalized_base(query: &Select) -> Select {
    let mut base = query.clone();
    base.distinct = false;
    base.order_by.clear();
    base.limit = None;
    base.offset = None;
    base.set_op = None;
    base.group_by.clear();
    base.having = None;
    base
}

/// Applies the TLP oracle: `Q` without a predicate must return the same
/// multiset of rows as the union of `Q WHERE p`, `Q WHERE NOT p` and
/// `Q WHERE p IS NULL`.
pub fn check_tlp(
    conn: &mut dyn DbmsConnection,
    query: &Select,
    predicate: &Expr,
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    if query.is_aggregate() {
        return OracleOutcome::Invalid("TLP base oracle skips aggregate queries".into());
    }
    // One reusable query: the four TLP variants only differ in their WHERE
    // clause, so the hot loop mutates it in place instead of cloning the
    // whole `Select` four times. SQL text is only rendered on the (cold)
    // bug path. The partition predicates `p`, `NOT p` and `p IS NULL` are
    // also exactly the root shapes the engine's compiled-plan cache shares:
    // the predicate `p` is closure-compiled once on the first partition and
    // reused — not recompiled, not re-walked — by the remaining ones.
    let mut work = normalized_base(query);
    let mut fingerprints: Vec<Vec<u128>> = Vec::with_capacity(4);
    // The partition predicates are derived by rewrapping ONE clone of the
    // predicate in place (`p` → `NOT p` → `p IS NULL`), so the hot loop
    // costs a single predicate clone per check.
    for step in 0..4u8 {
        work.where_clause = match (step, work.where_clause.take()) {
            (0, _) => None,
            (1, _) => Some(predicate.clone()),
            (2, Some(p)) => Some(p.not()),
            (3, Some(Expr::Unary { expr, .. })) => Some(expr.is_null()),
            _ => unreachable!("TLP partition rotation"),
        };
        match conn.query_ast(&work) {
            Ok(rs) => fingerprints.push(rs.multiset_fingerprint()),
            Err(err) => return OracleOutcome::Invalid(err),
        }
    }
    let mut partitioned: Vec<u128> = fingerprints[1]
        .iter()
        .chain(fingerprints[2].iter())
        .chain(fingerprints[3].iter())
        .copied()
        .collect();
    partitioned.sort_unstable();
    if partitioned == fingerprints[0] {
        OracleOutcome::Passed
    } else {
        OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Tlp,
            description: format!(
                "TLP mismatch: base query returned {} rows, the three partitions returned {} rows in total",
                fingerprints[0].len(),
                partitioned.len()
            ),
            setup: setup.to_vec(),
            queries: {
                // Cold path: rebuild and render the four variants.
                let variants = [
                    None,
                    Some(predicate.clone()),
                    Some(predicate.clone().not()),
                    Some(predicate.clone().is_null()),
                ];
                variants
                    .into_iter()
                    .map(|where_clause| {
                        work.where_clause = where_clause;
                        work.to_string()
                    })
                    .collect()
            },
            features: features.clone(),
        }))
    }
}

/// Applies the NoREC oracle: the number of rows returned by
/// `SELECT * FROM ... WHERE p` (optimizable) must equal the number of rows
/// for which the unoptimizable rewrite `SELECT (p IS TRUE) FROM ...`
/// evaluates the predicate to true.
pub fn check_norec(
    conn: &mut dyn DbmsConnection,
    query: &Select,
    predicate: &Expr,
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    if query.is_aggregate() {
        return OracleOutcome::Invalid("NoREC skips aggregate queries".into());
    }
    // One reusable query, as in `check_tlp`: the optimized arm and the
    // non-optimizable rewrite share everything but projections and WHERE.
    // The rewrite projects `(p) IS TRUE`, another root shape the engine's
    // compiled-plan cache unwraps, so the reference arm reuses the plan
    // compiled for `p` whenever the optimizer's predicate rewrite left the
    // optimized arm's WHERE clause unchanged.
    let mut work = normalized_base(query);
    work.projections = vec![SelectItem::Wildcard];
    work.where_clause = Some(predicate.clone());

    let optimized_rows = match conn.query_ast(&work) {
        Ok(rs) => rs.row_count(),
        Err(err) => return OracleOutcome::Invalid(err),
    };
    let optimized_pred = work.where_clause.take().expect("predicate still in place");
    work.projections = vec![SelectItem::aliased(optimized_pred.is_true(), "norec")];

    let reference_rows = match conn.query_ast(&work) {
        Ok(rs) => rs
            .rows
            .iter()
            .filter(|row| {
                matches!(
                    row.first(),
                    Some(Value::Boolean(true)) | Some(Value::Integer(1))
                )
            })
            .count(),
        Err(err) => return OracleOutcome::Invalid(err),
    };
    if optimized_rows == reference_rows {
        OracleOutcome::Passed
    } else {
        OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::NoRec,
            description: format!(
                "NoREC mismatch: optimized query returned {optimized_rows} rows, non-optimizable rewrite counted {reference_rows}"
            ),
            setup: setup.to_vec(),
            queries: {
                // Cold path: rebuild and render both arms.
                let reference_sql = work.to_string();
                work.projections = vec![SelectItem::Wildcard];
                work.where_clause = Some(predicate.clone());
                vec![work.to_string(), reference_sql]
            },
            features: features.clone(),
        }))
    }
}

// ------------------------------------------------------ rollback oracle ----

/// The wildcard probe query the rollback oracle fingerprints a table with.
fn probe_query(table: &str) -> Select {
    Select {
        projections: vec![SelectItem::Wildcard],
        from: vec![TableWithJoins::table(table)],
        ..Select::new()
    }
}

/// The session's *net effect* under sound savepoint semantics: the
/// statements that survive once every `SAVEPOINT s … ROLLBACK TO s` region
/// is rewound. This is the auto-commit reference workload the committed
/// transaction is compared against. Returns `None` for malformed sessions
/// (a `ROLLBACK TO` without its savepoint, or stray `BEGIN`/`COMMIT`/
/// `ROLLBACK` — the oracle adds the outer bracketing itself).
fn net_effect(session: &[Statement]) -> Option<Vec<&Statement>> {
    let mut out: Vec<&Statement> = Vec::new();
    // Active savepoints: name (lowercased) plus the length of `out` when
    // the savepoint was taken.
    let mut savepoints: Vec<(String, usize)> = Vec::new();
    for stmt in session {
        match stmt {
            Statement::Savepoint(name) => {
                savepoints.push((name.to_ascii_lowercase(), out.len()));
            }
            Statement::RollbackTo(name) => {
                let key = name.to_ascii_lowercase();
                let at = savepoints.iter().rposition(|(n, _)| *n == key)?;
                out.truncate(savepoints[at].1);
                // The savepoint survives its own ROLLBACK TO; later ones do
                // not.
                savepoints.truncate(at + 1);
            }
            Statement::ReleaseSavepoint(name) => {
                // RELEASE keeps the changes; the savepoint (and every later
                // one) disappears.
                let key = name.to_ascii_lowercase();
                let at = savepoints.iter().rposition(|(n, _)| *n == key)?;
                savepoints.truncate(at);
            }
            Statement::Begin(_) | Statement::Commit | Statement::Rollback => return None,
            other => out.push(other),
        }
    }
    Some(out)
}

/// Executes one statement of a transactional session. Transaction-control
/// rejections abort the check as *invalid* (that is the feedback the
/// adaptive generator learns dialect transaction support from); ordinary
/// DML failures are tolerated — the engine is deterministic, so the same
/// statement fails identically in every arm.
fn run_session_statement(conn: &mut dyn DbmsConnection, stmt: &Statement) -> Result<(), String> {
    let outcome = conn.execute_ast(stmt);
    if stmt.is_txn_control() {
        if let crate::dbms::StatementOutcome::Failure(msg) = outcome {
            return Err(msg);
        }
    }
    Ok(())
}

/// Rebuilds the database state the campaign's setup log describes.
///
/// Ordinary replay failures are tolerated (they mirror the original
/// outcomes), but an *infrastructure* failure mid-replay aborts the
/// rebuild: the statement it hit was silently skipped, so the rebuilt
/// state no longer matches the setup log and any verdict (or checkpoint)
/// taken from it would bake the corruption in. Surfacing the marked
/// message lets the supervisor classify the incident and retry the case.
fn rebuild(conn: &mut dyn DbmsConnection, setup: &[String]) -> Result<(), String> {
    conn.reset();
    for sql in setup {
        if let crate::dbms::StatementOutcome::Failure(message) = conn.execute(sql) {
            if message.contains(crate::supervisor::INFRA_MARKER) {
                return Err(message);
            }
        }
    }
    Ok(())
}

/// The stateful oracles' reset-to-setup-state bookkeeping.
///
/// `capture` rebuilds the connection from the setup log once and asks the
/// backend for a checkpoint of that state; every later `reset_to` restores
/// the checkpoint — an O(tables) copy-on-write clone on the simulated
/// fleet — and only falls back to the O(rows) SQL-text setup replay when
/// the backend has no snapshot facility. Restored and replayed states are
/// observably identical, so verdicts never depend on which path ran.
struct SetupState<'a> {
    setup: &'a [String],
    checkpoint: Option<crate::dbms::StateCheckpoint>,
}

impl<'a> SetupState<'a> {
    /// Errors carry the infrastructure marker: the capture rebuild ran with
    /// the case's faults armed, and a fault that hit a replay statement must
    /// become an incident, not a checkpointed half-built state.
    fn capture(
        conn: &mut dyn DbmsConnection,
        setup: &'a [String],
    ) -> Result<SetupState<'a>, String> {
        rebuild(conn, setup)?;
        Ok(SetupState {
            setup,
            checkpoint: conn.checkpoint(),
        })
    }

    fn reset_to(&self, conn: &mut dyn DbmsConnection) -> Result<(), String> {
        if let Some(checkpoint) = &self.checkpoint {
            if conn.restore(checkpoint) {
                return Ok(());
            }
        }
        rebuild(conn, self.setup)
    }
}

/// Applies the transaction-rollback oracle to a mutation session against
/// `table`.
///
/// Three arms run from the identical rebuilt state:
///
/// 1. **auto-commit** — the session's net-effect statements, no transaction:
///    the reference state `A`;
/// 2. **`BEGIN` … session … `ROLLBACK`** — must leave the table fingerprint
///    exactly where it started (a violated identity is a *lost rollback*);
/// 3. **`BEGIN` … session … `COMMIT`** — must reproduce `A` (a divergence is
///    a *phantom commit* or mis-scoped savepoint rewind).
///
/// Fingerprints are the oracles' usual order-insensitive 128-bit row-hash
/// multisets, obtained through plain `SELECT *` probes — the platform never
/// reads engine state directly, preserving the SQL-text-only contract.
pub fn check_rollback(
    conn: &mut dyn DbmsConnection,
    table: &str,
    session: &[Statement],
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    // Capture the setup state once; the arms and the exit path below
    // restore it (checkpoint-restore when the backend supports it, setup
    // replay otherwise).
    let state = match SetupState::capture(conn, setup) {
        Ok(state) => state,
        Err(message) => return OracleOutcome::Invalid(message),
    };
    let outcome = check_rollback_arms(conn, table, session, features, &state);
    // The campaign's invariant is that between test cases the connection
    // reflects exactly the setup log; the arms above committed mutations,
    // so restore before handing the connection back. A fault-hit restore
    // outranks the verdict: the supervisor recovers and retries the case.
    match state.reset_to(conn) {
        Ok(()) => outcome,
        Err(message) => OracleOutcome::Invalid(message),
    }
}

fn check_rollback_arms(
    conn: &mut dyn DbmsConnection,
    table: &str,
    session: &[Statement],
    features: &FeatureSet,
    state: &SetupState<'_>,
) -> OracleOutcome {
    let setup = state.setup;
    let Some(reference) = net_effect(session) else {
        return OracleOutcome::Invalid("malformed transactional session".into());
    };
    let probe = probe_query(table);
    let fingerprint =
        |conn: &mut dyn DbmsConnection| conn.query_ast(&probe).map(|rs| rs.multiset_fingerprint());

    // Arm 1: auto-commit reference (the caller's capture just rebuilt the
    // setup state).
    let base = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };
    for stmt in &reference {
        if let Err(err) = run_session_statement(conn, stmt) {
            return OracleOutcome::Invalid(err);
        }
    }
    let auto_commit = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };

    // Arm 2: BEGIN … ROLLBACK must be a no-op.
    if let Err(message) = state.reset_to(conn) {
        return OracleOutcome::Invalid(message);
    }
    let begin = Statement::begin();
    for stmt in std::iter::once(&begin)
        .chain(session.iter())
        .chain(std::iter::once(&Statement::Rollback))
    {
        if let Err(err) = run_session_statement(conn, stmt) {
            return OracleOutcome::Invalid(err);
        }
    }
    let rolled_back = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };
    if rolled_back != base {
        return OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Rollback,
            description: format!(
                "rollback oracle: BEGIN…ROLLBACK changed {table} ({} rows before, {} after)",
                base.len(),
                rolled_back.len()
            ),
            setup: setup.to_vec(),
            queries: render_session(table, session, Statement::Rollback),
            features: features.clone(),
        }));
    }

    // Arm 3: BEGIN … COMMIT must match the auto-commit reference.
    for stmt in std::iter::once(&begin)
        .chain(session.iter())
        .chain(std::iter::once(&Statement::Commit))
    {
        if let Err(err) = run_session_statement(conn, stmt) {
            return OracleOutcome::Invalid(err);
        }
    }
    let committed = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };
    if committed != auto_commit {
        return OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Rollback,
            description: format!(
                "rollback oracle: BEGIN…COMMIT diverged from auto-commit on {table} \
                 ({} rows committed, {} rows expected)",
                committed.len(),
                auto_commit.len()
            ),
            setup: setup.to_vec(),
            queries: render_session(table, session, Statement::Commit),
            features: features.clone(),
        }));
    }
    OracleOutcome::Passed
}

/// Cold path: renders the bracketed session (plus the probe) for a bug
/// report.
fn render_session(table: &str, session: &[Statement], closer: Statement) -> Vec<String> {
    let mut out = Vec::with_capacity(session.len() + 3);
    out.push(Statement::begin().to_string());
    out.extend(session.iter().map(Statement::to_string));
    out.push(closer.to_string());
    out.push(probe_query(table).to_string());
    out
}

// ----------------------------------------------------- isolation oracle ----

/// One session of a concurrent schedule: its `BEGIN` mode, body statements
/// and closing statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionScript {
    /// The `BEGIN` mode the oracle opens the session with.
    pub begin: BeginMode,
    /// The session body: DML only (the oracle supplies `BEGIN` and the
    /// closer itself, exactly like the rollback oracle's bracketing).
    pub statements: Vec<Statement>,
    /// `true` → the session closes with `COMMIT`; `false` → `ROLLBACK`.
    pub commit: bool,
}

impl SessionScript {
    /// Total steps this session contributes to an interleaving: `BEGIN`,
    /// every body statement, and the closer.
    pub fn step_count(&self) -> usize {
        self.statements.len() + 2
    }

    /// The statement executed at `step` (0 = `BEGIN`, then the body, last
    /// the closer). Returns an owned statement for the bracketing steps.
    fn step(&self, step: usize) -> Statement {
        if step == 0 {
            Statement::Begin(self.begin)
        } else if step <= self.statements.len() {
            self.statements[step - 1].clone()
        } else if self.commit {
            Statement::Commit
        } else {
            Statement::Rollback
        }
    }
}

/// A deterministic two-session concurrent schedule: the per-session scripts
/// plus an explicit interleaving (one session index per step), so replaying
/// the schedule is byte-reproducible — no timing, no real threads.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The tables the oracle probes (sorted, deduplicated).
    pub tables: Vec<String>,
    /// The session scripts (two for every generated schedule).
    pub sessions: Vec<SessionScript>,
    /// The step list: `interleaving[k]` names the session executing its
    /// next pending step at position `k`. Must contain exactly
    /// [`SessionScript::step_count`] occurrences of each session index.
    pub interleaving: Vec<u8>,
}

impl Schedule {
    /// Whether the interleaving covers every session's steps exactly once.
    pub fn is_well_formed(&self) -> bool {
        let mut counts = vec![0usize; self.sessions.len()];
        for &s in &self.interleaving {
            match counts.get_mut(s as usize) {
                Some(c) => *c += 1,
                None => return false,
            }
        }
        counts
            .iter()
            .zip(&self.sessions)
            .all(|(&c, script)| c == script.step_count())
    }

    /// Cold path: renders the interleaved schedule (with per-step session
    /// labels) plus the probes, for bug reports.
    pub fn replay_script(&self) -> Vec<String> {
        let mut cursors = vec![0usize; self.sessions.len()];
        let mut out = Vec::with_capacity(self.interleaving.len() + self.tables.len());
        for &s in &self.interleaving {
            let s = s as usize;
            let stmt = self.sessions[s].step(cursors[s]);
            cursors[s] += 1;
            out.push(format!("/*session {s}*/ {stmt}"));
        }
        for table in &self.tables {
            out.push(probe_query(table).to_string());
        }
        out
    }
}

/// The result of one isolation check: the oracle verdict plus how many
/// commits were rejected by the DBMS's conflict detection (reported as the
/// campaign's conflict-abort rate; aborts are legitimate outcomes, never
/// bugs).
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationVerdict {
    /// The oracle verdict.
    pub outcome: OracleOutcome,
    /// Commits rejected with a serialization failure during the concurrent
    /// arm.
    pub conflict_aborts: u64,
}

impl IsolationVerdict {
    fn invalid(message: impl Into<String>, conflict_aborts: u64) -> IsolationVerdict {
        IsolationVerdict {
            outcome: OracleOutcome::Invalid(message.into()),
            conflict_aborts,
        }
    }
}

/// Fingerprints every schedule table through `SELECT *` probes.
fn probe_tables(
    conn: &mut dyn DbmsConnection,
    tables: &[String],
) -> Result<Vec<Vec<u128>>, String> {
    tables
        .iter()
        .map(|t| {
            conn.query_ast(&probe_query(t))
                .map(|rs| rs.multiset_fingerprint())
        })
        .collect()
}

/// Applies the snapshot-isolation oracle to a concurrent schedule.
///
/// **Concurrent arm.** From the rebuilt setup state, the oracle opens one
/// extra connection per session ([`DbmsConnection::open_session`]) and
/// executes the schedule's explicit interleaving step by step. A `COMMIT`
/// rejected with a serialization failure marks the session *conflict
/// aborted* — its remaining steps are skipped and the engine has already
/// rewound it; any other transaction-control rejection makes the whole
/// check invalid (that is the validity feedback dialect transaction support
/// is learned from). Ordinary DML failures are tolerated, exactly as in the
/// rollback oracle.
///
/// **Serial arms.** The sessions that actually committed are replayed
/// serially — each one `BEGIN`…body…`COMMIT` to completion — in every
/// commit order (two orders when both committed, one when one did, none
/// when none did, in which case the reference is the untouched setup
/// state).
///
/// **Verdict.** The concurrent arm's per-table 128-bit `SELECT *`
/// fingerprint multisets must equal those of at least one serial arm;
/// matching neither is a bug. Under sound snapshot isolation with
/// first-committer-wins this can never fire for the schedules the generator
/// emits (only session 0 reads tables it does not write), so every flag is
/// a genuine isolation violation — dirty read, lost update, non-repeatable
/// read, or a transaction fault leaking across the schedule.
pub fn check_isolation(
    conn: &mut dyn DbmsConnection,
    schedule: &Schedule,
    features: &FeatureSet,
    setup: &[String],
) -> IsolationVerdict {
    // Capture the setup state once; the serial arms and the exit path
    // restore it (checkpoint-restore when the backend supports it, setup
    // replay otherwise).
    let state = match SetupState::capture(conn, setup) {
        Ok(state) => state,
        Err(message) => return IsolationVerdict::invalid(message, 0),
    };
    let verdict = check_isolation_arms(conn, schedule, features, &state);
    // Restore the campaign invariant: the connection reflects the setup log.
    // A fault-hit restore outranks the verdict (see [`check_rollback`]).
    match state.reset_to(conn) {
        Ok(()) => verdict,
        Err(message) => IsolationVerdict::invalid(message, verdict.conflict_aborts),
    }
}

fn check_isolation_arms(
    conn: &mut dyn DbmsConnection,
    schedule: &Schedule,
    features: &FeatureSet,
    state: &SetupState<'_>,
) -> IsolationVerdict {
    let setup = state.setup;
    if !schedule.is_well_formed() {
        return IsolationVerdict::invalid("malformed schedule interleaving", 0);
    }
    // Concurrent arm (the caller's capture just rebuilt the setup state).
    let mut sessions: Vec<Box<dyn DbmsConnection>> = Vec::with_capacity(schedule.sessions.len());
    for _ in &schedule.sessions {
        match conn.open_session() {
            Some(session) => sessions.push(session),
            None => {
                return IsolationVerdict::invalid(
                    "backend has a single connection: concurrent schedules unsupported",
                    0,
                )
            }
        }
    }
    let mut cursors = vec![0usize; schedule.sessions.len()];
    let mut committed = vec![false; schedule.sessions.len()];
    let mut aborted = vec![false; schedule.sessions.len()];
    let mut conflict_aborts = 0u64;
    for &s in &schedule.interleaving {
        let s = s as usize;
        let script = &schedule.sessions[s];
        let step = cursors[s];
        cursors[s] += 1;
        if aborted[s] {
            // The engine already rewound this session; the rest of its
            // script (including the closer) is moot.
            continue;
        }
        let stmt = script.step(step);
        let outcome = sessions[s].execute_ast(&stmt);
        if let crate::dbms::StatementOutcome::Failure(message) = outcome {
            if matches!(stmt, Statement::Commit) && message.contains(SERIALIZATION_FAILURE_MARKER) {
                // First-committer-wins rejected the commit: a legitimate
                // conflict abort, not a dialect rejection and not a bug.
                conflict_aborts += 1;
                aborted[s] = true;
            } else if stmt.is_txn_control() {
                return IsolationVerdict::invalid(message, conflict_aborts);
            }
            // Ordinary DML failures are tolerated: the engine is
            // deterministic, so the same statement fails identically in
            // the serial replays.
        } else if step == script.step_count() - 1 && script.commit {
            committed[s] = true;
        }
    }
    drop(sessions);
    let concurrent = match probe_tables(conn, &schedule.tables) {
        Ok(fp) => fp,
        Err(err) => return IsolationVerdict::invalid(err, conflict_aborts),
    };

    // Serial arms: every commit order of the sessions that committed.
    let committed_sessions: Vec<usize> = (0..schedule.sessions.len())
        .filter(|&s| committed[s])
        .collect();
    let orders: Vec<Vec<usize>> = match committed_sessions.as_slice() {
        [] => vec![Vec::new()],
        [one] => vec![vec![*one]],
        [a, b] => vec![vec![*a, *b], vec![*b, *a]],
        more => {
            // Generated schedules have two sessions; handcrafted ones with
            // more get the two boundary orders (full permutation would be
            // factorial).
            let mut fwd = more.to_vec();
            let mut rev = more.to_vec();
            rev.reverse();
            fwd.dedup();
            vec![fwd, rev]
        }
    };
    let mut serial_fingerprints = Vec::with_capacity(orders.len());
    for order in &orders {
        if let Err(message) = state.reset_to(conn) {
            return IsolationVerdict::invalid(message, conflict_aborts);
        }
        if !order.is_empty() {
            let Some(mut serial) = conn.open_session() else {
                return IsolationVerdict::invalid(
                    "backend has a single connection: concurrent schedules unsupported",
                    conflict_aborts,
                );
            };
            for &s in order {
                let script = &schedule.sessions[s];
                for step in 0..script.step_count() {
                    let stmt = script.step(step);
                    let outcome = serial.execute_ast(&stmt);
                    if let crate::dbms::StatementOutcome::Failure(message) = outcome {
                        if stmt.is_txn_control() {
                            return IsolationVerdict::invalid(message, conflict_aborts);
                        }
                    }
                }
            }
        }
        match probe_tables(conn, &schedule.tables) {
            Ok(fp) => serial_fingerprints.push(fp),
            Err(err) => return IsolationVerdict::invalid(err, conflict_aborts),
        }
    }
    if serial_fingerprints.contains(&concurrent) {
        return IsolationVerdict {
            outcome: OracleOutcome::Passed,
            conflict_aborts,
        };
    }
    let order_names: Vec<String> = orders.iter().map(|order| format!("{order:?}")).collect();
    IsolationVerdict {
        outcome: OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Isolation,
            description: format!(
                "isolation oracle: concurrent schedule over [{}] diverged from every serial \
                 replay of its committed sessions (orders {})",
                schedule.tables.join(", "),
                order_names.join(", "),
            ),
            setup: setup.to_vec(),
            queries: schedule.replay_script(),
            features: features.clone(),
        })),
        conflict_aborts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbms::{QueryResult, StatementOutcome};
    use std::collections::BTreeMap;

    /// A scripted mock DBMS: maps SQL text to canned results.
    struct MockDbms {
        canned: BTreeMap<String, Result<QueryResult, String>>,
    }

    impl MockDbms {
        fn new() -> MockDbms {
            MockDbms {
                canned: BTreeMap::new(),
            }
        }

        fn with(mut self, sql: &str, rows: Vec<Vec<Value>>) -> Self {
            self.canned.insert(
                sql.to_string(),
                Ok(QueryResult {
                    columns: vec!["c0".into()],
                    rows,
                }),
            );
            self
        }

        fn with_error(mut self, sql: &str, err: &str) -> Self {
            self.canned.insert(sql.to_string(), Err(err.to_string()));
            self
        }
    }

    impl DbmsConnection for MockDbms {
        fn name(&self) -> &str {
            "mock"
        }
        fn execute(&mut self, _sql: &str) -> StatementOutcome {
            StatementOutcome::Success
        }
        fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
            self.canned
                .get(sql)
                .cloned()
                .unwrap_or_else(|| Err(format!("unexpected query: {sql}")))
        }
        fn reset(&mut self) {}
    }

    fn sample_query() -> (Select, Expr, FeatureSet) {
        let predicate = Expr::column("c0").eq(Expr::integer(1));
        let select = Select {
            projections: vec![SelectItem::expr(Expr::column("c0"))],
            from: vec![TableWithJoins::table("t0")],
            where_clause: Some(predicate.clone()),
            ..Select::new()
        };
        (select, predicate, FeatureSet::new())
    }

    #[test]
    fn tlp_passes_when_partitions_cover_base() {
        let (query, predicate, features) = sample_query();
        let mut mock = MockDbms::new()
            .with(
                "SELECT c0 FROM t0",
                vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
            )
            .with(
                "SELECT c0 FROM t0 WHERE (c0 = 1)",
                vec![vec![Value::Integer(1)]],
            )
            .with(
                "SELECT c0 FROM t0 WHERE (NOT (c0 = 1))",
                vec![vec![Value::Integer(2)]],
            )
            .with("SELECT c0 FROM t0 WHERE ((c0 = 1) IS NULL)", vec![]);
        let outcome = check_tlp(&mut mock, &query, &predicate, &features, &[]);
        assert_eq!(outcome, OracleOutcome::Passed);
    }

    #[test]
    fn tlp_reports_bug_when_row_is_lost() {
        let (query, predicate, features) = sample_query();
        // The NOT-partition "loses" row 2 — exactly the REPLACE-style bug
        // shape from Listing 2.
        let mut mock = MockDbms::new()
            .with(
                "SELECT c0 FROM t0",
                vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
            )
            .with(
                "SELECT c0 FROM t0 WHERE (c0 = 1)",
                vec![vec![Value::Integer(1)]],
            )
            .with("SELECT c0 FROM t0 WHERE (NOT (c0 = 1))", vec![])
            .with("SELECT c0 FROM t0 WHERE ((c0 = 1) IS NULL)", vec![]);
        let outcome = check_tlp(&mut mock, &query, &predicate, &features, &[]);
        assert!(outcome.is_bug());
        if let OracleOutcome::Bug(report) = outcome {
            assert_eq!(report.oracle, OracleKind::Tlp);
            assert_eq!(report.queries.len(), 4);
        }
    }

    #[test]
    fn tlp_marks_invalid_when_a_partition_fails() {
        let (query, predicate, features) = sample_query();
        let mut mock = MockDbms::new()
            .with("SELECT c0 FROM t0", vec![])
            .with_error("SELECT c0 FROM t0 WHERE (c0 = 1)", "syntax error");
        let outcome = check_tlp(&mut mock, &query, &predicate, &features, &[]);
        assert_eq!(outcome, OracleOutcome::Invalid("syntax error".into()));
        assert!(!outcome.is_valid());
    }

    #[test]
    fn norec_compares_row_counts() {
        let (query, predicate, features) = sample_query();
        let mut mock = MockDbms::new()
            .with(
                "SELECT * FROM t0 WHERE (c0 = 1)",
                vec![vec![Value::Integer(1)]],
            )
            .with(
                "SELECT ((c0 = 1) IS TRUE) AS norec FROM t0",
                vec![vec![Value::Boolean(true)], vec![Value::Boolean(false)]],
            );
        assert_eq!(
            check_norec(&mut mock, &query, &predicate, &features, &[]),
            OracleOutcome::Passed
        );
        let mut buggy = MockDbms::new()
            .with("SELECT * FROM t0 WHERE (c0 = 1)", vec![])
            .with(
                "SELECT ((c0 = 1) IS TRUE) AS norec FROM t0",
                vec![vec![Value::Boolean(true)]],
            );
        assert!(check_norec(&mut buggy, &query, &predicate, &features, &[]).is_bug());
    }

    #[test]
    fn net_effect_rewinds_savepoint_regions() {
        let ins = |v: i64| {
            Statement::Insert(sql_ast::Insert {
                table: "t0".into(),
                columns: vec!["c0".into()],
                values: vec![vec![Expr::integer(v)]],
                or_ignore: false,
            })
        };
        let session = vec![
            ins(1),
            Statement::Savepoint("sp1".into()),
            ins(2),
            Statement::RollbackTo("sp1".into()),
            ins(3),
        ];
        let net = net_effect(&session).unwrap();
        let rendered: Vec<String> = net.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "INSERT INTO t0 (c0) VALUES (1)",
                "INSERT INTO t0 (c0) VALUES (3)"
            ]
        );
        // A savepoint survives its own ROLLBACK TO.
        let twice = vec![
            Statement::Savepoint("s".into()),
            ins(1),
            Statement::RollbackTo("s".into()),
            ins(2),
            Statement::RollbackTo("s".into()),
        ];
        assert!(net_effect(&twice).unwrap().is_empty());
        // Malformed sessions are rejected.
        assert!(net_effect(&[Statement::RollbackTo("ghost".into())]).is_none());
        assert!(net_effect(&[Statement::begin()]).is_none());
        assert!(net_effect(&[Statement::ReleaseSavepoint("ghost".into())]).is_none());
        // RELEASE keeps changes and retires the savepoint (and later ones).
        let released = vec![
            Statement::Savepoint("a".into()),
            ins(1),
            Statement::ReleaseSavepoint("a".into()),
            ins(2),
        ];
        assert_eq!(net_effect(&released).unwrap().len(), 2);
        let after_release = vec![
            Statement::Savepoint("a".into()),
            Statement::ReleaseSavepoint("a".into()),
            Statement::RollbackTo("a".into()),
        ];
        assert!(net_effect(&after_release).is_none(), "savepoint retired");
    }

    #[test]
    fn aggregates_are_skipped() {
        let (mut query, predicate, features) = sample_query();
        query.projections = vec![SelectItem::expr(Expr::Aggregate {
            func: sql_ast::AggregateFunction::Count,
            arg: None,
            distinct: false,
        })];
        let mut mock = MockDbms::new();
        assert!(!check_tlp(&mut mock, &query, &predicate, &features, &[]).is_valid());
        assert!(!check_norec(&mut mock, &query, &predicate, &features, &[]).is_valid());
    }
}
