//! Metamorphic test oracles: Ternary Logic Partitioning (TLP),
//! Non-optimizing Reference Engine Construction (NoREC), and the
//! transaction-rollback oracle.
//!
//! All oracles are DBMS-agnostic (Section 3, "Result validator"): they
//! derive, from a generated test case, equivalent workloads via purely
//! syntactic transformations and compare the results the DBMS returns for
//! them. TLP and NoREC transform a single query; the rollback oracle
//! transforms a multi-statement *session* — the same mutations bracketed by
//! `BEGIN…ROLLBACK`, `BEGIN…COMMIT` and plain autocommit must leave
//! observably identical (respectively: unchanged, identical, identical)
//! table states, measured through ordinary `SELECT *` probes so the
//! SQL-text-only contract is preserved.

use crate::dbms::DbmsConnection;
use crate::feature::FeatureSet;
use sql_ast::{Expr, Select, SelectItem, Statement, TableWithJoins, Value};
use std::fmt;

/// Which oracle produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Ternary Logic Partitioning (Rigger & Su, OOPSLA 2020).
    Tlp,
    /// Non-optimizing Reference Engine Construction (Rigger & Su, ESEC/FSE
    /// 2020).
    NoRec,
    /// Transaction-rollback oracle: `BEGIN…ROLLBACK` must be a no-op and
    /// `BEGIN…COMMIT` must match the auto-commit run, compared via 128-bit
    /// table fingerprints.
    Rollback,
}

impl OracleKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Tlp => "TLP",
            OracleKind::NoRec => "NoREC",
            OracleKind::Rollback => "ROLLBACK",
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bug-inducing test case as reported by an oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct BugReport {
    /// The oracle that found the discrepancy.
    pub oracle: OracleKind,
    /// What went wrong, in one line.
    pub description: String,
    /// The SQL statements that built the database state.
    pub setup: Vec<String>,
    /// The queries whose results disagreed.
    pub queries: Vec<String>,
    /// The feature set of the bug-inducing test case (used by the
    /// prioritizer).
    pub features: FeatureSet,
}

/// The outcome of applying an oracle to one generated query.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleOutcome {
    /// The derived queries agreed: no bug observed.
    Passed,
    /// A derived query failed to execute; the test case is invalid for this
    /// DBMS (this feeds the validity-rate metrics, not the bug list).
    Invalid(String),
    /// The results disagreed: a bug-inducing test case.
    Bug(Box<BugReport>),
}

impl OracleOutcome {
    /// `true` when a bug was found.
    pub fn is_bug(&self) -> bool {
        matches!(self, OracleOutcome::Bug(_))
    }

    /// `true` when every derived query executed successfully.
    pub fn is_valid(&self) -> bool {
        !matches!(self, OracleOutcome::Invalid(_))
    }
}

/// Strips clauses that would break the partitioning property (the original
/// TLP formulation applies to plain filter queries).
fn normalized_base(query: &Select) -> Select {
    let mut base = query.clone();
    base.distinct = false;
    base.order_by.clear();
    base.limit = None;
    base.offset = None;
    base.set_op = None;
    base.group_by.clear();
    base.having = None;
    base
}

/// Applies the TLP oracle: `Q` without a predicate must return the same
/// multiset of rows as the union of `Q WHERE p`, `Q WHERE NOT p` and
/// `Q WHERE p IS NULL`.
pub fn check_tlp(
    conn: &mut dyn DbmsConnection,
    query: &Select,
    predicate: &Expr,
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    if query.is_aggregate() {
        return OracleOutcome::Invalid("TLP base oracle skips aggregate queries".into());
    }
    // One reusable query: the four TLP variants only differ in their WHERE
    // clause, so the hot loop mutates it in place instead of cloning the
    // whole `Select` four times. SQL text is only rendered on the (cold)
    // bug path. The partition predicates `p`, `NOT p` and `p IS NULL` are
    // also exactly the root shapes the engine's compiled-plan cache shares:
    // the predicate `p` is closure-compiled once on the first partition and
    // reused — not recompiled, not re-walked — by the remaining ones.
    let mut work = normalized_base(query);
    let mut fingerprints: Vec<Vec<u128>> = Vec::with_capacity(4);
    // The partition predicates are derived by rewrapping ONE clone of the
    // predicate in place (`p` → `NOT p` → `p IS NULL`), so the hot loop
    // costs a single predicate clone per check.
    for step in 0..4u8 {
        work.where_clause = match (step, work.where_clause.take()) {
            (0, _) => None,
            (1, _) => Some(predicate.clone()),
            (2, Some(p)) => Some(p.not()),
            (3, Some(Expr::Unary { expr, .. })) => Some(expr.is_null()),
            _ => unreachable!("TLP partition rotation"),
        };
        match conn.query_ast(&work) {
            Ok(rs) => fingerprints.push(rs.multiset_fingerprint()),
            Err(err) => return OracleOutcome::Invalid(err),
        }
    }
    let mut partitioned: Vec<u128> = fingerprints[1]
        .iter()
        .chain(fingerprints[2].iter())
        .chain(fingerprints[3].iter())
        .copied()
        .collect();
    partitioned.sort_unstable();
    if partitioned == fingerprints[0] {
        OracleOutcome::Passed
    } else {
        OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Tlp,
            description: format!(
                "TLP mismatch: base query returned {} rows, the three partitions returned {} rows in total",
                fingerprints[0].len(),
                partitioned.len()
            ),
            setup: setup.to_vec(),
            queries: {
                // Cold path: rebuild and render the four variants.
                let variants = [
                    None,
                    Some(predicate.clone()),
                    Some(predicate.clone().not()),
                    Some(predicate.clone().is_null()),
                ];
                variants
                    .into_iter()
                    .map(|where_clause| {
                        work.where_clause = where_clause;
                        work.to_string()
                    })
                    .collect()
            },
            features: features.clone(),
        }))
    }
}

/// Applies the NoREC oracle: the number of rows returned by
/// `SELECT * FROM ... WHERE p` (optimizable) must equal the number of rows
/// for which the unoptimizable rewrite `SELECT (p IS TRUE) FROM ...`
/// evaluates the predicate to true.
pub fn check_norec(
    conn: &mut dyn DbmsConnection,
    query: &Select,
    predicate: &Expr,
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    if query.is_aggregate() {
        return OracleOutcome::Invalid("NoREC skips aggregate queries".into());
    }
    // One reusable query, as in `check_tlp`: the optimized arm and the
    // non-optimizable rewrite share everything but projections and WHERE.
    // The rewrite projects `(p) IS TRUE`, another root shape the engine's
    // compiled-plan cache unwraps, so the reference arm reuses the plan
    // compiled for `p` whenever the optimizer's predicate rewrite left the
    // optimized arm's WHERE clause unchanged.
    let mut work = normalized_base(query);
    work.projections = vec![SelectItem::Wildcard];
    work.where_clause = Some(predicate.clone());

    let optimized_rows = match conn.query_ast(&work) {
        Ok(rs) => rs.row_count(),
        Err(err) => return OracleOutcome::Invalid(err),
    };
    let optimized_pred = work.where_clause.take().expect("predicate still in place");
    work.projections = vec![SelectItem::aliased(optimized_pred.is_true(), "norec")];

    let reference_rows = match conn.query_ast(&work) {
        Ok(rs) => rs
            .rows
            .iter()
            .filter(|row| {
                matches!(
                    row.first(),
                    Some(Value::Boolean(true)) | Some(Value::Integer(1))
                )
            })
            .count(),
        Err(err) => return OracleOutcome::Invalid(err),
    };
    if optimized_rows == reference_rows {
        OracleOutcome::Passed
    } else {
        OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::NoRec,
            description: format!(
                "NoREC mismatch: optimized query returned {optimized_rows} rows, non-optimizable rewrite counted {reference_rows}"
            ),
            setup: setup.to_vec(),
            queries: {
                // Cold path: rebuild and render both arms.
                let reference_sql = work.to_string();
                work.projections = vec![SelectItem::Wildcard];
                work.where_clause = Some(predicate.clone());
                vec![work.to_string(), reference_sql]
            },
            features: features.clone(),
        }))
    }
}

// ------------------------------------------------------ rollback oracle ----

/// The wildcard probe query the rollback oracle fingerprints a table with.
fn probe_query(table: &str) -> Select {
    Select {
        projections: vec![SelectItem::Wildcard],
        from: vec![TableWithJoins::table(table)],
        ..Select::new()
    }
}

/// The session's *net effect* under sound savepoint semantics: the
/// statements that survive once every `SAVEPOINT s … ROLLBACK TO s` region
/// is rewound. This is the auto-commit reference workload the committed
/// transaction is compared against. Returns `None` for malformed sessions
/// (a `ROLLBACK TO` without its savepoint, or stray `BEGIN`/`COMMIT`/
/// `ROLLBACK` — the oracle adds the outer bracketing itself).
fn net_effect(session: &[Statement]) -> Option<Vec<&Statement>> {
    let mut out: Vec<&Statement> = Vec::new();
    // Active savepoints: name (lowercased) plus the length of `out` when
    // the savepoint was taken.
    let mut savepoints: Vec<(String, usize)> = Vec::new();
    for stmt in session {
        match stmt {
            Statement::Savepoint(name) => {
                savepoints.push((name.to_ascii_lowercase(), out.len()));
            }
            Statement::RollbackTo(name) => {
                let key = name.to_ascii_lowercase();
                let at = savepoints.iter().rposition(|(n, _)| *n == key)?;
                out.truncate(savepoints[at].1);
                // The savepoint survives its own ROLLBACK TO; later ones do
                // not.
                savepoints.truncate(at + 1);
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => return None,
            other => out.push(other),
        }
    }
    Some(out)
}

/// Executes one statement of a transactional session. Transaction-control
/// rejections abort the check as *invalid* (that is the feedback the
/// adaptive generator learns dialect transaction support from); ordinary
/// DML failures are tolerated — the engine is deterministic, so the same
/// statement fails identically in every arm.
fn run_session_statement(conn: &mut dyn DbmsConnection, stmt: &Statement) -> Result<(), String> {
    let outcome = conn.execute_ast(stmt);
    if stmt.is_txn_control() {
        if let crate::dbms::StatementOutcome::Failure(msg) = outcome {
            return Err(msg);
        }
    }
    Ok(())
}

/// Rebuilds the database state the campaign's setup log describes.
fn rebuild(conn: &mut dyn DbmsConnection, setup: &[String]) {
    conn.reset();
    for sql in setup {
        let _ = conn.execute(sql);
    }
}

/// Applies the transaction-rollback oracle to a mutation session against
/// `table`.
///
/// Three arms run from the identical rebuilt state:
///
/// 1. **auto-commit** — the session's net-effect statements, no transaction:
///    the reference state `A`;
/// 2. **`BEGIN` … session … `ROLLBACK`** — must leave the table fingerprint
///    exactly where it started (a violated identity is a *lost rollback*);
/// 3. **`BEGIN` … session … `COMMIT`** — must reproduce `A` (a divergence is
///    a *phantom commit* or mis-scoped savepoint rewind).
///
/// Fingerprints are the oracles' usual order-insensitive 128-bit row-hash
/// multisets, obtained through plain `SELECT *` probes — the platform never
/// reads engine state directly, preserving the SQL-text-only contract.
pub fn check_rollback(
    conn: &mut dyn DbmsConnection,
    table: &str,
    session: &[Statement],
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    let outcome = check_rollback_arms(conn, table, session, features, setup);
    // The campaign's invariant is that between test cases the connection
    // reflects exactly the setup log; the arms above committed mutations,
    // so rebuild before handing the connection back.
    rebuild(conn, setup);
    outcome
}

fn check_rollback_arms(
    conn: &mut dyn DbmsConnection,
    table: &str,
    session: &[Statement],
    features: &FeatureSet,
    setup: &[String],
) -> OracleOutcome {
    let Some(reference) = net_effect(session) else {
        return OracleOutcome::Invalid("malformed transactional session".into());
    };
    let probe = probe_query(table);
    let fingerprint =
        |conn: &mut dyn DbmsConnection| conn.query_ast(&probe).map(|rs| rs.multiset_fingerprint());

    // Arm 1: auto-commit reference.
    rebuild(conn, setup);
    let base = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };
    for stmt in &reference {
        if let Err(err) = run_session_statement(conn, stmt) {
            return OracleOutcome::Invalid(err);
        }
    }
    let auto_commit = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };

    // Arm 2: BEGIN … ROLLBACK must be a no-op.
    rebuild(conn, setup);
    for stmt in std::iter::once(&Statement::Begin)
        .chain(session.iter())
        .chain(std::iter::once(&Statement::Rollback))
    {
        if let Err(err) = run_session_statement(conn, stmt) {
            return OracleOutcome::Invalid(err);
        }
    }
    let rolled_back = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };
    if rolled_back != base {
        return OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Rollback,
            description: format!(
                "rollback oracle: BEGIN…ROLLBACK changed {table} ({} rows before, {} after)",
                base.len(),
                rolled_back.len()
            ),
            setup: setup.to_vec(),
            queries: render_session(table, session, Statement::Rollback),
            features: features.clone(),
        }));
    }

    // Arm 3: BEGIN … COMMIT must match the auto-commit reference.
    for stmt in std::iter::once(&Statement::Begin)
        .chain(session.iter())
        .chain(std::iter::once(&Statement::Commit))
    {
        if let Err(err) = run_session_statement(conn, stmt) {
            return OracleOutcome::Invalid(err);
        }
    }
    let committed = match fingerprint(conn) {
        Ok(fp) => fp,
        Err(err) => return OracleOutcome::Invalid(err),
    };
    if committed != auto_commit {
        return OracleOutcome::Bug(Box::new(BugReport {
            oracle: OracleKind::Rollback,
            description: format!(
                "rollback oracle: BEGIN…COMMIT diverged from auto-commit on {table} \
                 ({} rows committed, {} rows expected)",
                committed.len(),
                auto_commit.len()
            ),
            setup: setup.to_vec(),
            queries: render_session(table, session, Statement::Commit),
            features: features.clone(),
        }));
    }
    OracleOutcome::Passed
}

/// Cold path: renders the bracketed session (plus the probe) for a bug
/// report.
fn render_session(table: &str, session: &[Statement], closer: Statement) -> Vec<String> {
    let mut out = Vec::with_capacity(session.len() + 3);
    out.push(Statement::Begin.to_string());
    out.extend(session.iter().map(Statement::to_string));
    out.push(closer.to_string());
    out.push(probe_query(table).to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbms::{QueryResult, StatementOutcome};
    use std::collections::BTreeMap;

    /// A scripted mock DBMS: maps SQL text to canned results.
    struct MockDbms {
        canned: BTreeMap<String, Result<QueryResult, String>>,
    }

    impl MockDbms {
        fn new() -> MockDbms {
            MockDbms {
                canned: BTreeMap::new(),
            }
        }

        fn with(mut self, sql: &str, rows: Vec<Vec<Value>>) -> Self {
            self.canned.insert(
                sql.to_string(),
                Ok(QueryResult {
                    columns: vec!["c0".into()],
                    rows,
                }),
            );
            self
        }

        fn with_error(mut self, sql: &str, err: &str) -> Self {
            self.canned.insert(sql.to_string(), Err(err.to_string()));
            self
        }
    }

    impl DbmsConnection for MockDbms {
        fn name(&self) -> &str {
            "mock"
        }
        fn execute(&mut self, _sql: &str) -> StatementOutcome {
            StatementOutcome::Success
        }
        fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
            self.canned
                .get(sql)
                .cloned()
                .unwrap_or_else(|| Err(format!("unexpected query: {sql}")))
        }
        fn reset(&mut self) {}
    }

    fn sample_query() -> (Select, Expr, FeatureSet) {
        let predicate = Expr::column("c0").eq(Expr::integer(1));
        let select = Select {
            projections: vec![SelectItem::expr(Expr::column("c0"))],
            from: vec![TableWithJoins::table("t0")],
            where_clause: Some(predicate.clone()),
            ..Select::new()
        };
        (select, predicate, FeatureSet::new())
    }

    #[test]
    fn tlp_passes_when_partitions_cover_base() {
        let (query, predicate, features) = sample_query();
        let mut mock = MockDbms::new()
            .with(
                "SELECT c0 FROM t0",
                vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
            )
            .with(
                "SELECT c0 FROM t0 WHERE (c0 = 1)",
                vec![vec![Value::Integer(1)]],
            )
            .with(
                "SELECT c0 FROM t0 WHERE (NOT (c0 = 1))",
                vec![vec![Value::Integer(2)]],
            )
            .with("SELECT c0 FROM t0 WHERE ((c0 = 1) IS NULL)", vec![]);
        let outcome = check_tlp(&mut mock, &query, &predicate, &features, &[]);
        assert_eq!(outcome, OracleOutcome::Passed);
    }

    #[test]
    fn tlp_reports_bug_when_row_is_lost() {
        let (query, predicate, features) = sample_query();
        // The NOT-partition "loses" row 2 — exactly the REPLACE-style bug
        // shape from Listing 2.
        let mut mock = MockDbms::new()
            .with(
                "SELECT c0 FROM t0",
                vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
            )
            .with(
                "SELECT c0 FROM t0 WHERE (c0 = 1)",
                vec![vec![Value::Integer(1)]],
            )
            .with("SELECT c0 FROM t0 WHERE (NOT (c0 = 1))", vec![])
            .with("SELECT c0 FROM t0 WHERE ((c0 = 1) IS NULL)", vec![]);
        let outcome = check_tlp(&mut mock, &query, &predicate, &features, &[]);
        assert!(outcome.is_bug());
        if let OracleOutcome::Bug(report) = outcome {
            assert_eq!(report.oracle, OracleKind::Tlp);
            assert_eq!(report.queries.len(), 4);
        }
    }

    #[test]
    fn tlp_marks_invalid_when_a_partition_fails() {
        let (query, predicate, features) = sample_query();
        let mut mock = MockDbms::new()
            .with("SELECT c0 FROM t0", vec![])
            .with_error("SELECT c0 FROM t0 WHERE (c0 = 1)", "syntax error");
        let outcome = check_tlp(&mut mock, &query, &predicate, &features, &[]);
        assert_eq!(outcome, OracleOutcome::Invalid("syntax error".into()));
        assert!(!outcome.is_valid());
    }

    #[test]
    fn norec_compares_row_counts() {
        let (query, predicate, features) = sample_query();
        let mut mock = MockDbms::new()
            .with(
                "SELECT * FROM t0 WHERE (c0 = 1)",
                vec![vec![Value::Integer(1)]],
            )
            .with(
                "SELECT ((c0 = 1) IS TRUE) AS norec FROM t0",
                vec![vec![Value::Boolean(true)], vec![Value::Boolean(false)]],
            );
        assert_eq!(
            check_norec(&mut mock, &query, &predicate, &features, &[]),
            OracleOutcome::Passed
        );
        let mut buggy = MockDbms::new()
            .with("SELECT * FROM t0 WHERE (c0 = 1)", vec![])
            .with(
                "SELECT ((c0 = 1) IS TRUE) AS norec FROM t0",
                vec![vec![Value::Boolean(true)]],
            );
        assert!(check_norec(&mut buggy, &query, &predicate, &features, &[]).is_bug());
    }

    #[test]
    fn net_effect_rewinds_savepoint_regions() {
        let ins = |v: i64| {
            Statement::Insert(sql_ast::Insert {
                table: "t0".into(),
                columns: vec!["c0".into()],
                values: vec![vec![Expr::integer(v)]],
                or_ignore: false,
            })
        };
        let session = vec![
            ins(1),
            Statement::Savepoint("sp1".into()),
            ins(2),
            Statement::RollbackTo("sp1".into()),
            ins(3),
        ];
        let net = net_effect(&session).unwrap();
        let rendered: Vec<String> = net.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "INSERT INTO t0 (c0) VALUES (1)",
                "INSERT INTO t0 (c0) VALUES (3)"
            ]
        );
        // A savepoint survives its own ROLLBACK TO.
        let twice = vec![
            Statement::Savepoint("s".into()),
            ins(1),
            Statement::RollbackTo("s".into()),
            ins(2),
            Statement::RollbackTo("s".into()),
        ];
        assert!(net_effect(&twice).unwrap().is_empty());
        // Malformed sessions are rejected.
        assert!(net_effect(&[Statement::RollbackTo("ghost".into())]).is_none());
        assert!(net_effect(&[Statement::Begin]).is_none());
    }

    #[test]
    fn aggregates_are_skipped() {
        let (mut query, predicate, features) = sample_query();
        query.projections = vec![SelectItem::expr(Expr::Aggregate {
            func: sql_ast::AggregateFunction::Count,
            arg: None,
            distinct: false,
        })];
        let mut mock = MockDbms::new();
        assert!(!check_tlp(&mut mock, &query, &predicate, &features, &[]).is_valid());
        assert!(!check_norec(&mut mock, &query, &predicate, &features, &[]).is_valid());
    }
}
