//! Shared log2-bucket histogram and pure-summation merge helpers.
//!
//! One implementation backs both the trace plane's latency histograms
//! ([`crate::trace::LatencyHistogram`] is an alias of [`Log2Histogram`])
//! and the coverage atlas's novelty-gap counters: every field is an
//! integer and merging is bucket-wise summation, so merges are exact,
//! commutative and associative — the property that makes partitioned
//! summaries byte-identical to serial ones.

/// A log2-bucket histogram of non-negative integer samples. Bucket `k`
/// (k ≥ 1) counts samples in `[2^(k-1), 2^k)`; bucket 0 counts exact
/// zeros. All fields are integers, so merging (bucket-wise summation) is
/// exact and order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.buckets[bucket_index(sample)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.max = self.max.max(sample);
    }

    /// Accumulates another histogram into this one (exact summation).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Restores one bucket from serialized state: adds `count` samples to
    /// bucket `index` without touching `sum`/`max` (those travel separately
    /// through [`Log2Histogram::restore_stats`]). Out-of-range indices are
    /// ignored — the checkpoint parser rejects them before calling this.
    pub fn restore_bucket(&mut self, index: usize, count: u64) {
        if index < self.buckets.len() {
            self.buckets[index] += count;
            self.count += count;
        }
    }

    /// Restores the serialized `sum`/`max` aggregates (summation and max —
    /// the same combination [`Log2Histogram::merge`] uses, so restoring
    /// into an empty histogram reproduces the saved one exactly).
    pub fn restore_stats(&mut self, sum: u64, max: u64) {
        self.sum = self.sum.saturating_add(sum);
        self.max = self.max.max(max);
    }

    /// The non-empty buckets, as `(bucket index, lower bound, count)` in
    /// ascending order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(index, count)| (index, bucket_lower_bound(index), *count))
    }
}

/// Bucket index for a sample: its bit width (0 for an exact zero).
pub fn bucket_index(sample: u64) -> usize {
    if sample == 0 {
        0
    } else {
        (64 - sample.leading_zeros()) as usize
    }
}

/// Lower bound of a bucket: 0 for bucket 0, `2^(k-1)` for bucket k.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for index in 1..=64usize {
            let low = bucket_lower_bound(index);
            assert_eq!(bucket_index(low), index);
        }
    }

    #[test]
    fn merge_is_exact_summation() {
        let mut a = Log2Histogram::default();
        let mut b = Log2Histogram::default();
        let mut all = Log2Histogram::default();
        for (target, sample) in [(0u8, 0u64), (0, 3), (1, 7), (1, 1024), (0, u64::MAX)] {
            if target == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            all.record(sample);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // Commutative: b.merge(a) gives the same result.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other, all);
        assert_eq!(all.count(), 5);
        assert_eq!(all.max(), u64::MAX);
    }
}
