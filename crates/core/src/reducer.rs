//! Bug-inducing test-case reduction.
//!
//! Before a bug-inducing test case is handed to a human (or counted in the
//! experiments), SQLancer++ reduces it: statements that are not needed to
//! reproduce the discrepancy are removed, and the predicate is shrunk by
//! replacing sub-expressions with their children (a simple syntactic
//! delta-debugging pass). Reduction re-validates the oracle verdict after
//! every candidate simplification.
//!
//! Transactional test cases ([`TxnCase`]) get their own pass
//! ([`BugReducer::reduce_txn`]): setup statements and session mutations are
//! dropped one at a time while the rollback oracle still flags the session.
//! The `BEGIN`/`COMMIT`/`ROLLBACK` bracketing is supplied by the oracle
//! itself and therefore can never be reduced away, and `SAVEPOINT` /
//! `ROLLBACK TO` / `RELEASE SAVEPOINT` pairs are kept consistent: a
//! candidate that would orphan a `ROLLBACK TO` or `RELEASE` is never
//! proposed, and dropping a `SAVEPOINT` drops its dependents in the same
//! candidate.
//!
//! Concurrent schedules ([`ScheduleCase`]) get a third pass
//! ([`BugReducer::reduce_schedule`]): setup statements and per-session body
//! statements are dropped one at a time while the isolation oracle still
//! flags the schedule. Dropping a body statement removes exactly its step
//! from the explicit interleaving, so the session bracketing (`BEGIN` and
//! the closer, which are oracle-supplied) and the **relative order** of
//! every surviving step are preserved — a reduced schedule is always a
//! subsequence of the original interleaving.

use crate::dbms::DbmsConnection;
use crate::feature::FeatureSet;
use crate::oracle::{
    check_isolation, check_norec, check_rollback, check_tlp, OracleKind, OracleOutcome, Schedule,
};
use sql_ast::{Expr, Select, Statement};

/// A reducible bug-inducing test case: the database-construction statements
/// plus the query and predicate the oracle flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducibleCase {
    /// SQL statements that build the database state.
    pub setup: Vec<String>,
    /// The flagged query (its `where_clause` holds the predicate).
    pub query: Select,
    /// The predicate the oracle transformed.
    pub predicate: Expr,
    /// The oracle that flagged the case.
    pub oracle: OracleKind,
    /// The feature set recorded at generation time.
    pub features: FeatureSet,
}

/// A reducible transactional test case: the setup plus the mutation session
/// the rollback oracle flagged (the oracle re-adds the outer transaction
/// bracketing on every re-validation).
#[derive(Debug, Clone, PartialEq)]
pub struct TxnCase {
    /// SQL statements that build the database state.
    pub setup: Vec<String>,
    /// The table the session mutates (and the oracle fingerprints).
    pub table: String,
    /// The session body: DML and `SAVEPOINT`/`ROLLBACK TO` statements.
    pub statements: Vec<Statement>,
    /// The feature set recorded at generation time.
    pub features: FeatureSet,
}

impl TxnCase {
    /// Renders the full replay script of the rollback oracle's transactional
    /// arms: the session bracketed by `BEGIN…ROLLBACK` and by
    /// `BEGIN…COMMIT`, each followed by the `SELECT *` probe whose
    /// fingerprint the oracle compares. This is what a bug report's
    /// `queries` carry so a human can reproduce the discrepancy verbatim.
    pub fn replay_script(&self) -> Vec<String> {
        let probe = format!("SELECT * FROM {}", self.table);
        let mut out = Vec::with_capacity(2 * (self.statements.len() + 3));
        for closer in [Statement::Rollback, Statement::Commit] {
            out.push(Statement::begin().to_string());
            out.extend(self.statements.iter().map(Statement::to_string));
            out.push(closer.to_string());
            out.push(probe.clone());
        }
        out
    }
}

/// A reducible concurrent-schedule test case: the setup plus the two-session
/// schedule the isolation oracle flagged (the oracle re-runs the schedule's
/// explicit interleaving on every re-validation).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleCase {
    /// SQL statements that build the database state.
    pub setup: Vec<String>,
    /// The concurrent schedule: session scripts plus the interleaving.
    pub schedule: Schedule,
    /// The feature set recorded at generation time.
    pub features: FeatureSet,
}

/// Statistics about a reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Setup statements before/after.
    pub setup_before: usize,
    /// Setup statements after reduction.
    pub setup_after: usize,
    /// Predicate AST nodes before reduction.
    pub predicate_nodes_before: usize,
    /// Predicate AST nodes after reduction.
    pub predicate_nodes_after: usize,
    /// Number of oracle re-validations performed.
    pub checks: usize,
}

/// Reduces a bug-inducing test case against a live connection.
pub struct BugReducer<'a> {
    conn: &'a mut dyn DbmsConnection,
    checks: usize,
    max_checks: usize,
}

impl<'a> BugReducer<'a> {
    /// Creates a reducer bounded to `max_checks` oracle re-validations.
    pub fn new(conn: &'a mut dyn DbmsConnection, max_checks: usize) -> BugReducer<'a> {
        BugReducer {
            conn,
            checks: 0,
            max_checks,
        }
    }

    /// Checks whether a candidate case still reproduces the bug.
    fn reproduces(&mut self, case: &ReducibleCase) -> bool {
        if self.checks >= self.max_checks {
            return false;
        }
        self.checks += 1;
        self.conn.reset();
        for sql in &case.setup {
            // Failed setup statements are tolerated: the remaining ones may
            // still reproduce the bug.
            let _ = self.conn.execute(sql);
        }
        let outcome = match case.oracle {
            OracleKind::Tlp => check_tlp(
                self.conn,
                &case.query,
                &case.predicate,
                &case.features,
                &case.setup,
            ),
            OracleKind::NoRec => check_norec(
                self.conn,
                &case.query,
                &case.predicate,
                &case.features,
                &case.setup,
            ),
            // Rollback-oracle cases are transactional sessions, reduced via
            // [`BugReducer::reduce_txn`] on a [`TxnCase`]; isolation cases
            // are schedules, reduced via [`BugReducer::reduce_schedule`] on
            // a [`ScheduleCase`]. A single-query `ReducibleCase` carries
            // neither.
            OracleKind::Rollback | OracleKind::Isolation => return false,
        };
        matches!(outcome, OracleOutcome::Bug(_))
    }

    /// Runs the reduction. Returns the reduced case and statistics; the
    /// returned case is guaranteed to still reproduce the bug (or, if the
    /// budget ran out, to be the best known reproducer).
    pub fn reduce(&mut self, case: &ReducibleCase) -> (ReducibleCase, ReductionStats) {
        let mut current = case.clone();
        let mut stats = ReductionStats {
            setup_before: case.setup.len(),
            predicate_nodes_before: case.predicate.node_count(),
            ..ReductionStats::default()
        };

        // Phase 1: drop setup statements one at a time (last to first, so
        // that later statements which depend on earlier ones go first).
        let mut i = current.setup.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            candidate.setup.remove(i);
            if self.reproduces(&candidate) {
                current = candidate;
            }
        }

        // Phase 2: shrink the predicate by replacing it with each of its
        // children (transitively) while the bug still reproduces.
        loop {
            let children: Vec<Expr> = current.predicate.children().into_iter().cloned().collect();
            let mut replaced = false;
            for child in children {
                let mut candidate = current.clone();
                candidate.predicate = child.clone();
                candidate.query.where_clause = Some(child.clone());
                if self.reproduces(&candidate) {
                    current = candidate;
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                break;
            }
        }

        stats.setup_after = current.setup.len();
        stats.predicate_nodes_after = current.predicate.node_count();
        stats.checks = self.checks;
        (current, stats)
    }

    /// Checks whether a candidate transactional case still reproduces the
    /// bug under the rollback oracle.
    fn reproduces_txn(&mut self, case: &TxnCase) -> bool {
        if self.checks >= self.max_checks {
            return false;
        }
        self.checks += 1;
        let outcome = check_rollback(
            self.conn,
            &case.table,
            &case.statements,
            &case.features,
            &case.setup,
        );
        matches!(outcome, OracleOutcome::Bug(_))
    }

    /// Whether every `ROLLBACK TO` / `RELEASE SAVEPOINT` in the session
    /// still has a matching earlier `SAVEPOINT` — candidates violating this
    /// would turn the bug into an unrelated "no such savepoint" error, so
    /// they are never proposed. `RELEASE` retires its savepoint (and every
    /// later one), mirroring the engine's frame merge.
    fn savepoints_consistent(statements: &[Statement]) -> bool {
        let mut names: Vec<String> = Vec::new();
        for stmt in statements {
            match stmt {
                Statement::Savepoint(n) => names.push(n.to_ascii_lowercase()),
                Statement::RollbackTo(n) if !names.contains(&n.to_ascii_lowercase()) => {
                    return false;
                }
                Statement::ReleaseSavepoint(n) => {
                    let key = n.to_ascii_lowercase();
                    let Some(at) = names.iter().rposition(|name| *name == key) else {
                        return false;
                    };
                    names.truncate(at);
                }
                _ => {}
            }
        }
        true
    }

    /// Reduces a transactional test case: setup statements first, then
    /// session statements, preserving the oracle-supplied transaction
    /// bracketing and the savepoint pairing throughout. The statistics
    /// reuse the predicate-node fields for the session statement counts.
    pub fn reduce_txn(&mut self, case: &TxnCase) -> (TxnCase, ReductionStats) {
        let mut current = case.clone();
        let mut stats = ReductionStats {
            setup_before: case.setup.len(),
            predicate_nodes_before: case.statements.len(),
            ..ReductionStats::default()
        };

        // Phase 1: drop setup statements (last to first).
        let mut i = current.setup.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            candidate.setup.remove(i);
            if self.reproduces_txn(&candidate) {
                current = candidate;
            }
        }

        // Phase 2: drop session statements (last to first). Dropping a
        // SAVEPOINT also drops every ROLLBACK TO and RELEASE that names it,
        // so a candidate is always a well-formed session.
        let mut i = current.statements.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            let removed = candidate.statements.remove(i);
            if let Statement::Savepoint(name) = &removed {
                let key = name.to_ascii_lowercase();
                candidate.statements.retain(|s| {
                    !matches!(s,
                        Statement::RollbackTo(n) | Statement::ReleaseSavepoint(n)
                            if n.to_ascii_lowercase() == key)
                });
            }
            if !Self::savepoints_consistent(&candidate.statements) {
                continue;
            }
            if self.reproduces_txn(&candidate) {
                i = i.min(candidate.statements.len());
                current = candidate;
            }
        }

        stats.setup_after = current.setup.len();
        stats.predicate_nodes_after = current.statements.len();
        stats.checks = self.checks;
        (current, stats)
    }

    /// Checks whether a candidate schedule still reproduces the bug under
    /// the isolation oracle.
    fn reproduces_schedule(&mut self, case: &ScheduleCase) -> bool {
        if self.checks >= self.max_checks {
            return false;
        }
        self.checks += 1;
        check_isolation(self.conn, &case.schedule, &case.features, &case.setup)
            .outcome
            .is_bug()
    }

    /// Removes session `session`'s body statement `index` from a schedule,
    /// dropping exactly its step from the interleaving so the relative
    /// order of every surviving step (and the oracle-supplied `BEGIN` /
    /// closer bracketing) is preserved. Body statement `index` is the
    /// `(index + 1)`-th interleaving occurrence of the session (occurrence
    /// 0 is its `BEGIN`).
    fn drop_schedule_statement(schedule: &mut Schedule, session: usize, index: usize) {
        schedule.sessions[session].statements.remove(index);
        let mut seen = 0usize;
        let target = index + 1;
        let position = schedule
            .interleaving
            .iter()
            .position(|&s| {
                if s as usize == session {
                    let here = seen == target;
                    seen += 1;
                    here
                } else {
                    false
                }
            })
            .expect("well-formed interleaving covers every step");
        schedule.interleaving.remove(position);
    }

    /// Reduces a concurrent-schedule test case: setup statements first,
    /// then each session's body statements (last to first, session by
    /// session), preserving the bracketing and the interleaving's relative
    /// order throughout. The statistics reuse the predicate-node fields for
    /// the total session statement counts.
    pub fn reduce_schedule(&mut self, case: &ScheduleCase) -> (ScheduleCase, ReductionStats) {
        let mut current = case.clone();
        let body_len =
            |c: &ScheduleCase| c.schedule.sessions.iter().map(|s| s.statements.len()).sum();
        let mut stats = ReductionStats {
            setup_before: case.setup.len(),
            predicate_nodes_before: body_len(case),
            ..ReductionStats::default()
        };

        // Phase 1: drop setup statements (last to first).
        let mut i = current.setup.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            candidate.setup.remove(i);
            if self.reproduces_schedule(&candidate) {
                current = candidate;
            }
        }

        // Phase 2: drop body statements per session (last to first).
        for session in 0..current.schedule.sessions.len() {
            let mut i = current.schedule.sessions[session].statements.len();
            while i > 0 {
                i -= 1;
                let mut candidate = current.clone();
                Self::drop_schedule_statement(&mut candidate.schedule, session, i);
                if self.reproduces_schedule(&candidate) {
                    current = candidate;
                }
            }
        }

        stats.setup_after = current.setup.len();
        stats.predicate_nodes_after = body_len(&current);
        stats.checks = self.checks;
        (current, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbms::{QueryResult, StatementOutcome};
    use sql_ast::{SelectItem, TableWithJoins, Value};

    /// A mock DBMS whose "bug" fires whenever the predicate SQL contains the
    /// token `NULLIF` — regardless of the setup statements, so the reducer
    /// should strip the setup entirely and shrink the predicate to the
    /// NULLIF-containing subtree.
    struct TokenBugDbms;

    impl DbmsConnection for TokenBugDbms {
        fn name(&self) -> &str {
            "token-bug"
        }
        fn execute(&mut self, _sql: &str) -> StatementOutcome {
            StatementOutcome::Success
        }
        fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
            // The "base" (no WHERE) query returns one row. Partition queries
            // return one row each when they contain NULLIF (so the union has
            // three rows — a mismatch), and behave consistently otherwise
            // (only the NOT-partition returns the row).
            let rows =
                if !sql.contains("WHERE") || sql.contains("NULLIF") || sql.contains("WHERE (NOT") {
                    vec![vec![Value::Integer(1)]]
                } else {
                    vec![]
                };
            Ok(QueryResult {
                columns: vec!["c0".into()],
                rows,
            })
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn reducer_strips_setup_and_shrinks_predicate() {
        let predicate = Expr::Function {
            func: sql_ast::ScalarFunction::Nullif,
            args: vec![Expr::integer(2), Expr::column("c0")],
        }
        .binary(sql_ast::BinaryOp::Neq, Expr::integer(1))
        .and(Expr::column("c0").eq(Expr::column("c0")));
        let query = Select {
            projections: vec![SelectItem::expr(Expr::column("c0"))],
            from: vec![TableWithJoins::table("t0")],
            where_clause: Some(predicate.clone()),
            ..Select::new()
        };
        let case = ReducibleCase {
            setup: vec![
                "CREATE TABLE t0 (c0 INT)".into(),
                "CREATE TABLE t_unused (c0 INT)".into(),
                "INSERT INTO t0 (c0) VALUES (1)".into(),
            ],
            query,
            predicate,
            oracle: OracleKind::Tlp,
            features: FeatureSet::new(),
        };
        let mut conn = TokenBugDbms;
        let mut reducer = BugReducer::new(&mut conn, 200);
        let (reduced, stats) = reducer.reduce(&case);
        // The mock bug does not depend on setup at all.
        assert!(reduced.setup.is_empty(), "{:?}", reduced.setup);
        // The predicate shrank to (a subtree containing) the NULLIF call.
        assert!(reduced.predicate.to_string().contains("NULLIF"));
        assert!(stats.predicate_nodes_after < stats.predicate_nodes_before);
        assert!(stats.checks > 0);
    }

    #[test]
    fn reducer_respects_check_budget() {
        let case = ReducibleCase {
            setup: (0..50)
                .map(|i| format!("CREATE TABLE t{i} (c0 INT)"))
                .collect(),
            query: Select {
                projections: vec![SelectItem::expr(Expr::column("c0"))],
                from: vec![TableWithJoins::table("t0")],
                where_clause: Some(Expr::column("c0").is_null()),
                ..Select::new()
            },
            predicate: Expr::column("c0").is_null(),
            oracle: OracleKind::Tlp,
            features: FeatureSet::new(),
        };
        let mut conn = TokenBugDbms;
        let mut reducer = BugReducer::new(&mut conn, 10);
        let (_, stats) = reducer.reduce(&case);
        assert!(stats.checks <= 10);
    }
}
