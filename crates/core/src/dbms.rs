//! The platform's only view of a DBMS under test.
//!
//! SQLancer++ is designed to test *any* SQL-based DBMS: the platform sends
//! SQL text, observes whether the statement succeeded or failed, and — for
//! queries — retrieves result rows. Nothing else (no schema metadata
//! queries, no query plans, no DBMS-specific interfaces). The
//! [`DbmsConnection`] trait captures exactly that interface; the paper's
//! ~16-lines-per-DBMS "manual effort" corresponds to [`DialectQuirks`].

use sql_ast::{row_fingerprint, Select, Statement, Value};

/// The marker substring by which the platform recognises a commit rejected
/// by the DBMS's write-write conflict detection (first-committer-wins under
/// snapshot isolation). The platform sees only SQL text and error strings —
/// this convention is the whole interface: a `COMMIT` failure whose message
/// contains this marker is a *conflict abort* (the transaction was rewound;
/// a legitimate, learnable outcome), not a dialect rejection and never a
/// bug.
pub const SERIALIZATION_FAILURE_MARKER: &str = "serialization failure";

/// The execution status of a non-query statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatementOutcome {
    /// The statement executed successfully.
    Success,
    /// The statement failed; the message is opaque to the platform (only
    /// used for logging and bug reports).
    Failure(String),
}

impl StatementOutcome {
    /// `true` for [`StatementOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, StatementOutcome::Success)
    }
}

/// A query result as observed through the driver: column names and rows of
/// values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// An order-insensitive fingerprint of the result rows, used by the
    /// oracles to compare two queries' results as multisets.
    ///
    /// Each row collapses to a 128-bit hash of its canonical dedup identity
    /// (integral-real and boolean normalisation included, see
    /// [`Value::fingerprint_into`](sql_ast::Value::fingerprint_into)); the
    /// sorted hashes form the multiset key. This is allocation-free per row,
    /// unlike the legacy `Vec<String>` fingerprint it replaced — result
    /// strings are only ever rendered on the bug-report path.
    pub fn multiset_fingerprint(&self) -> Vec<u128> {
        let mut keys: Vec<u128> = self.rows.iter().map(|row| row_fingerprint(row)).collect();
        keys.sort_unstable();
        keys
    }
}

/// The per-DBMS adaptations the paper describes as "manual effort"
/// (Section 6): connection parameters aside, a handful of behavioural
/// quirks. Everything else is learned by the adaptive generator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DialectQuirks {
    /// The DBMS requires an explicit `REFRESH TABLE <t>` before inserted
    /// rows become visible to queries (CrateDB-style eventual consistency).
    pub requires_refresh: bool,
    /// The DBMS requires an explicit `COMMIT` after DML (JDBC-autocommit-off
    /// style).
    pub requires_commit: bool,
}

/// Storage-versioning effectiveness counters a backend may expose:
/// copy-on-write snapshot accounting plus the commits its row-range
/// conflict detection admitted where table-level intent would have
/// aborted. Purely observational — campaigns report them ([`crate::CampaignMetrics`])
/// but never branch on them, so the SQL-text-only testing contract is
/// untouched (a wire-protocol backend simply reports none).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageMetrics {
    /// `BEGIN` snapshots taken by the backend's engine.
    pub txn_begins: u64,
    /// Table versions shared into snapshots at `BEGIN` (pointer bumps).
    pub tables_snapshotted: u64,
    /// Table versions actually deep-cloned on first write (CoW detaches).
    pub tables_cow_cloned: u64,
    /// Commits admitted by row-range write intent that table-level
    /// first-committer-wins validation would have aborted.
    pub conflicts_avoided: u64,
}

impl StorageMetrics {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &StorageMetrics) {
        self.txn_begins += other.txn_begins;
        self.tables_snapshotted += other.tables_snapshotted;
        self.tables_cow_cloned += other.tables_cow_cloned;
        self.conflicts_avoided += other.conflicts_avoided;
    }

    /// Counter-wise difference against an earlier sample of the same
    /// backend (saturating, so a backend swap mid-run cannot underflow).
    pub fn since(&self, earlier: &StorageMetrics) -> StorageMetrics {
        StorageMetrics {
            txn_begins: self.txn_begins.saturating_sub(earlier.txn_begins),
            tables_snapshotted: self
                .tables_snapshotted
                .saturating_sub(earlier.tables_snapshotted),
            tables_cow_cloned: self
                .tables_cow_cloned
                .saturating_sub(earlier.tables_cow_cloned),
            conflicts_avoided: self
                .conflicts_avoided
                .saturating_sub(earlier.conflicts_avoided),
        }
    }
}

/// Engine-side coverage a backend may expose: named planes (plan
/// operators, functions, operators, coercions, statements for the
/// simulated engine; statement kinds for a wire backend) each holding the
/// set of distinct points reached.
///
/// The contract that makes the coverage atlas deterministic: the sets a
/// connection reports are **cumulative for the connection's whole
/// lifetime** — monotone across `reset`, `restore` and database
/// boundaries. A point once reached never disappears, so a union over
/// pool slots, shards or polls is exactly "every point any execution
/// reached", independent of pool size, worker count and poll cadence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineCoverage {
    /// Plane name → distinct points reached on that plane.
    pub planes: std::collections::BTreeMap<String, std::collections::BTreeSet<String>>,
}

impl EngineCoverage {
    /// Adds every point of `other` (pure set union, order-independent).
    pub fn merge(&mut self, other: &EngineCoverage) {
        for (plane, points) in &other.planes {
            let mine = self.planes.entry(plane.clone()).or_default();
            for point in points {
                if !mine.contains(point) {
                    mine.insert(point.clone());
                }
            }
        }
    }

    /// Records a single point on a plane.
    pub fn record(&mut self, plane: &str, point: &str) {
        let mine = self.planes.entry(plane.to_string()).or_default();
        if !mine.contains(point) {
            mine.insert(point.to_string());
        }
    }

    /// Total distinct points across all planes.
    pub fn total_points(&self) -> usize {
        self.planes.values().map(|points| points.len()).sum()
    }

    /// `true` when no plane holds a point.
    pub fn is_empty(&self) -> bool {
        self.planes.values().all(|points| points.is_empty())
    }
}

/// A connection to a DBMS under test.
///
/// The platform drives the DBMS exclusively through this trait; the
/// `dbms-sim` crate implements it for the simulated dialect fleet, and a
/// real deployment would implement it over a wire protocol.
pub trait DbmsConnection {
    /// A short name identifying the DBMS (used in reports and tables).
    fn name(&self) -> &str;

    /// Executes a statement for its side effects, returning its status.
    fn execute(&mut self, sql: &str) -> StatementOutcome;

    /// Executes a query and retrieves its rows.
    ///
    /// # Errors
    ///
    /// Returns the DBMS error message when the query is rejected or fails.
    fn query(&mut self, sql: &str) -> Result<QueryResult, String>;

    /// Drops all state so a fresh database can be generated.
    fn reset(&mut self);

    /// The dialect quirks the platform must account for.
    fn quirks(&self) -> DialectQuirks {
        DialectQuirks::default()
    }

    /// Executes an already-built statement for its side effects.
    ///
    /// This is the AST fast path: backends that can consume the AST
    /// directly (the simulated fleet) override it to skip SQL rendering,
    /// lexing and parsing entirely. The default renders the statement to
    /// text and goes through [`DbmsConnection::execute`], preserving the
    /// paper's SQL-text-only contract for real wire-protocol backends.
    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        self.execute(&stmt.to_string())
    }

    /// Executes an already-built query and retrieves its rows.
    ///
    /// AST fast path analogue of [`DbmsConnection::query`]; the default
    /// renders to SQL text. Overrides must behave exactly like rendering
    /// followed by [`DbmsConnection::query`] — the parity test suite holds
    /// the simulated fleet to that contract.
    ///
    /// # Errors
    ///
    /// Returns the DBMS error message when the query is rejected or fails.
    fn query_ast(&mut self, select: &Select) -> Result<QueryResult, String> {
        self.query(&select.to_string())
    }

    /// Opens an **additional concurrent session** over the same engine, for
    /// oracles that interleave statements across connections (the isolation
    /// oracle). The returned connection shares the committed database with
    /// this one but holds its own transaction state; `reset` on a session
    /// is a no-op (only the owning connection may wipe shared state).
    ///
    /// The default returns `None`: a single-connection backend. Campaigns
    /// treat that as "multi-session workloads unsupported" (validity
    /// feedback, not a bug).
    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        None
    }

    /// Cumulative storage-versioning counters for this connection's
    /// backend, when it can observe them (the simulated fleet reads its
    /// engine's CoW accounting; wire-protocol backends return `Ok(None)`,
    /// the default). Counters are cumulative across `reset`, so campaigns
    /// difference two samples.
    ///
    /// # Errors
    ///
    /// Returns the backend error when the counters exist but cannot be read
    /// (e.g. the backend is down). Campaigns surface such errors as
    /// supervision incidents — they are never silently treated as zeros.
    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        Ok(None)
    }

    /// Marks the start of (one attempt at) an oracle test case.
    ///
    /// `case_seed` is derived deterministically from the campaign seed and
    /// the case cursor, and is **never 0**; the campaign passes `0` for
    /// non-case work (setup replay, recovery rebuilds). Backends use this
    /// purely as an observability/fault-injection hook — the default is a
    /// no-op, and implementations must not let it affect query semantics.
    fn begin_case(&mut self, case_seed: u64) {
        let _ = case_seed;
    }

    /// The connection's **virtual clock**: a monotone tick counter advanced
    /// by backend activity (the fault-injecting test decorator charges one
    /// tick per statement and jumps the clock on a hang). The supervisor's
    /// deadline watchdog samples this around each case attempt, so watchdog
    /// decisions are deterministic — wall time never enters them. The
    /// default (a constant `0`) makes the watchdog inert for backends that
    /// don't model time.
    fn virtual_ticks(&self) -> u64 {
        0
    }

    /// Captures the backend's current committed state as an opaque
    /// checkpoint that [`DbmsConnection::restore`] can return to, or `None`
    /// when the backend has no cheap snapshot facility (the default).
    ///
    /// Oracles use this as a fast path for their reset-to-setup-state
    /// bookkeeping: the simulated fleet backs it with an O(tables)
    /// copy-on-write engine clone, while wire-protocol backends fall back
    /// to the SQL-text setup replay — the testing contract itself never
    /// depends on checkpoints, and a restored state is observably
    /// identical to a replayed one.
    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        None
    }

    /// Returns the backend to a state previously captured by
    /// [`DbmsConnection::checkpoint`] on the *same* connection. Returns
    /// `false` when unsupported or when the checkpoint is foreign — the
    /// caller must then rebuild by replaying SQL.
    ///
    /// Restoring **orphans** any session previously obtained from
    /// [`DbmsConnection::open_session`]: such sessions may keep executing
    /// against the discarded pre-restore state without error. Callers
    /// must drop open sessions before restoring (the oracles do, between
    /// arms).
    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        let _ = checkpoint;
        false
    }

    /// Drains accumulated **operational** backend events (wall-clock-plane
    /// telemetry: pool slot checkouts and re-syncs, wire bytes, child
    /// respawns). The campaign polls this when a trace sink is attached and
    /// forwards the events to [`crate::trace::TraceSink::backend_event`].
    ///
    /// These events are explicitly *outside* the determinism contract —
    /// they may vary with pool size, wire buffering and scheduling — which
    /// is why they travel on a separate channel from the deterministic
    /// trace events. The default returns nothing (allocation-free).
    fn drain_backend_events(&mut self) -> Vec<crate::trace::BackendEvent> {
        Vec::new()
    }

    /// The engine-side coverage points this connection's backend has
    /// reached over its whole lifetime, or `None` for backends that cannot
    /// observe any (the default). Implementations must keep the sets
    /// **monotone** — cumulative across `reset` and `restore` — per the
    /// [`EngineCoverage`] contract; the coverage atlas relies on that to
    /// stay byte-identical across pool sizes and poll cadences.
    fn engine_coverage(&self) -> Option<EngineCoverage> {
        None
    }

    /// Drains accumulated **deterministic** resilience events: capability
    /// drift detected by the runtime probe, circuit-breaker trips and
    /// recoveries. Unlike [`DbmsConnection::drain_backend_events`], these
    /// travel on the deterministic plane — the campaign records each one as
    /// a supervision incident, so implementations must only emit events
    /// whose occurrence and order are invariant across pool sizes and
    /// worker counts. The default returns nothing.
    fn drain_resilience_events(&mut self) -> Vec<crate::driver::ResilienceEvent> {
        Vec::new()
    }

    /// Reports the final supervised outcome of a test case back to the
    /// connection layer: `infra_failed` is `true` when every attempt of the
    /// case was lost to infrastructure faults. The pool's circuit breakers
    /// consume this to settle their consecutive-failure accounting *eagerly*
    /// at the case boundary (a checkpoint taken between cases must capture
    /// fully resolved breaker state). The default is a no-op.
    fn note_case_outcome(&mut self, case_seed: u64, infra_failed: bool) {
        let _ = (case_seed, infra_failed);
    }

    /// Serializes the connection layer's resilience state (circuit-breaker
    /// counters, backoff clock) as an opaque single-line string for the
    /// campaign checkpoint, or `None` when the layer carries none (the
    /// default). Must only be called between cases, when breaker state is
    /// settled.
    fn resilience_checkpoint(&self) -> Option<String> {
        None
    }

    /// Restores resilience state previously captured by
    /// [`DbmsConnection::resilience_checkpoint`]. Returns `false` when the
    /// payload is foreign or the layer carries no such state (the default).
    fn restore_resilience(&mut self, data: &str) -> bool {
        let _ = data;
        false
    }

    /// Marks a database boundary in the campaign loop. The pool resets its
    /// circuit-breaker ledger here (each database state starts with healthy
    /// slots, which keeps breaker incidents invariant between a multi-database
    /// campaign and its per-database partitioned shards) and enqueues one
    /// [`crate::driver::ResilienceEvent::CapabilityDrift`] per probed
    /// downgrade, so drift lands in the incident ledger once per database.
    /// The default is a no-op.
    fn note_database_boundary(&mut self) {}
}

/// An opaque committed-state snapshot produced by
/// [`DbmsConnection::checkpoint`]. The payload is backend-defined (the
/// simulated fleet stores a CoW-shared engine clone); callers only hold
/// and return it.
pub struct StateCheckpoint(pub Box<dyn std::any::Any>);

impl std::fmt::Debug for StateCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StateCheckpoint(..)")
    }
}

/// Boxed trait objects forward every method — including the AST fast path
/// and session opening — so a `Box<dyn DbmsConnection>` (what
/// [`DbmsConnection::open_session`] yields) behaves exactly like the
/// concrete connection it wraps.
impl DbmsConnection for Box<dyn DbmsConnection> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        (**self).execute(sql)
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        (**self).query(sql)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn quirks(&self) -> DialectQuirks {
        (**self).quirks()
    }

    fn execute_ast(&mut self, stmt: &Statement) -> StatementOutcome {
        (**self).execute_ast(stmt)
    }

    fn query_ast(&mut self, select: &Select) -> Result<QueryResult, String> {
        (**self).query_ast(select)
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        (**self).open_session()
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        (**self).storage_metrics()
    }

    fn begin_case(&mut self, case_seed: u64) {
        (**self).begin_case(case_seed);
    }

    fn virtual_ticks(&self) -> u64 {
        (**self).virtual_ticks()
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        (**self).checkpoint()
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        (**self).restore(checkpoint)
    }

    fn drain_backend_events(&mut self) -> Vec<crate::trace::BackendEvent> {
        (**self).drain_backend_events()
    }

    fn engine_coverage(&self) -> Option<EngineCoverage> {
        (**self).engine_coverage()
    }

    fn drain_resilience_events(&mut self) -> Vec<crate::driver::ResilienceEvent> {
        (**self).drain_resilience_events()
    }

    fn note_case_outcome(&mut self, case_seed: u64, infra_failed: bool) {
        (**self).note_case_outcome(case_seed, infra_failed);
    }

    fn resilience_checkpoint(&self) -> Option<String> {
        (**self).resilience_checkpoint()
    }

    fn restore_resilience(&mut self, data: &str) -> bool {
        (**self).restore_resilience(data)
    }

    fn note_database_boundary(&mut self) {
        (**self).note_database_boundary();
    }
}

/// Forces the text path of a connection: the AST fast-path methods are
/// routed through SQL rendering and the wrapped connection's text entry
/// points, exactly as a real wire-protocol backend would behave.
///
/// Used by the parity tests (text path and AST path must agree verdict for
/// verdict) and by the throughput benchmark as the baseline arm.
#[derive(Debug, Clone)]
pub struct TextOnlyConnection<C> {
    inner: C,
}

impl<C: DbmsConnection> TextOnlyConnection<C> {
    /// Wraps a connection.
    pub fn new(inner: C) -> TextOnlyConnection<C> {
        TextOnlyConnection { inner }
    }

    /// Consumes the wrapper and returns the underlying connection.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The underlying connection.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: DbmsConnection> DbmsConnection for TextOnlyConnection<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&mut self, sql: &str) -> StatementOutcome {
        self.inner.execute(sql)
    }

    fn query(&mut self, sql: &str) -> Result<QueryResult, String> {
        self.inner.query(sql)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn quirks(&self) -> DialectQuirks {
        self.inner.quirks()
    }

    fn open_session(&mut self) -> Option<Box<dyn DbmsConnection>> {
        // Sessions opened through a text-only connection are text-only too:
        // their AST entry points must also render to SQL.
        self.inner
            .open_session()
            .map(|session| Box::new(TextOnlyConnection::new(session)) as Box<dyn DbmsConnection>)
    }

    fn storage_metrics(&self) -> Result<Option<StorageMetrics>, String> {
        self.inner.storage_metrics()
    }

    fn begin_case(&mut self, case_seed: u64) {
        self.inner.begin_case(case_seed);
    }

    fn virtual_ticks(&self) -> u64 {
        self.inner.virtual_ticks()
    }

    fn checkpoint(&mut self) -> Option<StateCheckpoint> {
        // Checkpoints capture committed state, not transport: restoring
        // through a text-only connection is observably identical to
        // replaying the setup SQL, so the wrapper forwards both.
        self.inner.checkpoint()
    }

    fn restore(&mut self, checkpoint: &StateCheckpoint) -> bool {
        self.inner.restore(checkpoint)
    }

    fn drain_backend_events(&mut self) -> Vec<crate::trace::BackendEvent> {
        self.inner.drain_backend_events()
    }

    fn engine_coverage(&self) -> Option<EngineCoverage> {
        self.inner.engine_coverage()
    }

    fn drain_resilience_events(&mut self) -> Vec<crate::driver::ResilienceEvent> {
        self.inner.drain_resilience_events()
    }

    fn note_case_outcome(&mut self, case_seed: u64, infra_failed: bool) {
        self.inner.note_case_outcome(case_seed, infra_failed);
    }

    fn resilience_checkpoint(&self) -> Option<String> {
        self.inner.resilience_checkpoint()
    }

    fn restore_resilience(&mut self, data: &str) -> bool {
        self.inner.restore_resilience(data)
    }

    fn note_database_boundary(&mut self) {
        self.inner.note_database_boundary();
    }

    // `execute_ast` and `query_ast` are deliberately NOT overridden: the
    // trait defaults render to SQL text, which is the whole point of this
    // wrapper.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_insensitive_and_multiset() {
        let a = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
        };
        let b = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Integer(2)], vec![Value::Integer(1)]],
        };
        assert_eq!(a.multiset_fingerprint(), b.multiset_fingerprint());
        let c = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Integer(1)]],
        };
        assert_ne!(a.multiset_fingerprint(), c.multiset_fingerprint());
    }

    #[test]
    fn outcome_helpers() {
        assert!(StatementOutcome::Success.is_success());
        assert!(!StatementOutcome::Failure("x".into()).is_success());
    }
}
