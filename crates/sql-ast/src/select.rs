//! The `SELECT` statement AST (queries).

use crate::expr::Expr;
use std::fmt;

/// A projected item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Projects an expression without an alias.
    pub fn expr(expr: Expr) -> SelectItem {
        SelectItem::Expr { expr, alias: None }
    }

    /// Projects an expression with an alias.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> SelectItem {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

/// The type of a join; the paper's generator supports six join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// `INNER JOIN`
    Inner,
    /// `LEFT JOIN`
    Left,
    /// `RIGHT JOIN`
    Right,
    /// `FULL JOIN`
    Full,
    /// `CROSS JOIN`
    Cross,
    /// `NATURAL JOIN`
    Natural,
}

impl JoinType {
    /// All join types.
    pub const ALL: [JoinType; 6] = [
        JoinType::Inner,
        JoinType::Left,
        JoinType::Right,
        JoinType::Full,
        JoinType::Cross,
        JoinType::Natural,
    ];

    /// SQL keyword sequence.
    pub fn sql(self) -> &'static str {
        match self {
            JoinType::Inner => "INNER JOIN",
            JoinType::Left => "LEFT JOIN",
            JoinType::Right => "RIGHT JOIN",
            JoinType::Full => "FULL JOIN",
            JoinType::Cross => "CROSS JOIN",
            JoinType::Natural => "NATURAL JOIN",
        }
    }

    /// Canonical feature name (`JOIN_<KIND>`).
    pub fn feature_name(self) -> &'static str {
        match self {
            JoinType::Inner => "JOIN_INNER",
            JoinType::Left => "JOIN_LEFT",
            JoinType::Right => "JOIN_RIGHT",
            JoinType::Full => "JOIN_FULL",
            JoinType::Cross => "JOIN_CROSS",
            JoinType::Natural => "JOIN_NATURAL",
        }
    }

    /// Does this join type take an `ON` constraint?
    pub fn takes_constraint(self) -> bool {
        !matches!(self, JoinType::Cross | JoinType::Natural)
    }

    /// Is this an outer join (preserves unmatched rows on some side)?
    pub fn is_outer(self) -> bool {
        matches!(self, JoinType::Left | JoinType::Right | JoinType::Full)
    }
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A base relation in a `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// A named table or view, optionally aliased.
    Table {
        /// Table or view name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A derived table `(SELECT ...) AS alias`.
    Derived {
        /// The subquery.
        subquery: Box<Select>,
        /// The mandatory alias.
        alias: String,
    },
}

impl TableFactor {
    /// A named table without an alias.
    pub fn table(name: impl Into<String>) -> TableFactor {
        TableFactor::Table {
            name: name.into(),
            alias: None,
        }
    }

    /// The name the relation is visible as inside the query.
    pub fn visible_name(&self) -> &str {
        match self {
            TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => match alias {
                Some(a) => write!(f, "{name} AS {a}"),
                None => f.write_str(name),
            },
            TableFactor::Derived { subquery, alias } => write!(f, "({subquery}) AS {alias}"),
        }
    }
}

/// A join attached to a preceding table factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The kind of join.
    pub join_type: JoinType,
    /// The joined relation.
    pub relation: TableFactor,
    /// The `ON` condition; `None` for `CROSS`/`NATURAL` joins.
    pub on: Option<Expr>,
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.join_type, self.relation)?;
        if let Some(on) = &self.on {
            write!(f, " ON {on}")?;
        }
        Ok(())
    }
}

/// One element of the `FROM` list: a base relation plus chained joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWithJoins {
    /// The base relation.
    pub relation: TableFactor,
    /// Joins applied to it, in order.
    pub joins: Vec<Join>,
}

impl TableWithJoins {
    /// A bare table with no joins.
    pub fn table(name: impl Into<String>) -> TableWithJoins {
        TableWithJoins {
            relation: TableFactor::table(name),
            joins: Vec::new(),
        }
    }
}

impl fmt::Display for TableWithJoins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        Ok(())
    }
}

/// Sort direction in `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortOrder {
    /// Ascending (default).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// The sort key expression.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        match self.order {
            SortOrder::Asc => f.write_str(" ASC"),
            SortOrder::Desc => f.write_str(" DESC"),
        }
    }
}

/// A set operation combining two `SELECT`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOperator {
    /// `UNION` / `UNION ALL`
    Union,
    /// `INTERSECT`
    Intersect,
    /// `EXCEPT`
    Except,
}

impl SetOperator {
    /// SQL keyword.
    pub fn sql(self) -> &'static str {
        match self {
            SetOperator::Union => "UNION",
            SetOperator::Intersect => "INTERSECT",
            SetOperator::Except => "EXCEPT",
        }
    }
}

/// A compound tail: `UNION [ALL] <select>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetOperation {
    /// The operator.
    pub op: SetOperator,
    /// Whether `ALL` was specified (keep duplicates).
    pub all: bool,
    /// The right-hand query.
    pub right: Box<Select>,
}

/// A full `SELECT` query.
///
/// # Examples
///
/// ```
/// use sql_ast::{Select, SelectItem, Expr, TableWithJoins};
///
/// let mut q = Select::new();
/// q.projections.push(SelectItem::expr(Expr::column("c0")));
/// q.from.push(TableWithJoins::table("t0"));
/// q.where_clause = Some(Expr::column("c0").eq(Expr::integer(1)));
/// assert_eq!(q.to_string(), "SELECT c0 FROM t0 WHERE (c0 = 1)");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// The projection list.
    pub projections: Vec<SelectItem>,
    /// The `FROM` list (comma-separated table factors with joins).
    pub from: Vec<TableWithJoins>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// Optional `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderByItem>,
    /// Optional `LIMIT` count.
    pub limit: Option<u64>,
    /// Optional `OFFSET`.
    pub offset: Option<u64>,
    /// Optional trailing set operation.
    pub set_op: Option<SetOperation>,
}

impl Select {
    /// Creates an empty query (`SELECT` with nothing selected yet).
    pub fn new() -> Select {
        Select::default()
    }

    /// Convenience: `SELECT <projections> FROM <table>`.
    pub fn from_table(table: impl Into<String>, projections: Vec<SelectItem>) -> Select {
        Select {
            projections,
            from: vec![TableWithJoins::table(table)],
            ..Select::default()
        }
    }

    /// Whether the query (ignoring subqueries) uses aggregation.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
    }

    /// All table factors referenced directly in the `FROM` clause.
    pub fn table_factors(&self) -> Vec<&TableFactor> {
        let mut out = Vec::new();
        for twj in &self.from {
            out.push(&twj.relation);
            for j in &twj.joins {
                out.push(&j.relation);
            }
        }
        out
    }

    /// Feeds an exact structural fingerprint of the query into a 128-bit
    /// hasher, covering every clause — projections, `FROM` (including
    /// derived tables, recursively), `WHERE`, grouping, ordering, limits and
    /// set operations. This is what lets [`Expr::fingerprint_into`] descend
    /// into subquery bodies, making subquery-containing expressions
    /// plan-cacheable: two queries hash identically only when they would
    /// compile (and execute) identically.
    pub fn fingerprint_into(&self, hasher: &mut crate::Fingerprint128) {
        hasher.write_word(
            0x5E1Eu64
                | (u64::from(self.distinct) << 16)
                | ((self.projections.len() as u64) << 17)
                | ((self.from.len() as u64) << 40),
        );
        for item in &self.projections {
            match item {
                SelectItem::Wildcard => hasher.write_word(1),
                SelectItem::QualifiedWildcard(t) => {
                    hasher.write_word(2);
                    hasher.write_str_words(t);
                }
                SelectItem::Expr { expr, alias } => {
                    hasher.write_word(3 | (u64::from(alias.is_some()) << 8));
                    expr.fingerprint_into(hasher);
                    if let Some(a) = alias {
                        hasher.write_str_words(a);
                    }
                }
            }
        }
        for twj in &self.from {
            factor_fingerprint(&twj.relation, hasher);
            hasher.write_word(twj.joins.len() as u64);
            for join in &twj.joins {
                hasher.write_word((join.join_type as u64) | (u64::from(join.on.is_some()) << 8));
                factor_fingerprint(&join.relation, hasher);
                if let Some(on) = &join.on {
                    on.fingerprint_into(hasher);
                }
            }
        }
        clause_fingerprint(self.where_clause.as_ref(), hasher);
        hasher.write_word(self.group_by.len() as u64);
        for g in &self.group_by {
            g.fingerprint_into(hasher);
        }
        clause_fingerprint(self.having.as_ref(), hasher);
        hasher.write_word(self.order_by.len() as u64);
        for o in &self.order_by {
            hasher.write_word(o.order as u64);
            o.expr.fingerprint_into(hasher);
        }
        hasher.write_word(match self.limit {
            Some(l) => l | (1 << 63),
            None => 0,
        });
        hasher.write_word(match self.offset {
            Some(o) => o | (1 << 63),
            None => 0,
        });
        match &self.set_op {
            Some(set_op) => {
                hasher.write_word(1 | ((set_op.op as u64) << 8) | (u64::from(set_op.all) << 16));
                set_op.right.fingerprint_into(hasher);
            }
            None => hasher.write_word(0),
        }
    }
}

/// Hashes an optional clause expression with a presence tag.
fn clause_fingerprint(clause: Option<&Expr>, hasher: &mut crate::Fingerprint128) {
    match clause {
        Some(e) => {
            hasher.write_word(1);
            e.fingerprint_into(hasher);
        }
        None => hasher.write_word(0),
    }
}

/// Hashes one `FROM` relation, recursing into derived tables.
fn factor_fingerprint(factor: &TableFactor, hasher: &mut crate::Fingerprint128) {
    match factor {
        TableFactor::Table { name, alias } => {
            hasher.write_word(1 | (u64::from(alias.is_some()) << 8));
            hasher.write_str_words(name);
            if let Some(a) = alias {
                hasher.write_str_words(a);
            }
        }
        TableFactor::Derived { subquery, alias } => {
            hasher.write_word(2);
            subquery.fingerprint_into(hasher);
            hasher.write_str_words(alias);
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        if self.projections.is_empty() {
            f.write_str("*")?;
        } else {
            for (i, p) in self.projections.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some(set_op) = &self.set_op {
            write!(f, " {}", set_op.op.sql())?;
            if set_op.all {
                f.write_str(" ALL")?;
            }
            write!(f, " {}", set_op.right)?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::AggregateFunction;

    #[test]
    fn simple_select_renders() {
        let q = Select::from_table("t0", vec![SelectItem::Wildcard]);
        assert_eq!(q.to_string(), "SELECT * FROM t0");
    }

    #[test]
    fn join_select_renders() {
        let mut q = Select::from_table(
            "t0",
            vec![SelectItem::expr(Expr::qualified_column("t0", "c0"))],
        );
        q.from[0].joins.push(Join {
            join_type: JoinType::Left,
            relation: TableFactor::table("t1"),
            on: Some(Expr::boolean(true)),
        });
        assert_eq!(q.to_string(), "SELECT t0.c0 FROM t0 LEFT JOIN t1 ON TRUE");
    }

    #[test]
    fn aggregate_detection_via_projection_and_group_by() {
        let mut q = Select::from_table(
            "t0",
            vec![SelectItem::expr(Expr::Aggregate {
                func: AggregateFunction::Sum,
                arg: Some(Box::new(Expr::column("c0"))),
                distinct: false,
            })],
        );
        assert!(q.is_aggregate());
        q.projections = vec![SelectItem::expr(Expr::column("c0"))];
        assert!(!q.is_aggregate());
        q.group_by.push(Expr::column("c0"));
        assert!(q.is_aggregate());
    }

    #[test]
    fn order_limit_offset_render_in_order() {
        let mut q = Select::from_table("t0", vec![SelectItem::Wildcard]);
        q.order_by.push(OrderByItem {
            expr: Expr::column("c0"),
            order: SortOrder::Desc,
        });
        q.limit = Some(10);
        q.offset = Some(2);
        assert_eq!(
            q.to_string(),
            "SELECT * FROM t0 ORDER BY c0 DESC LIMIT 10 OFFSET 2"
        );
    }

    #[test]
    fn union_renders() {
        let mut q = Select::from_table("t0", vec![SelectItem::Wildcard]);
        q.set_op = Some(SetOperation {
            op: SetOperator::Union,
            all: true,
            right: Box::new(Select::from_table("t1", vec![SelectItem::Wildcard])),
        });
        assert_eq!(q.to_string(), "SELECT * FROM t0 UNION ALL SELECT * FROM t1");
    }

    #[test]
    fn join_type_metadata() {
        assert!(JoinType::Left.is_outer());
        assert!(!JoinType::Inner.is_outer());
        assert!(JoinType::Inner.takes_constraint());
        assert!(!JoinType::Cross.takes_constraint());
        assert_eq!(JoinType::ALL.len(), 6);
    }
}
