//! Scalar and aggregate SQL functions.
//!
//! The paper's generator implements 58 scalar functions (Table 6). The
//! [`ScalarFunction`] enum enumerates the function universe used by this
//! reproduction; every function listed here is implemented by the evaluation
//! engine (`sql-engine`) and is individually gateable per dialect
//! (`dbms-sim`), which is exactly what makes functions interesting *features*
//! for the adaptive generator.

use std::fmt;

/// Category of a scalar function; used both to organise generation and as a
/// coarse-grained feature granularity ("a class of functions", Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionCategory {
    /// Numeric/math functions (`SIN`, `ABS`, ...).
    Numeric,
    /// String functions (`UPPER`, `REPLACE`, ...).
    String,
    /// Conditional functions (`COALESCE`, `NULLIF`, ...).
    Conditional,
    /// Type/introspection functions (`TYPEOF`, ...).
    Type,
}

macro_rules! scalar_functions {
    ($( $variant:ident => ($name:literal, $min:literal, $max:literal, $cat:ident) ),+ $(,)?) => {
        /// A scalar SQL function supported by the generator and the engine.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum ScalarFunction {
            $(
                #[doc = concat!("The `", $name, "` function.")]
                $variant,
            )+
        }

        impl ScalarFunction {
            /// Every scalar function, in a canonical order.
            pub const ALL: [ScalarFunction; scalar_functions!(@count $($variant)+)] = [
                $(ScalarFunction::$variant,)+
            ];

            /// The SQL name of the function.
            pub fn name(self) -> &'static str {
                match self {
                    $(ScalarFunction::$variant => $name,)+
                }
            }

            /// Canonical feature name used by the feature model
            /// (`FN_<NAME>`), as a static string — the generator consults
            /// the whole function universe per generated function call, so
            /// this must not allocate.
            pub fn feature_name(self) -> &'static str {
                match self {
                    $(ScalarFunction::$variant => concat!("FN_", $name),)+
                }
            }

            /// Minimum number of arguments.
            pub fn min_args(self) -> usize {
                match self {
                    $(ScalarFunction::$variant => $min,)+
                }
            }

            /// Maximum number of arguments.
            pub fn max_args(self) -> usize {
                match self {
                    $(ScalarFunction::$variant => $max,)+
                }
            }

            /// Coarse category of the function.
            pub fn category(self) -> FunctionCategory {
                match self {
                    $(ScalarFunction::$variant => FunctionCategory::$cat,)+
                }
            }

            /// Looks a function up by its (case-insensitive) SQL name.
            pub fn from_name(name: &str) -> Option<ScalarFunction> {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    $($name => Some(ScalarFunction::$variant),)+
                    _ => None,
                }
            }
        }
    };
    (@count $($x:ident)+) => { [$(scalar_functions!(@unit $x)),+].len() };
    (@unit $x:ident) => { () };
}

scalar_functions! {
    // Numeric functions.
    Abs => ("ABS", 1, 1, Numeric),
    Sin => ("SIN", 1, 1, Numeric),
    Cos => ("COS", 1, 1, Numeric),
    Tan => ("TAN", 1, 1, Numeric),
    Asin => ("ASIN", 1, 1, Numeric),
    Acos => ("ACOS", 1, 1, Numeric),
    Atan => ("ATAN", 1, 1, Numeric),
    Atan2 => ("ATAN2", 2, 2, Numeric),
    Exp => ("EXP", 1, 1, Numeric),
    Ln => ("LN", 1, 1, Numeric),
    Log10 => ("LOG10", 1, 1, Numeric),
    Log2 => ("LOG2", 1, 1, Numeric),
    Sqrt => ("SQRT", 1, 1, Numeric),
    Power => ("POWER", 2, 2, Numeric),
    ModFn => ("MOD", 2, 2, Numeric),
    Floor => ("FLOOR", 1, 1, Numeric),
    Ceil => ("CEIL", 1, 1, Numeric),
    Round => ("ROUND", 1, 2, Numeric),
    Sign => ("SIGN", 1, 1, Numeric),
    Radians => ("RADIANS", 1, 1, Numeric),
    Degrees => ("DEGREES", 1, 1, Numeric),
    Pi => ("PI", 0, 0, Numeric),
    Greatest => ("GREATEST", 2, 4, Numeric),
    Least => ("LEAST", 2, 4, Numeric),
    Trunc => ("TRUNC", 1, 1, Numeric),
    // String functions.
    Length => ("LENGTH", 1, 1, String),
    CharLength => ("CHAR_LENGTH", 1, 1, String),
    Upper => ("UPPER", 1, 1, String),
    Lower => ("LOWER", 1, 1, String),
    Trim => ("TRIM", 1, 1, String),
    Ltrim => ("LTRIM", 1, 1, String),
    Rtrim => ("RTRIM", 1, 1, String),
    Substr => ("SUBSTR", 2, 3, String),
    Substring => ("SUBSTRING", 2, 3, String),
    Replace => ("REPLACE", 3, 3, String),
    Instr => ("INSTR", 2, 2, String),
    Strpos => ("STRPOS", 2, 2, String),
    LeftFn => ("LEFT", 2, 2, String),
    RightFn => ("RIGHT", 2, 2, String),
    Reverse => ("REVERSE", 1, 1, String),
    Repeat => ("REPEAT", 2, 2, String),
    Concat => ("CONCAT", 2, 4, String),
    ConcatWs => ("CONCAT_WS", 3, 4, String),
    Lpad => ("LPAD", 3, 3, String),
    Rpad => ("RPAD", 3, 3, String),
    Ascii => ("ASCII", 1, 1, String),
    Chr => ("CHR", 1, 1, String),
    Hex => ("HEX", 1, 1, String),
    Space => ("SPACE", 1, 1, String),
    Md5Stub => ("QUOTE", 1, 1, String),
    // Conditional functions.
    Coalesce => ("COALESCE", 2, 4, Conditional),
    Nullif => ("NULLIF", 2, 2, Conditional),
    Ifnull => ("IFNULL", 2, 2, Conditional),
    Nvl => ("NVL", 2, 2, Conditional),
    Iif => ("IIF", 3, 3, Conditional),
    IfFn => ("IF", 3, 3, Conditional),
    // Type / introspection functions.
    Typeof => ("TYPEOF", 1, 1, Type),
    ToChar => ("TO_CHAR", 1, 1, Type),
    Unhexable => ("BIT_LENGTH", 1, 1, Type),
}

impl fmt::Display for ScalarFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An aggregate SQL function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggregateFunction {
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `TOTAL(expr)` — SQLite's never-NULL sum.
    Total,
}

impl AggregateFunction {
    /// Every aggregate function.
    pub const ALL: [AggregateFunction; 6] = [
        AggregateFunction::Count,
        AggregateFunction::Sum,
        AggregateFunction::Avg,
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Total,
    ];

    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Total => "TOTAL",
        }
    }

    /// Canonical feature name (`AGG_<NAME>`), static like
    /// [`ScalarFunction::feature_name`].
    pub fn feature_name(self) -> &'static str {
        match self {
            AggregateFunction::Count => "AGG_COUNT",
            AggregateFunction::Sum => "AGG_SUM",
            AggregateFunction::Avg => "AGG_AVG",
            AggregateFunction::Min => "AGG_MIN",
            AggregateFunction::Max => "AGG_MAX",
            AggregateFunction::Total => "AGG_TOTAL",
        }
    }

    /// Looks an aggregate up by its (case-insensitive) SQL name.
    pub fn from_name(name: &str) -> Option<AggregateFunction> {
        let upper = name.to_ascii_uppercase();
        Self::ALL.into_iter().find(|agg| agg.name() == upper)
    }
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn function_universe_has_paper_scale() {
        // The paper reports 58 scalar functions; we implement the same order
        // of magnitude (>= 55) so feature-learning behaves comparably.
        assert!(
            ScalarFunction::ALL.len() >= 55,
            "{}",
            ScalarFunction::ALL.len()
        );
    }

    #[test]
    fn names_unique_and_resolvable() {
        let names: HashSet<_> = ScalarFunction::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), ScalarFunction::ALL.len());
        for f in ScalarFunction::ALL {
            assert_eq!(ScalarFunction::from_name(f.name()), Some(f));
            assert_eq!(ScalarFunction::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(ScalarFunction::from_name("NO_SUCH_FN"), None);
    }

    #[test]
    fn arities_are_consistent() {
        for f in ScalarFunction::ALL {
            assert!(f.min_args() <= f.max_args(), "{f:?}");
            assert!(f.max_args() <= 4, "{f:?}");
        }
    }

    #[test]
    fn aggregates_resolve_by_name() {
        for agg in AggregateFunction::ALL {
            assert_eq!(AggregateFunction::from_name(agg.name()), Some(agg));
        }
        assert_eq!(
            AggregateFunction::from_name("count"),
            Some(AggregateFunction::Count)
        );
        assert_eq!(AggregateFunction::from_name("median"), None);
    }

    #[test]
    fn every_category_is_populated() {
        for cat in [
            FunctionCategory::Numeric,
            FunctionCategory::String,
            FunctionCategory::Conditional,
            FunctionCategory::Type,
        ] {
            assert!(ScalarFunction::ALL.iter().any(|f| f.category() == cat));
        }
    }
}
