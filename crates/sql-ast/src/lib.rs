//! # sql-ast
//!
//! SQL abstract syntax tree, value model and SQL rendering for the
//! SQLancer++ reproduction ("Scaling Automated Database System Testing",
//! ASPLOS 2026).
//!
//! This crate is the shared vocabulary of the whole workspace:
//!
//! * the **adaptive statement generator** (`sqlancer-core`) builds
//!   [`Statement`]s and renders them to SQL text,
//! * the **parser** (`sql-parser`) turns SQL text back into these ASTs,
//! * the **engine** (`sql-engine`) and the **simulated DBMS fleet**
//!   (`dbms-sim`) evaluate them to [`Value`] rows.
//!
//! # Examples
//!
//! ```
//! use sql_ast::{Expr, Select, SelectItem, TableWithJoins};
//!
//! let mut query = Select::new();
//! query.projections.push(SelectItem::expr(Expr::column("c0")));
//! query.from.push(TableWithJoins::table("t0"));
//! query.where_clause = Some(Expr::column("c0").eq(Expr::integer(42)));
//! assert_eq!(query.to_string(), "SELECT c0 FROM t0 WHERE (c0 = 42)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod expr;
mod func;
pub mod hash;
mod ops;
mod select;
mod stmt;
mod types;
mod value;

pub use expr::{CaseBranch, ColumnRef, Expr};
pub use func::{AggregateFunction, FunctionCategory, ScalarFunction};
pub use hash::{fnv1a64, mix_seed, row_fingerprint, splitmix64, Fingerprint128};
pub use ops::{BinaryOp, UnaryOp};
pub use select::{
    Join, JoinType, OrderByItem, Select, SelectItem, SetOperation, SetOperator, SortOrder,
    TableFactor, TableWithJoins,
};
pub use stmt::{
    BeginMode, ColumnConstraint, ColumnDef, CreateIndex, CreateTable, CreateView, Delete, DropKind,
    Insert, Statement, TableConstraint, Update,
};
pub use types::DataType;
pub use value::{format_real, parse_numeric_prefix, TruthValue, Value};
