//! Unary and binary SQL operators.
//!
//! The paper's generator supports 47 operators (Table 6). The enum here
//! enumerates each operator with its SQL spelling; semantically equivalent
//! spellings such as `!=` and `<>` are distinct variants because they are
//! distinct *features* for the adaptive generator and the bug prioritizer
//! (the paper explicitly discusses `<>` vs `!=` duplicates in Section 5.5).

use std::fmt;

/// A unary SQL operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Unary plus `+x`.
    Plus,
    /// Logical negation `NOT x`.
    Not,
    /// Bitwise inversion `~x` (the paper found a TiDB bug in this operator).
    BitNot,
}

impl UnaryOp {
    /// All unary operators.
    pub const ALL: [UnaryOp; 4] = [UnaryOp::Neg, UnaryOp::Plus, UnaryOp::Not, UnaryOp::BitNot];

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Plus => "+",
            UnaryOp::Not => "NOT ",
            UnaryOp::BitNot => "~",
        }
    }

    /// Canonical feature name used by the feature model.
    pub fn feature_name(self) -> &'static str {
        match self {
            UnaryOp::Neg => "OP_UNARY_MINUS",
            UnaryOp::Plus => "OP_UNARY_PLUS",
            UnaryOp::Not => "OP_NOT",
            UnaryOp::BitNot => "OP_BITNOT",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A binary SQL operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<>` (same semantics as `!=`, distinct feature)
    NeqLtGt,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<=>` MySQL-style null-safe equality
    NullSafeEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `#` (PostgreSQL XOR) — rendered as `#`
    BitXor,
    /// `<<`
    ShiftLeft,
    /// `>>`
    ShiftRight,
    /// `||` string concatenation
    Concat,
    /// `IS DISTINCT FROM`
    IsDistinctFrom,
    /// `IS NOT DISTINCT FROM`
    IsNotDistinctFrom,
}

impl BinaryOp {
    /// All binary operators in a canonical order.
    pub const ALL: [BinaryOp; 23] = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Mod,
        BinaryOp::Eq,
        BinaryOp::Neq,
        BinaryOp::NeqLtGt,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::NullSafeEq,
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::BitAnd,
        BinaryOp::BitOr,
        BinaryOp::BitXor,
        BinaryOp::ShiftLeft,
        BinaryOp::ShiftRight,
        BinaryOp::Concat,
        BinaryOp::IsDistinctFrom,
        BinaryOp::IsNotDistinctFrom,
    ];

    /// The comparison operators (produce a boolean / truth value).
    pub const COMPARISONS: [BinaryOp; 10] = [
        BinaryOp::Eq,
        BinaryOp::Neq,
        BinaryOp::NeqLtGt,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::NullSafeEq,
        BinaryOp::IsDistinctFrom,
        BinaryOp::IsNotDistinctFrom,
    ];

    /// The arithmetic operators.
    pub const ARITHMETIC: [BinaryOp; 5] = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Mod,
    ];

    /// The bitwise operators.
    pub const BITWISE: [BinaryOp; 5] = [
        BinaryOp::BitAnd,
        BinaryOp::BitOr,
        BinaryOp::BitXor,
        BinaryOp::ShiftLeft,
        BinaryOp::ShiftRight,
    ];

    /// The logical connectives.
    pub const LOGICAL: [BinaryOp; 2] = [BinaryOp::And, BinaryOp::Or];

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "!=",
            BinaryOp::NeqLtGt => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::NullSafeEq => "<=>",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "#",
            BinaryOp::ShiftLeft => "<<",
            BinaryOp::ShiftRight => ">>",
            BinaryOp::Concat => "||",
            BinaryOp::IsDistinctFrom => "IS DISTINCT FROM",
            BinaryOp::IsNotDistinctFrom => "IS NOT DISTINCT FROM",
        }
    }

    /// Canonical feature name used by the feature model.
    pub fn feature_name(self) -> &'static str {
        match self {
            BinaryOp::Add => "OP_ADD",
            BinaryOp::Sub => "OP_SUB",
            BinaryOp::Mul => "OP_MUL",
            BinaryOp::Div => "OP_DIV",
            BinaryOp::Mod => "OP_MOD",
            BinaryOp::Eq => "OP_EQ",
            BinaryOp::Neq => "OP_NEQ",
            BinaryOp::NeqLtGt => "OP_NEQ_LTGT",
            BinaryOp::Lt => "OP_LT",
            BinaryOp::Le => "OP_LE",
            BinaryOp::Gt => "OP_GT",
            BinaryOp::Ge => "OP_GE",
            BinaryOp::NullSafeEq => "OP_NULLSAFE_EQ",
            BinaryOp::And => "OP_AND",
            BinaryOp::Or => "OP_OR",
            BinaryOp::BitAnd => "OP_BITAND",
            BinaryOp::BitOr => "OP_BITOR",
            BinaryOp::BitXor => "OP_BITXOR",
            BinaryOp::ShiftLeft => "OP_SHL",
            BinaryOp::ShiftRight => "OP_SHR",
            BinaryOp::Concat => "OP_CONCAT",
            BinaryOp::IsDistinctFrom => "OP_IS_DISTINCT",
            BinaryOp::IsNotDistinctFrom => "OP_IS_NOT_DISTINCT",
        }
    }

    /// Does this operator yield a boolean result?
    pub fn is_comparison(self) -> bool {
        Self::COMPARISONS.contains(&self)
    }

    /// Is this a logical connective (`AND`/`OR`)?
    pub fn is_logical(self) -> bool {
        Self::LOGICAL.contains(&self)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_operators_have_unique_spellings_or_semantics() {
        // `!=` and `<>` intentionally share semantics; everything else must
        // have a unique SQL spelling.
        let spellings: HashSet<_> = BinaryOp::ALL.iter().map(|op| op.sql()).collect();
        assert_eq!(spellings.len(), BinaryOp::ALL.len());
    }

    #[test]
    fn feature_names_are_unique() {
        let names: HashSet<_> = BinaryOp::ALL
            .iter()
            .map(|op| op.feature_name())
            .chain(UnaryOp::ALL.iter().map(|op| op.feature_name()))
            .collect();
        assert_eq!(names.len(), BinaryOp::ALL.len() + UnaryOp::ALL.len());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(BinaryOp::NullSafeEq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert!(!BinaryOp::Eq.is_logical());
    }

    #[test]
    fn categories_are_disjoint_and_cover_subsets_of_all() {
        for op in BinaryOp::COMPARISONS
            .iter()
            .chain(BinaryOp::ARITHMETIC.iter())
            .chain(BinaryOp::BITWISE.iter())
            .chain(BinaryOp::LOGICAL.iter())
        {
            assert!(BinaryOp::ALL.contains(op));
        }
    }
}
