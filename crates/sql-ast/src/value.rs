//! Runtime SQL values and SQL three-valued logic.
//!
//! [`Value`] is the currency of the whole reproduction: the engine evaluates
//! expressions to values, result sets are grids of values, and the oracles
//! compare multisets of value rows.

use crate::hash::Fingerprint128;
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A runtime SQL value.
///
/// # Examples
///
/// ```
/// use sql_ast::Value;
///
/// let v = Value::Integer(42);
/// assert_eq!(v.to_string(), "42");
/// assert!(Value::Null.is_null());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// A 64-bit signed integer.
    Integer(i64),
    /// A double-precision float.
    Real(f64),
    /// A character string.
    Text(String),
    /// A boolean.
    Boolean(bool),
}

/// SQL three-valued logic truth value.
///
/// Predicates in SQL evaluate to one of three outcomes; `WHERE` keeps a row
/// only when its predicate is [`TruthValue::True`]. Ternary Logic
/// Partitioning (TLP) exploits exactly this trichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruthValue {
    /// The predicate holds.
    True,
    /// The predicate does not hold.
    False,
    /// The predicate result is unknown (involves `NULL`).
    Unknown,
}

impl TruthValue {
    /// Three-valued `AND`.
    pub fn and(self, other: TruthValue) -> TruthValue {
        use TruthValue::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued `OR`.
    pub fn or(self, other: TruthValue) -> TruthValue {
        use TruthValue::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Three-valued `NOT`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TruthValue {
        match self {
            TruthValue::True => TruthValue::False,
            TruthValue::False => TruthValue::True,
            TruthValue::Unknown => TruthValue::Unknown,
        }
    }

    /// `true` only for [`TruthValue::True`] — the `WHERE`-clause filter rule.
    pub fn is_true(self) -> bool {
        self == TruthValue::True
    }

    /// Converts back to a nullable boolean [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            TruthValue::True => Value::Boolean(true),
            TruthValue::False => Value::Boolean(false),
            TruthValue::Unknown => Value::Null,
        }
    }

    /// Builds a truth value from a boolean.
    pub fn from_bool(b: bool) -> TruthValue {
        if b {
            TruthValue::True
        } else {
            TruthValue::False
        }
    }
}

impl Value {
    /// Returns `true` if the value is SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The concrete data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Integer(_) => DataType::Integer,
            Value::Real(_) => DataType::Real,
            Value::Text(_) => DataType::Text,
            Value::Boolean(_) => DataType::Boolean,
        }
    }

    /// Convenience constructor for a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Numeric view of the value, if it has one without any coercion:
    /// integers, reals and booleans (0/1) are numeric, text is not.
    pub fn as_f64_strict(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// SQLite-style numeric coercion: text is parsed as a leading numeric
    /// prefix (defaulting to 0), booleans become 0/1.
    pub fn coerce_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Text(s) => Some(parse_numeric_prefix(s)),
        }
    }

    /// SQLite-style integer coercion.
    pub fn coerce_i64(&self) -> Option<i64> {
        self.coerce_f64().map(|f| f as i64)
    }

    /// Text rendering used for implicit casts to `TEXT`.
    pub fn coerce_text(&self) -> Option<String> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(i.to_string()),
            Value::Real(r) => Some(format_real(*r)),
            Value::Boolean(b) => Some(if *b { "1".to_string() } else { "0".to_string() }),
            Value::Text(s) => Some(s.clone()),
        }
    }

    /// Dynamic truthiness as used by dynamically-typed dialects (SQLite):
    /// numbers are true when non-zero, text is parsed numerically first.
    pub fn truthiness_dynamic(&self) -> TruthValue {
        match self {
            Value::Null => TruthValue::Unknown,
            Value::Boolean(b) => TruthValue::from_bool(*b),
            Value::Integer(i) => TruthValue::from_bool(*i != 0),
            Value::Real(r) => TruthValue::from_bool(*r != 0.0),
            Value::Text(s) => TruthValue::from_bool(parse_numeric_prefix(s) != 0.0),
        }
    }

    /// Strict truthiness as used by statically-typed dialects (PostgreSQL):
    /// only booleans and `NULL` are acceptable in a boolean context.
    pub fn truthiness_strict(&self) -> Option<TruthValue> {
        match self {
            Value::Null => Some(TruthValue::Unknown),
            Value::Boolean(b) => Some(TruthValue::from_bool(*b)),
            _ => None,
        }
    }

    /// Total ordering used for `ORDER BY`, `GROUP BY` and result-set
    /// comparison. `NULL` sorts first, then booleans, then numbers, then text
    /// (the SQLite storage-class order, which is a convenient total order for
    /// heterogeneous values).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Boolean(_) => 1,
                Value::Integer(_) | Value::Real(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = a.as_f64_strict().unwrap_or(0.0);
                let fb = b.as_f64_strict().unwrap_or(0.0);
                fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality between two non-`NULL` values of the same "family".
    /// Returns [`TruthValue::Unknown`] when either side is `NULL`.
    pub fn sql_eq(&self, other: &Value) -> TruthValue {
        if self.is_null() || other.is_null() {
            return TruthValue::Unknown;
        }
        TruthValue::from_bool(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL comparison honouring `NULL` propagation. Returns `None` for
    /// `NULL` operands (i.e. the comparison is unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Feeds this value's canonical dedup identity into a fingerprint
    /// hasher, without allocating.
    ///
    /// The identity matches [`Value::dedup_key`] exactly: integral reals and
    /// booleans collapse onto the integer encoding (so `1`, `1.0` and `TRUE`
    /// fingerprint identically, as SQL equality demands), every `NaN` is
    /// canonicalised to one bit pattern, and each variant is tagged so that
    /// e.g. `1` and `'1'` stay distinct. The hasher itself lives in
    /// [`crate::hash`] alongside the other shared hash primitives.
    pub fn fingerprint_into(&self, hasher: &mut Fingerprint128) {
        match self {
            Value::Null => hasher.write_u8(0),
            Value::Integer(i) => {
                hasher.write_u8(1);
                hasher.write_u64(*i as u64);
            }
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 9.0e15 {
                    // Integral reals compare equal to integers in SQL;
                    // normalise them exactly as `dedup_key` does.
                    hasher.write_u8(1);
                    hasher.write_u64(*r as i64 as u64);
                } else {
                    hasher.write_u8(2);
                    let bits = if r.is_nan() {
                        f64::NAN.to_bits()
                    } else {
                        r.to_bits()
                    };
                    hasher.write_u64(bits);
                }
            }
            Value::Text(s) => {
                hasher.write_u8(3);
                hasher.write_u64(s.len() as u64);
                hasher.write_bytes(s.as_bytes());
            }
            Value::Boolean(b) => {
                hasher.write_u8(1);
                hasher.write_u64(i64::from(*b) as u64);
            }
        }
    }

    /// A stable key usable for hashing/dedup in result multisets. Reals are
    /// rendered with full precision; `NULL` has a dedicated tag.
    ///
    /// This is the legacy string form of the row identity; the execution hot
    /// path uses the allocation-free [`row_fingerprint`] /
    /// [`Value::fingerprint_into`] instead, and property tests assert the
    /// two agree.
    pub fn dedup_key(&self) -> String {
        match self {
            Value::Null => "\u{0}N".to_string(),
            Value::Integer(i) => format!("I{i}"),
            Value::Real(r) => {
                // Integral reals compare equal to integers in SQL; normalise
                // them so multiset comparison is not confused by 1 vs 1.0.
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 9.0e15 {
                    format!("I{}", *r as i64)
                } else {
                    format!("R{r:?}")
                }
            }
            Value::Text(s) => format!("T{s}"),
            Value::Boolean(b) => format!("I{}", i64::from(*b)),
        }
    }
}

/// Parses the longest numeric prefix of a string, as SQLite does when
/// coercing text to a number; returns `0.0` when there is none.
pub fn parse_numeric_prefix(s: &str) -> f64 {
    let trimmed = s.trim_start();
    let mut end = 0;
    let bytes = trimmed.as_bytes();
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'+' | b'-' if i == 0 => end = i + 1,
            b'+' | b'-' if seen_exp && matches!(bytes.get(i - 1), Some(b'e') | Some(b'E')) => {
                end = i + 1
            }
            b'0'..=b'9' => {
                seen_digit = true;
                end = i + 1;
            }
            b'.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                end = i + 1;
            }
            b'e' | b'E' if seen_digit && !seen_exp => {
                seen_exp = true;
                end = i + 1;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return 0.0;
    }
    trimmed[..end].parse::<f64>().unwrap_or_else(|_| {
        // Trailing 'e' or sign without exponent digits: retry without it.
        let cleaned: &str = trimmed[..end].trim_end_matches(['e', 'E', '+', '-']);
        cleaned.parse::<f64>().unwrap_or(0.0)
    })
}

/// Renders a real number the way the engine prints it in result sets.
pub fn format_real(r: f64) -> String {
    if r.fract() == 0.0 && r.is_finite() && r.abs() < 1.0e15 {
        format!("{:.1}", r)
    } else {
        format!("{r}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => f.write_str(&format_real(*r)),
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Boolean(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::row_fingerprint;

    #[test]
    fn three_valued_logic_tables() {
        use TruthValue::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn null_propagates_in_equality() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), TruthValue::Unknown);
        assert_eq!(
            Value::Integer(1).sql_eq(&Value::Integer(1)),
            TruthValue::True
        );
        assert_eq!(
            Value::Integer(1).sql_eq(&Value::Integer(2)),
            TruthValue::False
        );
    }

    #[test]
    fn numeric_prefix_parsing() {
        assert_eq!(parse_numeric_prefix("12abc"), 12.0);
        assert_eq!(parse_numeric_prefix("  -3.5xyz"), -3.5);
        assert_eq!(parse_numeric_prefix("abc"), 0.0);
        assert_eq!(parse_numeric_prefix(""), 0.0);
        assert_eq!(parse_numeric_prefix("1e2"), 100.0);
        assert_eq!(parse_numeric_prefix("1e"), 1.0);
    }

    #[test]
    fn display_escapes_quotes() {
        assert_eq!(Value::text("it's").to_string(), "'it''s'");
    }

    #[test]
    fn dedup_key_normalises_integral_reals() {
        assert_eq!(Value::Real(1.0).dedup_key(), Value::Integer(1).dedup_key());
        assert_ne!(Value::Real(1.5).dedup_key(), Value::Integer(1).dedup_key());
        assert_eq!(
            Value::Boolean(true).dedup_key(),
            Value::Integer(1).dedup_key()
        );
    }

    #[test]
    fn row_fingerprint_matches_dedup_key_identity() {
        let samples = [
            Value::Null,
            Value::Integer(1),
            Value::Real(1.0),
            Value::Real(1.5),
            Value::Real(-0.0),
            Value::Real(f64::INFINITY),
            Value::Boolean(true),
            Value::Boolean(false),
            Value::text("1"),
            Value::text(""),
            Value::text("a'b"),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.dedup_key() == b.dedup_key(),
                    row_fingerprint(std::slice::from_ref(a))
                        == row_fingerprint(std::slice::from_ref(b)),
                    "fingerprint disagreement: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn row_fingerprint_distinguishes_row_shapes() {
        // Concatenation ambiguity: ["ab"] vs ["a", "b"] must differ.
        let joined = row_fingerprint(&[Value::text("ab")]);
        let split = row_fingerprint(&[Value::text("a"), Value::text("b")]);
        assert_ne!(joined, split);
        assert_ne!(
            row_fingerprint(&[Value::Null]),
            row_fingerprint(&[Value::Null, Value::Null])
        );
    }

    #[test]
    fn total_order_is_stable_across_types() {
        let mut values = [
            Value::text("a"),
            Value::Integer(5),
            Value::Null,
            Value::Boolean(true),
            Value::Real(2.5),
        ];
        values.sort_by(|a, b| a.total_cmp(b));
        assert!(values[0].is_null());
        assert_eq!(values[1], Value::Boolean(true));
        assert_eq!(values.last().unwrap(), &Value::text("a"));
    }

    #[test]
    fn truthiness_modes_differ_on_text() {
        assert_eq!(Value::text("1").truthiness_dynamic(), TruthValue::True);
        assert_eq!(Value::text("1").truthiness_strict(), None);
        assert_eq!(
            Value::Boolean(false).truthiness_strict(),
            Some(TruthValue::False)
        );
    }
}
