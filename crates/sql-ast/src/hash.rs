//! The workspace's shared non-cryptographic hash primitives.
//!
//! Three families of hashing live in this one module so that no other crate
//! carries its own copy of the constants:
//!
//! * [`fnv1a64`] — 64-bit FNV-1a over bytes, used for name-keyed seed
//!   derivation (the fleet runner hashes dialect names with it);
//! * [`splitmix64`] — the SplitMix64 finaliser, used to turn an XOR of
//!   seed material into a well-mixed 64-bit stream seed ([`mix_seed`]
//!   composes the two exactly the way the fleet runner derives per-dialect
//!   seeds);
//! * [`Fingerprint128`] / [`row_fingerprint`] — the 128-bit FNV-1a hasher
//!   behind result-row fingerprints and compiled-plan cache keys.

use crate::value::Value;

/// 64-bit FNV-1a offset basis.
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Hashes a byte slice with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV1A64_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV1A64_PRIME);
    }
    hash
}

/// The SplitMix64 finaliser: one full mixing step over a 64-bit word.
///
/// Exposed here so seed-derivation code shares one definition instead of
/// inlining the constants. (The `rand` shim's `StdRng` uses the same
/// constants but keeps its own inline copy on purpose: it emulates the
/// external `rand` crate and stays dependency-free, and its stateful
/// stream advance is a different function from this stateless finaliser.)
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stream seed from a base seed and a name:
/// `splitmix64(seed XOR fnv1a64(name))`.
///
/// Deterministic, order-independent and stable across runs — the property
/// the fleet runner relies on for byte-identical serial/parallel campaigns.
pub fn mix_seed(seed: u64, name: &str) -> u64 {
    splitmix64(seed ^ fnv1a64(name.as_bytes()))
}

/// A 128-bit FNV-1a hasher used to fingerprint result rows without
/// allocating.
///
/// The oracles compare query results as multisets of rows; fingerprinting a
/// row to a single `u128` replaces the per-row `String` keys of the legacy
/// path, so the campaign hot loop sorts and compares machine words instead
/// of heap-allocated strings. 128 bits make accidental collisions
/// statistically irrelevant at fleet scale (billions of rows would give a
/// collision probability below 10⁻²⁰).
#[derive(Debug, Clone)]
pub struct Fingerprint128 {
    state: u128,
}

impl Fingerprint128 {
    const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    /// Creates a hasher in its initial state.
    pub fn new() -> Fingerprint128 {
        Fingerprint128 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u128::from(byte);
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    /// Absorbs eight bytes (little-endian).
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.write_u8(byte);
        }
    }

    /// Absorbs eight bytes in a **single** multiply step — roughly 8× fewer
    /// 128-bit multiplies than [`Fingerprint128::write_u64`], at the cost of
    /// not being byte-stream-compatible with it. Used for plan-cache keys,
    /// which only need speed and collision resistance, never byte-level
    /// compatibility with the row-fingerprint encoding.
    pub fn write_word(&mut self, word: u64) {
        self.state ^= u128::from(word);
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    /// Absorbs a string as its length followed by 8-byte words (the tail is
    /// zero-padded; the length prefix keeps the encoding unambiguous).
    /// Word-based companion of [`Fingerprint128::write_bytes`].
    pub fn write_str_words(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.write_word(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.write_word(u64::from_le_bytes(word));
        }
    }

    /// The accumulated 128-bit hash.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fingerprint128 {
    fn default() -> Fingerprint128 {
        Fingerprint128::new()
    }
}

/// Fingerprints one result row to a 128-bit hash of its canonical dedup
/// identity (see [`Value::fingerprint_into`]). Two rows receive the same
/// fingerprint when their legacy [`Value::dedup_key`] strings match; the
/// hash additionally *refines* the legacy joined-string key by
/// length-prefixing text, eliminating its concatenation ambiguity (e.g.
/// `["a\u{1}Tb"]` vs `["a", "b"]` collide as joined strings but not as
/// fingerprints).
pub fn row_fingerprint(row: &[Value]) -> u128 {
    let mut hasher = Fingerprint128::new();
    for value in row {
        value.fingerprint_into(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn splitmix64_is_a_permutation_step() {
        // Distinct inputs map to distinct outputs and the function is pure.
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Reference value of SplitMix64 with seed 0 (first output).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn mix_seed_depends_on_both_inputs() {
        assert_ne!(mix_seed(1, "sqlite"), mix_seed(1, "mysql"));
        assert_ne!(mix_seed(1, "sqlite"), mix_seed(2, "sqlite"));
        assert_eq!(mix_seed(1, "sqlite"), mix_seed(1, "sqlite"));
    }
}
