//! SQL data types used by the generator, the parser, and the engine.
//!
//! The paper's generator produces columns of three data types (integer, string
//! and boolean, see Table 6); expression evaluation may additionally produce
//! real numbers (e.g. `SIN(1)`), so the type lattice here contains a `Real`
//! member even though column generation never uses it directly.

use std::fmt;

/// A SQL data type.
///
/// # Examples
///
/// ```
/// use sql_ast::DataType;
///
/// assert_eq!(DataType::Integer.to_string(), "INTEGER");
/// assert!(DataType::Integer.is_numeric());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// Double-precision floating point (`REAL`). Only produced by evaluation,
    /// never by the column generator.
    Real,
    /// Variable-length character string (`TEXT`).
    Text,
    /// Boolean (`BOOLEAN`).
    Boolean,
    /// The type of the `NULL` literal before any context assigns it a type.
    Null,
}

impl DataType {
    /// All types the statement generator may use for column definitions.
    pub const COLUMN_TYPES: [DataType; 3] = [DataType::Integer, DataType::Text, DataType::Boolean];

    /// All concrete (non-`Null`) types.
    pub const ALL: [DataType; 4] = [
        DataType::Integer,
        DataType::Real,
        DataType::Text,
        DataType::Boolean,
    ];

    /// Returns `true` for `INTEGER` and `REAL`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Real)
    }

    /// Returns the keyword used in SQL text for this type.
    pub fn sql_keyword(self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Real => "REAL",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
            DataType::Null => "NULL",
        }
    }

    /// Canonical feature name of the type (`TYPE_<KEYWORD>`), shared by the
    /// feature model and dialect profile gating so the two can never drift.
    pub fn feature_name(self) -> &'static str {
        match self {
            DataType::Integer => "TYPE_INTEGER",
            DataType::Real => "TYPE_REAL",
            DataType::Text => "TYPE_TEXT",
            DataType::Boolean => "TYPE_BOOLEAN",
            DataType::Null => "TYPE_NULL",
        }
    }

    /// Parses a type keyword as it appears in SQL text.
    ///
    /// Accepts the common dialect synonyms (`INT`, `BIGINT`, `VARCHAR`,
    /// `DOUBLE`, `BOOL`, ...) so that SQL produced for one dialect can be
    /// replayed on another.
    pub fn from_keyword(word: &str) -> Option<DataType> {
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "INT2" | "INT4" | "INT8" => {
                DataType::Integer
            }
            "REAL" | "DOUBLE" | "FLOAT" | "FLOAT4" | "FLOAT8" | "NUMERIC" | "DECIMAL" => {
                DataType::Real
            }
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CHARACTER" | "CLOB" => DataType::Text,
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            "NULL" => DataType::Null,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for ty in DataType::ALL {
            assert_eq!(DataType::from_keyword(ty.sql_keyword()), Some(ty));
        }
    }

    #[test]
    fn synonyms_resolve() {
        assert_eq!(DataType::from_keyword("int"), Some(DataType::Integer));
        assert_eq!(DataType::from_keyword("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::from_keyword("bool"), Some(DataType::Boolean));
        assert_eq!(DataType::from_keyword("double"), Some(DataType::Real));
        assert_eq!(DataType::from_keyword("blob"), None);
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Real.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(!DataType::Boolean.is_numeric());
        assert!(!DataType::Null.is_numeric());
    }

    #[test]
    fn column_types_subset_of_all() {
        for ty in DataType::COLUMN_TYPES {
            assert!(DataType::ALL.contains(&ty));
        }
    }
}
