//! SQL expression AST.

use crate::func::{AggregateFunction, ScalarFunction};
use crate::ops::{BinaryOp, UnaryOp};
use crate::select::Select;
use crate::types::DataType;
use crate::value::Value;
use std::fmt;

/// A (possibly qualified) reference to a column, e.g. `t0.c1` or `c1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table or alias qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates an unqualified column reference.
    pub fn unqualified(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Creates a qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// One `WHEN ... THEN ...` branch of a `CASE` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseBranch {
    /// Condition (or comparand when the `CASE` has an operand).
    pub when: Expr,
    /// Result expression.
    pub then: Expr,
}

/// A SQL scalar expression.
///
/// The variants mirror the grammar productions of the paper's generator
/// (Figure 5): constants, column references, unary/binary operators,
/// functions, `CASE`, `CAST`, predicates (`BETWEEN`, `IN`, `LIKE`, `IS
/// NULL`) and subqueries.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A scalar function call.
    Function {
        /// The function.
        func: ScalarFunction,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// An aggregate function call, e.g. `SUM(c0)` or `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggregateFunction,
        /// The argument; `None` means `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// Whether `DISTINCT` was specified.
        distinct: bool,
    },
    /// A `CASE` expression, with or without an operand.
    Case {
        /// Optional operand (`CASE x WHEN ...`).
        operand: Option<Box<Expr>>,
        /// The `WHEN`/`THEN` branches.
        branches: Vec<CaseBranch>,
        /// Optional `ELSE` expression.
        else_expr: Option<Box<Expr>>,
    },
    /// An explicit `CAST(expr AS type)`.
    Cast {
        /// The expression being cast.
        expr: Box<Expr>,
        /// Target data type.
        data_type: DataType,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// `expr [NOT] IN (list...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// The list of candidate expressions.
        list: Vec<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery producing candidate values.
        subquery: Box<Select>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        subquery: Box<Select>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// A scalar subquery `(SELECT ...)` producing a single value.
    ScalarSubquery(Box<Select>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// `expr IS [NOT] TRUE` / `expr IS [NOT] FALSE`.
    IsBool {
        /// Tested expression.
        expr: Box<Expr>,
        /// Expected truth value.
        target: bool,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The pattern (`%` and `_` wildcards).
        pattern: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand for an integer literal.
    pub fn integer(v: i64) -> Expr {
        Expr::Literal(Value::Integer(v))
    }

    /// Shorthand for a text literal.
    pub fn text(s: impl Into<String>) -> Expr {
        Expr::Literal(Value::Text(s.into()))
    }

    /// Shorthand for a boolean literal.
    pub fn boolean(b: bool) -> Expr {
        Expr::Literal(Value::Boolean(b))
    }

    /// Shorthand for the `NULL` literal.
    pub fn null() -> Expr {
        Expr::Literal(Value::Null)
    }

    /// Shorthand for an unqualified column reference.
    pub fn column(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::unqualified(name))
    }

    /// Shorthand for a qualified column reference.
    pub fn qualified_column(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// Builds `self <op> other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// Builds `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// Builds `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }

    /// Builds `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    /// Builds `self IS TRUE` — the NoREC rewrite wraps predicates this way.
    pub fn is_true(self) -> Expr {
        Expr::IsBool {
            expr: Box::new(self),
            target: true,
            negated: false,
        }
    }

    /// Builds `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// The syntactic depth of the expression (literals and columns are depth
    /// 1). The adaptive generator bounds this (the paper uses max depth 3).
    pub fn depth(&self) -> usize {
        let mut max_child = 0;
        self.for_each_child(&mut |c| max_child = max_child.max(c.depth()));
        1 + max_child
    }

    /// The number of AST nodes in the expression.
    pub fn node_count(&self) -> usize {
        let mut count = 1;
        self.for_each_child(&mut |c| count += c.node_count());
        count
    }

    /// Visits every direct child expression without allocating (the
    /// `Vec`-returning [`Expr::children`] is kept for call sites that need
    /// to collect).
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::IsBool { expr, .. } => f(expr),
            Expr::Binary { left, right, .. } => {
                f(left);
                f(right);
            }
            Expr::Function { args, .. } => args.iter().for_each(f),
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    f(op);
                }
                for b in branches {
                    f(&b.when);
                    f(&b.then);
                }
                if let Some(e) = else_expr {
                    f(e);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                f(expr);
                f(low);
                f(high);
            }
            Expr::InList { expr, list, .. } => {
                f(expr);
                list.iter().for_each(f);
            }
            Expr::InSubquery { expr, .. } => f(expr),
            Expr::Like { expr, pattern, .. } => {
                f(expr);
                f(pattern);
            }
        }
    }

    /// Immediate sub-expressions (not descending into subqueries).
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::ScalarSubquery(_) | Expr::Exists { .. } => {
                Vec::new()
            }
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::IsBool { expr, .. } => vec![expr],
            Expr::Binary { left, right, .. } => vec![left, right],
            Expr::Function { args, .. } => args.iter().collect(),
            Expr::Aggregate { arg, .. } => arg.iter().map(|a| a.as_ref()).collect(),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let mut out: Vec<&Expr> = Vec::new();
                if let Some(op) = operand {
                    out.push(op);
                }
                for b in branches {
                    out.push(&b.when);
                    out.push(&b.then);
                }
                if let Some(e) = else_expr {
                    out.push(e);
                }
                out
            }
            Expr::Between {
                expr, low, high, ..
            } => vec![expr, low, high],
            Expr::InList { expr, list, .. } => {
                let mut out = vec![expr.as_ref()];
                out.extend(list.iter());
                out
            }
            Expr::InSubquery { expr, .. } => vec![expr],
            Expr::Like { expr, pattern, .. } => vec![expr, pattern],
        }
    }

    /// Whether the expression contains an aggregate call at any depth
    /// (not descending into subqueries, which have their own scope).
    pub fn contains_aggregate(&self) -> bool {
        if matches!(self, Expr::Aggregate { .. }) {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |c| found = found || c.contains_aggregate());
        found
    }

    /// Whether the expression contains a subquery of any form.
    pub fn contains_subquery(&self) -> bool {
        if matches!(
            self,
            Expr::ScalarSubquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. }
        ) {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |c| found = found || c.contains_subquery());
        found
    }

    /// Feeds an exact structural fingerprint of the expression into a
    /// 128-bit hasher. Used as a compiled-plan cache key by the engine.
    ///
    /// Unlike [`crate::row_fingerprint`], which canonicalises values the way
    /// SQL equality does (`1` = `1.0` = `TRUE`), this fingerprint is
    /// *exact*: two expressions hash identically only when they would
    /// compile to the same plan, so `1` and `1.0` — which produce different
    /// output values — stay distinct.
    ///
    /// The encoding is word-based ([`crate::Fingerprint128::write_word`])
    /// and identifies operators and functions by enum discriminant — this
    /// runs on the engine's per-statement hot path, so a node costs one or
    /// two multiply steps, not a name's worth of byte hashing.
    ///
    /// Subquery bodies **are** descended into (via
    /// [`Select::fingerprint_into`](crate::Select::fingerprint_into)), so
    /// subquery-containing expressions are safe cache keys: two expressions
    /// hash identically only when their whole trees — including every
    /// clause of every embedded query — are structurally identical.
    pub fn fingerprint_into(&self, hasher: &mut crate::Fingerprint128) {
        /// Packs a variant tag with up to two small payload fields into one
        /// hashed word.
        fn tag(h: &mut crate::Fingerprint128, t: u64, a: u64, b: u64) {
            h.write_word(t | (a << 8) | (b << 32));
        }
        fn value_exact(v: &Value, h: &mut crate::Fingerprint128) {
            match v {
                Value::Null => h.write_word(0),
                Value::Integer(i) => {
                    h.write_word(1);
                    h.write_word(*i as u64);
                }
                Value::Real(r) => {
                    h.write_word(2);
                    h.write_word(r.to_bits());
                }
                Value::Text(s) => {
                    h.write_word(3);
                    h.write_str_words(s);
                }
                Value::Boolean(b) => h.write_word(4 | (u64::from(*b) << 8)),
            }
        }
        match self {
            Expr::Literal(v) => {
                tag(hasher, 1, 0, 0);
                value_exact(v, hasher);
            }
            Expr::Column(c) => {
                tag(hasher, 2, u64::from(c.table.is_some()), 0);
                if let Some(t) = &c.table {
                    hasher.write_str_words(t);
                }
                hasher.write_str_words(&c.column);
            }
            Expr::Unary { op, expr } => {
                tag(hasher, 3, *op as u64, 0);
                expr.fingerprint_into(hasher);
            }
            Expr::Binary { left, op, right } => {
                tag(hasher, 4, *op as u64, 0);
                left.fingerprint_into(hasher);
                right.fingerprint_into(hasher);
            }
            Expr::Function { func, args } => {
                tag(hasher, 5, *func as u64, args.len() as u64);
                for a in args {
                    a.fingerprint_into(hasher);
                }
            }
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                tag(
                    hasher,
                    6,
                    (*func as u64) | (u64::from(*distinct) << 7),
                    u64::from(arg.is_some()),
                );
                if let Some(a) = arg {
                    a.fingerprint_into(hasher);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                tag(
                    hasher,
                    7,
                    u64::from(operand.is_some()) | (u64::from(else_expr.is_some()) << 1),
                    branches.len() as u64,
                );
                if let Some(o) = operand {
                    o.fingerprint_into(hasher);
                }
                for b in branches {
                    b.when.fingerprint_into(hasher);
                    b.then.fingerprint_into(hasher);
                }
                if let Some(e) = else_expr {
                    e.fingerprint_into(hasher);
                }
            }
            Expr::Cast { expr, data_type } => {
                tag(hasher, 8, *data_type as u64, 0);
                expr.fingerprint_into(hasher);
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                tag(hasher, 9, u64::from(*negated), 0);
                expr.fingerprint_into(hasher);
                low.fingerprint_into(hasher);
                high.fingerprint_into(hasher);
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                tag(hasher, 10, u64::from(*negated), list.len() as u64);
                expr.fingerprint_into(hasher);
                for e in list {
                    e.fingerprint_into(hasher);
                }
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => {
                tag(hasher, 11, u64::from(*negated), 0);
                expr.fingerprint_into(hasher);
                subquery.fingerprint_into(hasher);
            }
            Expr::Exists { negated, subquery } => {
                tag(hasher, 12, u64::from(*negated), 0);
                subquery.fingerprint_into(hasher);
            }
            Expr::ScalarSubquery(subquery) => {
                tag(hasher, 13, 0, 0);
                subquery.fingerprint_into(hasher);
            }
            Expr::IsNull { expr, negated } => {
                tag(hasher, 14, u64::from(*negated), 0);
                expr.fingerprint_into(hasher);
            }
            Expr::IsBool {
                expr,
                target,
                negated,
            } => {
                tag(
                    hasher,
                    15,
                    u64::from(*target) | (u64::from(*negated) << 1),
                    0,
                );
                expr.fingerprint_into(hasher);
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                tag(hasher, 16, u64::from(*negated), 0);
                expr.fingerprint_into(hasher);
                pattern.fingerprint_into(hasher);
            }
        }
    }

    /// Collects every column referenced in the expression (not descending
    /// into subqueries).
    pub fn referenced_columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        if let Expr::Column(c) = self {
            out.push(c);
        }
        for child in self.children() {
            child.collect_columns(out);
        }
    }
}

fn negation(negated: bool) -> &'static str {
    if negated {
        "NOT "
    } else {
        ""
    }
}

impl fmt::Display for Expr {
    /// Renders the expression as SQL text. Compound expressions are fully
    /// parenthesised so that the rendering is unambiguous for every dialect
    /// and round-trips through the parser.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                // A space after `-`/`+` prevents `--` (which would start a
                // SQL line comment) when the operand itself is negative.
                UnaryOp::Neg | UnaryOp::Plus => write!(f, "({} {expr})", op.sql().trim()),
                UnaryOp::BitNot => write!(f, "(~{expr})"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Function { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{}(", func.name())?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                match arg {
                    Some(a) => write!(f, "{a}")?,
                    None => f.write_str("*")?,
                }
                f.write_str(")")
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                f.write_str("(CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for b in branches {
                    write!(f, " WHEN {} THEN {}", b.when, b.then)?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END)")
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(f, "({expr} {}BETWEEN {low} AND {high})", negation(*negated)),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", negation(*negated))?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => write!(f, "({expr} {}IN ({subquery}))", negation(*negated)),
            Expr::Exists { subquery, negated } => {
                write!(f, "({}EXISTS ({subquery}))", negation(*negated))
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", negation(*negated))
            }
            Expr::IsBool {
                expr,
                target,
                negated,
            } => write!(
                f,
                "({expr} IS {}{})",
                negation(*negated),
                if *target { "TRUE" } else { "FALSE" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(f, "({expr} {}LIKE {pattern})", negation(*negated)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shorthand_renders_expected_sql() {
        let e = Expr::column("c0").eq(Expr::integer(1)).and(
            Expr::Function {
                func: ScalarFunction::Nullif,
                args: vec![Expr::integer(2), Expr::column("c0")],
            }
            .binary(BinaryOp::Neq, Expr::integer(1)),
        );
        assert_eq!(e.to_string(), "((c0 = 1) AND (NULLIF(2, c0) != 1))");
    }

    #[test]
    fn depth_and_node_count() {
        let leaf = Expr::integer(1);
        assert_eq!(leaf.depth(), 1);
        assert_eq!(leaf.node_count(), 1);
        let nested = Expr::column("c0").eq(Expr::integer(1)).not();
        assert_eq!(nested.depth(), 3);
        assert_eq!(nested.node_count(), 4);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Aggregate {
            func: AggregateFunction::Count,
            arg: None,
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        assert_eq!(agg.to_string(), "COUNT(*)");
        let wrapped = Expr::integer(1).binary(BinaryOp::Add, agg);
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::integer(1).contains_aggregate());
    }

    #[test]
    fn referenced_columns_are_collected() {
        let e = Expr::qualified_column("t0", "c0")
            .eq(Expr::column("c1"))
            .and(Expr::column("c1").is_null());
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].table.as_deref(), Some("t0"));
    }

    #[test]
    fn case_renders_all_parts() {
        let e = Expr::Case {
            operand: Some(Box::new(Expr::integer(1))),
            branches: vec![CaseBranch {
                when: Expr::integer(2),
                then: Expr::column("c0"),
            }],
            else_expr: Some(Box::new(Expr::null())),
        };
        assert_eq!(e.to_string(), "(CASE 1 WHEN 2 THEN c0 ELSE NULL END)");
    }

    #[test]
    fn is_true_and_between_render() {
        let e = Expr::column("c0").is_true();
        assert_eq!(e.to_string(), "(c0 IS TRUE)");
        let b = Expr::Between {
            expr: Box::new(Expr::column("c0")),
            low: Box::new(Expr::integer(0)),
            high: Box::new(Expr::integer(10)),
            negated: true,
        };
        assert_eq!(b.to_string(), "(c0 NOT BETWEEN 0 AND 10)");
    }
}
