//! Top-level SQL statements (DDL, DML and queries).

use crate::expr::Expr;
use crate::select::Select;
use crate::types::DataType;
use std::fmt;

/// A constraint attached to a single column definition.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnConstraint {
    /// `PRIMARY KEY`
    PrimaryKey,
    /// `NOT NULL`
    NotNull,
    /// `UNIQUE`
    Unique,
    /// `DEFAULT <expr>`
    Default(Expr),
}

impl fmt::Display for ColumnConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnConstraint::PrimaryKey => f.write_str("PRIMARY KEY"),
            ColumnConstraint::NotNull => f.write_str("NOT NULL"),
            ColumnConstraint::Unique => f.write_str("UNIQUE"),
            ColumnConstraint::Default(e) => write!(f, "DEFAULT {e}"),
        }
    }
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Column constraints, in declaration order.
    pub constraints: Vec<ColumnConstraint>,
}

impl ColumnDef {
    /// A plain column with no constraints.
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type,
            constraints: Vec::new(),
        }
    }

    /// Whether the column definition carries a given constraint kind.
    pub fn has_primary_key(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| matches!(c, ColumnConstraint::PrimaryKey))
    }

    /// Whether the column is declared `NOT NULL` (directly or via PK).
    pub fn is_not_null(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| matches!(c, ColumnConstraint::NotNull | ColumnConstraint::PrimaryKey))
    }

    /// Whether the column is declared `UNIQUE` (directly or via PK).
    pub fn is_unique(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| matches!(c, ColumnConstraint::Unique | ColumnConstraint::PrimaryKey))
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)?;
        for c in &self.constraints {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

/// A table-level constraint in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (cols...)`
    PrimaryKey(Vec<String>),
    /// `UNIQUE (cols...)`
    Unique(Vec<String>),
}

impl fmt::Display for TableConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kw, cols) = match self {
            TableConstraint::PrimaryKey(c) => ("PRIMARY KEY", c),
            TableConstraint::Unique(c) => ("UNIQUE", c),
        };
        write!(f, "{kw} ({})", cols.join(", "))
    }
}

/// `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// `IF NOT EXISTS` flag.
    pub if_not_exists: bool,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE ")?;
        if self.if_not_exists {
            f.write_str("IF NOT EXISTS ")?;
        }
        write!(f, "{} (", self.name)?;
        let mut first = true;
        for c in &self.columns {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        for c in &self.constraints {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        f.write_str(")")
    }
}

/// `CREATE [UNIQUE] INDEX`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Table being indexed.
    pub table: String,
    /// Indexed columns.
    pub columns: Vec<String>,
    /// `UNIQUE` flag.
    pub unique: bool,
    /// Optional partial-index predicate (`WHERE ...`).
    pub where_clause: Option<Expr>,
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CREATE ")?;
        if self.unique {
            f.write_str("UNIQUE ")?;
        }
        write!(
            f,
            "INDEX {} ON {}({})",
            self.name,
            self.table,
            self.columns.join(", ")
        )?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// `CREATE VIEW`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    /// View name.
    pub name: String,
    /// Optional explicit column names.
    pub columns: Vec<String>,
    /// The defining query.
    pub query: Box<Select>,
}

impl fmt::Display for CreateView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {}", self.name)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " AS {}", self.query)
    }
}

/// `INSERT INTO`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Vec<String>,
    /// Rows of value expressions.
    pub values: Vec<Vec<Expr>>,
    /// Whether to silently skip constraint-violating rows (`OR IGNORE`).
    pub or_ignore: bool,
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("INSERT ")?;
        if self.or_ignore {
            f.write_str("OR IGNORE ")?;
        }
        write!(f, "INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        f.write_str(" VALUES ")?;
        for (i, row) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str("(")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// `UPDATE ... SET ... [WHERE ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (col, val)) in self.assignments.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{col} = {val}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// `DELETE FROM ... [WHERE ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// The kind of object dropped by a `DROP` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropKind {
    /// `DROP TABLE`
    Table,
    /// `DROP VIEW`
    View,
    /// `DROP INDEX`
    Index,
}

impl DropKind {
    /// SQL keyword.
    pub fn sql(self) -> &'static str {
        match self {
            DropKind::Table => "TABLE",
            DropKind::View => "VIEW",
            DropKind::Index => "INDEX",
        }
    }
}

/// How `BEGIN` acquires its write intent.
///
/// SQLite's `BEGIN DEFERRED | IMMEDIATE` distinction, carried on the AST so
/// the concurrent-session engine can honour it: `IMMEDIATE` declares eager
/// write intent on the whole database at `BEGIN` time (its commit conflicts
/// with *any* concurrent commit under first-committer-wins), while
/// `DEFERRED` — and a bare `BEGIN` — accumulates write intent lazily as the
/// transaction mutates tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BeginMode {
    /// Bare `BEGIN`: deferred semantics, rendered without a mode keyword.
    #[default]
    Plain,
    /// `BEGIN DEFERRED`: semantically identical to [`BeginMode::Plain`],
    /// kept distinct so rendering round-trips.
    Deferred,
    /// `BEGIN IMMEDIATE`: eager write intent on every table.
    Immediate,
}

impl BeginMode {
    /// Whether the transaction declares write intent eagerly at `BEGIN`.
    pub fn is_immediate(self) -> bool {
        matches!(self, BeginMode::Immediate)
    }
}

/// A top-level SQL statement.
///
/// The paper's generator implements six statements (`CREATE TABLE`,
/// `CREATE INDEX`, `CREATE VIEW`, `INSERT`, `ANALYZE`, `SELECT`); this
/// reproduction additionally models `UPDATE`, `DELETE`, `DROP`, `REFRESH`
/// and the transaction-control statements (`BEGIN [DEFERRED | IMMEDIATE]`,
/// `COMMIT`, `ROLLBACK`, `SAVEPOINT`, `ROLLBACK TO`, `RELEASE SAVEPOINT`)
/// because several dialect quirks (Section 6, "Manual effort") involve them
/// and the rollback and isolation oracles drive multi-statement
/// transactional sessions through them.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(CreateTable),
    /// `CREATE INDEX`.
    CreateIndex(CreateIndex),
    /// `CREATE VIEW`.
    CreateView(CreateView),
    /// `INSERT`.
    Insert(Insert),
    /// `UPDATE`.
    Update(Update),
    /// `DELETE`.
    Delete(Delete),
    /// `ANALYZE [table]`.
    Analyze(Option<String>),
    /// A query.
    Select(Box<Select>),
    /// `DROP TABLE/VIEW/INDEX`.
    Drop {
        /// What kind of object is dropped.
        kind: DropKind,
        /// Object name.
        name: String,
        /// `IF EXISTS` flag.
        if_exists: bool,
    },
    /// `REFRESH TABLE <name>` (CrateDB-style eventual-consistency flush).
    Refresh(String),
    /// `BEGIN [DEFERRED | IMMEDIATE]` — opens an explicit transaction.
    Begin(BeginMode),
    /// `COMMIT` — makes the open transaction's writes permanent (a no-op in
    /// autocommit, which is what JDBC-autocommit-off dialects rely on).
    /// Under concurrent sessions a commit can fail with a serialization
    /// error when first-committer-wins conflict detection rejects it.
    Commit,
    /// `ROLLBACK` — discards the open transaction's writes.
    Rollback,
    /// `SAVEPOINT <name>` — marks a point within the open transaction.
    Savepoint(String),
    /// `ROLLBACK TO <name>` — rewinds the open transaction to a savepoint,
    /// keeping the transaction (and the savepoint) active.
    RollbackTo(String),
    /// `RELEASE SAVEPOINT <name>` — removes the savepoint (and every later
    /// one), keeping the changes made since it was established.
    ReleaseSavepoint(String),
}

impl Statement {
    /// Is this statement DDL (schema-changing)?
    pub fn is_ddl(&self) -> bool {
        matches!(
            self,
            Statement::CreateTable(_)
                | Statement::CreateIndex(_)
                | Statement::CreateView(_)
                | Statement::Drop { .. }
        )
    }

    /// Is this statement DML (data-changing)?
    pub fn is_dml(&self) -> bool {
        matches!(
            self,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)
        )
    }

    /// Is this a query?
    pub fn is_query(&self) -> bool {
        matches!(self, Statement::Select(_))
    }

    /// A bare `BEGIN` ([`BeginMode::Plain`]).
    pub fn begin() -> Statement {
        Statement::Begin(BeginMode::Plain)
    }

    /// Is this a transaction-control statement (`BEGIN`, `COMMIT`,
    /// `ROLLBACK`, `SAVEPOINT`, `ROLLBACK TO`, `RELEASE SAVEPOINT`)?
    pub fn is_txn_control(&self) -> bool {
        matches!(
            self,
            Statement::Begin(_)
                | Statement::Commit
                | Statement::Rollback
                | Statement::Savepoint(_)
                | Statement::RollbackTo(_)
                | Statement::ReleaseSavepoint(_)
        )
    }

    /// Canonical feature name of the statement kind (`STMT_<KIND>`).
    pub fn feature_name(&self) -> &'static str {
        match self {
            Statement::CreateTable(_) => "STMT_CREATE_TABLE",
            Statement::CreateIndex(_) => "STMT_CREATE_INDEX",
            Statement::CreateView(_) => "STMT_CREATE_VIEW",
            Statement::Insert(_) => "STMT_INSERT",
            Statement::Update(_) => "STMT_UPDATE",
            Statement::Delete(_) => "STMT_DELETE",
            Statement::Analyze(_) => "STMT_ANALYZE",
            Statement::Select(_) => "STMT_SELECT",
            Statement::Drop { .. } => "STMT_DROP",
            Statement::Refresh(_) => "STMT_REFRESH",
            Statement::Begin(_) => "STMT_BEGIN",
            Statement::Commit => "STMT_COMMIT",
            Statement::Rollback => "STMT_ROLLBACK",
            Statement::Savepoint(_) => "STMT_SAVEPOINT",
            Statement::RollbackTo(_) => "STMT_ROLLBACK_TO",
            Statement::ReleaseSavepoint(_) => "STMT_RELEASE_SAVEPOINT",
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(s) => write!(f, "{s}"),
            Statement::CreateIndex(s) => write!(f, "{s}"),
            Statement::CreateView(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
            Statement::Analyze(t) => match t {
                Some(t) => write!(f, "ANALYZE {t}"),
                None => f.write_str("ANALYZE"),
            },
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Drop {
                kind,
                name,
                if_exists,
            } => {
                write!(f, "DROP {} ", kind.sql())?;
                if *if_exists {
                    f.write_str("IF EXISTS ")?;
                }
                f.write_str(name)
            }
            Statement::Refresh(t) => write!(f, "REFRESH TABLE {t}"),
            Statement::Begin(mode) => match mode {
                BeginMode::Plain => f.write_str("BEGIN"),
                BeginMode::Deferred => f.write_str("BEGIN DEFERRED"),
                BeginMode::Immediate => f.write_str("BEGIN IMMEDIATE"),
            },
            Statement::Commit => f.write_str("COMMIT"),
            Statement::Rollback => f.write_str("ROLLBACK"),
            Statement::Savepoint(name) => write!(f, "SAVEPOINT {name}"),
            Statement::RollbackTo(name) => write!(f, "ROLLBACK TO {name}"),
            Statement::ReleaseSavepoint(name) => write!(f, "RELEASE SAVEPOINT {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::select::SelectItem;

    #[test]
    fn create_table_renders() {
        let stmt = Statement::CreateTable(CreateTable {
            name: "t0".into(),
            if_not_exists: false,
            columns: vec![
                ColumnDef {
                    name: "c0".into(),
                    data_type: DataType::Integer,
                    constraints: vec![ColumnConstraint::NotNull],
                },
                ColumnDef::new("c1", DataType::Text),
            ],
            constraints: vec![TableConstraint::PrimaryKey(vec!["c0".into()])],
        });
        assert_eq!(
            stmt.to_string(),
            "CREATE TABLE t0 (c0 INTEGER NOT NULL, c1 TEXT, PRIMARY KEY (c0))"
        );
        assert!(stmt.is_ddl());
        assert!(!stmt.is_dml());
    }

    #[test]
    fn create_index_renders_with_partial_predicate() {
        let stmt = Statement::CreateIndex(CreateIndex {
            name: "i0".into(),
            table: "t0".into(),
            columns: vec!["c0".into(), "c1".into()],
            unique: true,
            where_clause: Some(Expr::column("c0").is_null()),
        });
        assert_eq!(
            stmt.to_string(),
            "CREATE UNIQUE INDEX i0 ON t0(c0, c1) WHERE (c0 IS NULL)"
        );
    }

    #[test]
    fn insert_renders_multiple_rows() {
        let stmt = Statement::Insert(Insert {
            table: "t0".into(),
            columns: vec!["c0".into()],
            values: vec![vec![Expr::integer(1)], vec![Expr::null()]],
            or_ignore: true,
        });
        assert_eq!(
            stmt.to_string(),
            "INSERT OR IGNORE INTO t0 (c0) VALUES (1), (NULL)"
        );
        assert!(stmt.is_dml());
    }

    #[test]
    fn view_and_misc_statements_render() {
        let view = Statement::CreateView(CreateView {
            name: "v0".into(),
            columns: vec!["c0".into()],
            query: Box::new(Select::from_table(
                "t0",
                vec![SelectItem::expr(Expr::column("c0"))],
            )),
        });
        assert_eq!(view.to_string(), "CREATE VIEW v0 (c0) AS SELECT c0 FROM t0");
        assert_eq!(Statement::Analyze(None).to_string(), "ANALYZE");
        assert_eq!(
            Statement::Analyze(Some("t0".into())).to_string(),
            "ANALYZE t0"
        );
        assert_eq!(
            Statement::Refresh("t0".into()).to_string(),
            "REFRESH TABLE t0"
        );
        assert_eq!(Statement::Commit.to_string(), "COMMIT");
        assert_eq!(Statement::begin().to_string(), "BEGIN");
        assert_eq!(
            Statement::Begin(BeginMode::Deferred).to_string(),
            "BEGIN DEFERRED"
        );
        assert_eq!(
            Statement::Begin(BeginMode::Immediate).to_string(),
            "BEGIN IMMEDIATE"
        );
        assert!(BeginMode::Immediate.is_immediate());
        assert!(!BeginMode::Deferred.is_immediate());
        assert_eq!(Statement::Rollback.to_string(), "ROLLBACK");
        assert_eq!(
            Statement::Savepoint("sp1".into()).to_string(),
            "SAVEPOINT sp1"
        );
        assert_eq!(
            Statement::RollbackTo("sp1".into()).to_string(),
            "ROLLBACK TO sp1"
        );
        assert_eq!(
            Statement::ReleaseSavepoint("sp1".into()).to_string(),
            "RELEASE SAVEPOINT sp1"
        );
        assert!(Statement::begin().is_txn_control());
        assert!(Statement::ReleaseSavepoint("s".into()).is_txn_control());
        assert!(!Statement::Analyze(None).is_txn_control());
        assert_eq!(
            Statement::Drop {
                kind: DropKind::Table,
                name: "t0".into(),
                if_exists: true
            }
            .to_string(),
            "DROP TABLE IF EXISTS t0"
        );
    }

    #[test]
    fn column_def_constraint_queries() {
        let mut col = ColumnDef::new("c0", DataType::Integer);
        assert!(!col.is_not_null());
        col.constraints.push(ColumnConstraint::PrimaryKey);
        assert!(col.is_not_null());
        assert!(col.is_unique());
        assert!(col.has_primary_key());
    }

    #[test]
    fn statement_feature_names_are_distinct() {
        use std::collections::HashSet;
        let stmts = [
            Statement::begin(),
            Statement::Commit,
            Statement::Rollback,
            Statement::Savepoint("s".into()),
            Statement::RollbackTo("s".into()),
            Statement::ReleaseSavepoint("s".into()),
            Statement::Analyze(None),
            Statement::Refresh("t".into()),
        ];
        let names: HashSet<_> = stmts.iter().map(|s| s.feature_name()).collect();
        assert_eq!(names.len(), stmts.len());
    }
}
