//! SQL tokenizer.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Word(String),
    /// An integer literal.
    Integer(i64),
    /// A floating-point literal.
    Real(f64),
    /// A single-quoted string literal (quotes removed, `''` unescaped).
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=`
    Neq,
    /// `<>`
    NeqLtGt,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<=>`
    NullSafeEq,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `||`
    DoublePipe,
    /// `#`
    Hash,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `~`
    Tilde,
}

impl Token {
    /// If the token is a word, its uppercase form (used for keyword matching).
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Word(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// A token together with the byte offset at which it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of its first character.
    pub offset: usize,
}

/// Tokenizes SQL text.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated string literals, malformed
/// numbers or unexpected characters.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 is copied byte-wise; we only split
                        // on ASCII quote characters so this is safe.
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::StringLit(s),
                    offset: start,
                });
            }
            b'"' => {
                // Double-quoted identifier.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated quoted identifier", start));
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(SpannedToken {
                    token: Token::Word(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let mut end = i;
                let mut is_real = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'0'..=b'9' => end += 1,
                        b'.' if !is_real => {
                            is_real = true;
                            end += 1;
                        }
                        b'e' | b'E'
                            if end + 1 < bytes.len()
                                && (bytes[end + 1].is_ascii_digit()
                                    || bytes[end + 1] == b'+'
                                    || bytes[end + 1] == b'-') =>
                        {
                            is_real = true;
                            end += 2;
                        }
                        _ => break,
                    }
                }
                let text = &input[i..end];
                let token = if is_real {
                    Token::Real(text.parse::<f64>().map_err(|_| {
                        ParseError::new(format!("malformed number '{text}'"), start)
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Token::Integer(v),
                        Err(_) => Token::Real(text.parse::<f64>().map_err(|_| {
                            ParseError::new(format!("malformed number '{text}'"), start)
                        })?),
                    }
                };
                tokens.push(SpannedToken {
                    token,
                    offset: start,
                });
                i = end;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(SpannedToken {
                    token: Token::Word(input[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            b'(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(SpannedToken {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            b';' => {
                tokens.push(SpannedToken {
                    token: Token::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(SpannedToken {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(SpannedToken {
                    token: Token::Plus,
                    offset: start,
                });
                i += 1;
            }
            b'-' => {
                tokens.push(SpannedToken {
                    token: Token::Minus,
                    offset: start,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(SpannedToken {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            b'%' => {
                tokens.push(SpannedToken {
                    token: Token::Percent,
                    offset: start,
                });
                i += 1;
            }
            b'~' => {
                tokens.push(SpannedToken {
                    token: Token::Tilde,
                    offset: start,
                });
                i += 1;
            }
            b'#' => {
                tokens.push(SpannedToken {
                    token: Token::Hash,
                    offset: start,
                });
                i += 1;
            }
            b'&' => {
                tokens.push(SpannedToken {
                    token: Token::Amp,
                    offset: start,
                });
                i += 1;
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(SpannedToken {
                        token: Token::DoublePipe,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Pipe,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(SpannedToken {
                    token: Token::Eq,
                    offset: start,
                });
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Neq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected character '!'", start));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') && bytes.get(i + 2) == Some(&b'>') {
                    tokens.push(SpannedToken {
                        token: Token::NullSafeEq,
                        offset: start,
                    });
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(SpannedToken {
                        token: Token::NeqLtGt,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'<') {
                    tokens.push(SpannedToken {
                        token: Token::Shl,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(SpannedToken {
                        token: Token::Shr,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", other as char),
                    start,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_basic_statement() {
        let t = toks("SELECT c0 FROM t0 WHERE c0 = 1;");
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[4], Token::Word("WHERE".into()));
        assert_eq!(t[6], Token::Eq);
        assert_eq!(t[7], Token::Integer(1));
        assert_eq!(*t.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(toks("<=>"), vec![Token::NullSafeEq]);
        assert_eq!(
            toks("<= >= <> != << >> ||"),
            vec![
                Token::Le,
                Token::Ge,
                Token::NeqLtGt,
                Token::Neq,
                Token::Shl,
                Token::Shr,
                Token::DoublePipe,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        assert_eq!(toks("'it''s'"), vec![Token::StringLit("it's".to_string())]);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 1e3"),
            vec![Token::Integer(1), Token::Real(2.5), Token::Real(1000.0),]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let t = toks("SELECT 1 -- trailing comment\n, 2");
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Integer(1),
                Token::Comma,
                Token::Integer(2)
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn rejects_lone_bang() {
        assert!(tokenize("SELECT !x").is_err());
    }
}
