//! # sql-parser
//!
//! A hand-written lexer and recursive-descent parser that turns SQL text
//! into the [`sql_ast`] types.
//!
//! In the SQLancer++ architecture the platform and the DBMS under test
//! communicate exclusively through SQL *text* (the platform has no access to
//! DBMS internals). The simulated DBMS fleet in `dbms-sim` therefore parses
//! incoming statements with this crate, exactly as a real server would, and
//! produces syntax errors that feed the adaptive generator's validity
//! feedback.
//!
//! # Examples
//!
//! ```
//! use sql_parser::parse_statement;
//!
//! let stmt = parse_statement("SELECT c0 FROM t0 WHERE NULLIF(2, c0) != 1").unwrap();
//! assert_eq!(stmt.to_string(), "SELECT c0 FROM t0 WHERE (NULLIF(2, c0) != 1)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod lexer;
mod parser;

pub use error::ParseError;
pub use lexer::{tokenize, SpannedToken, Token};
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_paper_listing_2() {
        // Listing 2 of the paper (the 10-year-old SQLite REPLACE bug).
        let script = "
            CREATE TABLE t0(c0 TEXT, PRIMARY KEY (c0));
            INSERT INTO t0 (c0) VALUES (1);
            SELECT * FROM t0 WHERE t0.c0 = REPLACE(1, ' ', 0);
            SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE(1, ' ', 0);
        ";
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(stmts[0].is_ddl());
        assert!(stmts[1].is_dml());
        assert!(stmts[2].is_query());
    }

    #[test]
    fn round_trips_paper_listing_3() {
        // Listing 3 of the paper (query-flattener bug with subqueries).
        let script = "
            CREATE TABLE t0(c0 INT);
            CREATE TABLE t1(c0 INT);
            INSERT INTO t0 (c0) VALUES (1);
            CREATE VIEW v0(c0) AS SELECT 0 FROM t1 RIGHT JOIN t0 ON 1;
            SELECT t0.c0 FROM v0 LEFT JOIN (SELECT 'a' AS col0 FROM v0 WHERE FALSE) AS sub0 ON v0.c0,
                t0 RIGHT JOIN (SELECT NULL AS col0 FROM v0) AS sub1 ON t0.c0 WHERE t0.c0;
        ";
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts.len(), 5);
        let rendered = stmts[4].to_string();
        assert!(rendered.contains("RIGHT JOIN"));
        assert!(rendered.contains("WHERE t0.c0"));
    }

    #[test]
    fn round_trips_transaction_control_statements() {
        use sql_ast::Statement;
        let script = "
            BEGIN;
            INSERT INTO t0 (c0) VALUES (1);
            SAVEPOINT sp1;
            DELETE FROM t0;
            ROLLBACK TO sp1;
            RELEASE SAVEPOINT sp1;
            COMMIT;
            BEGIN TRANSACTION;
            ROLLBACK;
        ";
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts[0], Statement::begin());
        assert_eq!(stmts[2], Statement::Savepoint("sp1".into()));
        assert_eq!(stmts[4], Statement::RollbackTo("sp1".into()));
        assert_eq!(stmts[5], Statement::ReleaseSavepoint("sp1".into()));
        assert_eq!(stmts[6], Statement::Commit);
        assert_eq!(stmts[7], Statement::begin());
        assert_eq!(stmts[8], Statement::Rollback);
        // Rendered forms parse back to the same AST.
        for stmt in &stmts {
            assert_eq!(&parse_statement(&stmt.to_string()).unwrap(), stmt);
        }
        // Noise words are accepted.
        assert_eq!(parse_statement("BEGIN WORK").unwrap(), Statement::begin());
        assert_eq!(
            parse_statement("ROLLBACK TO SAVEPOINT a").unwrap(),
            Statement::RollbackTo("a".into())
        );
        assert_eq!(
            parse_statement("RELEASE a").unwrap(),
            Statement::ReleaseSavepoint("a".into())
        );
    }

    #[test]
    fn begin_modes_parse_and_round_trip() {
        use sql_ast::{BeginMode, Statement};
        assert_eq!(
            parse_statement("BEGIN DEFERRED").unwrap(),
            Statement::Begin(BeginMode::Deferred)
        );
        assert_eq!(
            parse_statement("BEGIN IMMEDIATE").unwrap(),
            Statement::Begin(BeginMode::Immediate)
        );
        // Mode keywords compose with the noise words.
        assert_eq!(
            parse_statement("BEGIN IMMEDIATE TRANSACTION").unwrap(),
            Statement::Begin(BeginMode::Immediate)
        );
        assert_eq!(
            parse_statement("BEGIN DEFERRED WORK").unwrap(),
            Statement::Begin(BeginMode::Deferred)
        );
        for stmt in [
            Statement::Begin(BeginMode::Deferred),
            Statement::Begin(BeginMode::Immediate),
        ] {
            assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
        }
    }
}
