//! Parser error type.

use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing SQL text.
///
/// The message is deliberately close to what real DBMS drivers return for a
/// syntax error, because the SQLancer++ feedback loop only ever observes
/// "the statement failed" plus an error string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input at which the problem was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_offset_and_message() {
        let e = ParseError::new("unexpected token", 7);
        let s = e.to_string();
        assert!(s.contains('7'));
        assert!(s.contains("unexpected token"));
    }
}
