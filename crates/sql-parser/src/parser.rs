//! Recursive-descent SQL parser.
//!
//! The grammar covers everything the adaptive generator can emit (and the
//! SQL text in the paper's listings), rendered back into the `sql-ast`
//! types. Precedence follows the usual SQL rules; since the generator emits
//! fully parenthesised expressions, the parser's precedence mostly matters
//! for hand-written SQL in tests and examples.

use crate::error::ParseError;
use crate::lexer::{tokenize, SpannedToken, Token};
use sql_ast::{
    AggregateFunction, BinaryOp, CaseBranch, ColumnConstraint, ColumnDef, ColumnRef, CreateIndex,
    CreateTable, CreateView, DataType, Delete, DropKind, Expr, Insert, Join, JoinType, OrderByItem,
    ScalarFunction, Select, SelectItem, SetOperation, SetOperator, SortOrder, Statement,
    TableConstraint, TableFactor, TableWithJoins, UnaryOp, Update, Value,
};

/// A recursive-descent parser over a token stream.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    /// Creates a parser for the given SQL text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the text cannot be tokenized.
    pub fn new(sql: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|t| &t.token)
    }

    fn peek_keyword(&self) -> Option<String> {
        self.peek().and_then(Token::keyword)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    fn expect_token(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_identifier(&mut self, what: &str) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Parses exactly one statement; trailing semicolons are allowed.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input or trailing garbage.
    pub fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        let stmt = self.parse_statement_inner()?;
        while self.peek() == Some(&Token::Semicolon) {
            self.pos += 1;
        }
        if self.pos != self.tokens.len() {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(stmt)
    }

    /// Parses a semicolon-separated list of statements.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse_statements(&mut self) -> Result<Vec<Statement>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.peek() == Some(&Token::Semicolon) {
                self.pos += 1;
            }
            if self.pos == self.tokens.len() {
                break;
            }
            out.push(self.parse_statement_inner()?);
        }
        Ok(out)
    }

    fn parse_statement_inner(&mut self) -> Result<Statement, ParseError> {
        match self.peek_keyword().as_deref() {
            Some("CREATE") => self.parse_create(),
            Some("INSERT") => self.parse_insert(),
            Some("UPDATE") => self.parse_update(),
            Some("DELETE") => self.parse_delete(),
            Some("ANALYZE") => self.parse_analyze(),
            Some("SELECT") => Ok(Statement::Select(Box::new(self.parse_select()?))),
            Some("DROP") => self.parse_drop(),
            Some("REFRESH") => self.parse_refresh(),
            Some("BEGIN") => {
                self.pos += 1;
                // Optional `DEFERRED` / `IMMEDIATE` mode keyword, then the
                // optional `TRANSACTION` / `WORK` noise word.
                let mode = if self.consume_keyword("DEFERRED") {
                    sql_ast::BeginMode::Deferred
                } else if self.consume_keyword("IMMEDIATE") {
                    sql_ast::BeginMode::Immediate
                } else {
                    sql_ast::BeginMode::Plain
                };
                if !self.consume_keyword("TRANSACTION") {
                    self.consume_keyword("WORK");
                }
                Ok(Statement::Begin(mode))
            }
            Some("COMMIT") => {
                self.pos += 1;
                if !self.consume_keyword("TRANSACTION") {
                    self.consume_keyword("WORK");
                }
                Ok(Statement::Commit)
            }
            Some("ROLLBACK") => self.parse_rollback(),
            Some("SAVEPOINT") => {
                self.pos += 1;
                let name = self.expect_identifier("savepoint name")?;
                Ok(Statement::Savepoint(name))
            }
            Some("RELEASE") => {
                self.pos += 1;
                // Optional `SAVEPOINT` noise word before the name.
                self.consume_keyword("SAVEPOINT");
                let name = self.expect_identifier("savepoint name")?;
                Ok(Statement::ReleaseSavepoint(name))
            }
            other => Err(self.error(format!("expected a statement, found {other:?}"))),
        }
    }

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("CREATE")?;
        match self.peek_keyword().as_deref() {
            Some("TABLE") => self.parse_create_table(),
            Some("UNIQUE") | Some("INDEX") => self.parse_create_index(),
            Some("VIEW") => self.parse_create_view(),
            other => Err(self.error(format!(
                "expected TABLE, INDEX or VIEW after CREATE, found {other:?}"
            ))),
        }
    }

    fn parse_create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("TABLE")?;
        let if_not_exists = if self.consume_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_identifier("table name")?;
        self.expect_token(&Token::LParen, "'('")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            match self.peek_keyword().as_deref() {
                Some("PRIMARY") => {
                    self.pos += 1;
                    self.expect_keyword("KEY")?;
                    constraints.push(TableConstraint::PrimaryKey(self.parse_paren_name_list()?));
                }
                Some("UNIQUE") if self.peek_at(1) == Some(&Token::LParen) => {
                    self.pos += 1;
                    constraints.push(TableConstraint::Unique(self.parse_paren_name_list()?));
                }
                _ => columns.push(self.parse_column_def()?),
            }
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_token(&Token::RParen, "')'")?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            if_not_exists,
            columns,
            constraints,
        }))
    }

    fn parse_paren_name_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_token(&Token::LParen, "'('")?;
        let mut names = Vec::new();
        loop {
            names.push(self.expect_identifier("column name")?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_token(&Token::RParen, "')'")?;
        Ok(names)
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.expect_identifier("column name")?;
        let ty_word = self.expect_identifier("data type")?;
        let data_type = DataType::from_keyword(&ty_word)
            .ok_or_else(|| self.error(format!("unknown data type '{ty_word}'")))?;
        let mut constraints = Vec::new();
        loop {
            match self.peek_keyword().as_deref() {
                Some("PRIMARY") => {
                    self.pos += 1;
                    self.expect_keyword("KEY")?;
                    constraints.push(ColumnConstraint::PrimaryKey);
                }
                Some("NOT") => {
                    self.pos += 1;
                    self.expect_keyword("NULL")?;
                    constraints.push(ColumnConstraint::NotNull);
                }
                Some("UNIQUE") => {
                    self.pos += 1;
                    constraints.push(ColumnConstraint::Unique);
                }
                Some("DEFAULT") => {
                    self.pos += 1;
                    constraints.push(ColumnConstraint::Default(self.parse_expr()?));
                }
                _ => break,
            }
        }
        Ok(ColumnDef {
            name,
            data_type,
            constraints,
        })
    }

    fn parse_create_index(&mut self) -> Result<Statement, ParseError> {
        let unique = self.consume_keyword("UNIQUE");
        self.expect_keyword("INDEX")?;
        let name = self.expect_identifier("index name")?;
        self.expect_keyword("ON")?;
        let table = self.expect_identifier("table name")?;
        let columns = self.parse_paren_name_list()?;
        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            where_clause,
        }))
    }

    fn parse_create_view(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("VIEW")?;
        let name = self.expect_identifier("view name")?;
        let columns = if self.peek() == Some(&Token::LParen) {
            self.parse_paren_name_list()?
        } else {
            Vec::new()
        };
        self.expect_keyword("AS")?;
        let query = self.parse_select()?;
        Ok(Statement::CreateView(CreateView {
            name,
            columns,
            query: Box::new(query),
        }))
    }

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INSERT")?;
        let or_ignore = if self.consume_keyword("OR") {
            self.expect_keyword("IGNORE")?;
            true
        } else {
            false
        };
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier("table name")?;
        let columns = if self.peek() == Some(&Token::LParen) {
            self.parse_paren_name_list()?
        } else {
            Vec::new()
        };
        self.expect_keyword("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect_token(&Token::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect_token(&Token::RParen, "')'")?;
            values.push(row);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            values,
            or_ignore,
        }))
    }

    fn parse_update(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_identifier("table name")?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_identifier("column name")?;
            self.expect_token(&Token::Eq, "'='")?;
            assignments.push((col, self.parse_expr()?));
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_identifier("table name")?;
        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    fn parse_analyze(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("ANALYZE")?;
        let table = match self.peek() {
            Some(Token::Word(_)) => Some(self.expect_identifier("table name")?),
            _ => None,
        };
        Ok(Statement::Analyze(table))
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("DROP")?;
        let kind = match self.peek_keyword().as_deref() {
            Some("TABLE") => DropKind::Table,
            Some("VIEW") => DropKind::View,
            Some("INDEX") => DropKind::Index,
            other => {
                return Err(self.error(format!(
                    "expected TABLE, VIEW or INDEX after DROP, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        let if_exists = if self.consume_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_identifier("object name")?;
        Ok(Statement::Drop {
            kind,
            name,
            if_exists,
        })
    }

    fn parse_refresh(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("REFRESH")?;
        self.expect_keyword("TABLE")?;
        let table = self.expect_identifier("table name")?;
        Ok(Statement::Refresh(table))
    }

    fn parse_rollback(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("ROLLBACK")?;
        if !self.consume_keyword("TRANSACTION") {
            self.consume_keyword("WORK");
        }
        if self.consume_keyword("TO") {
            // Optional `SAVEPOINT` noise word before the name.
            self.consume_keyword("SAVEPOINT");
            let name = self.expect_identifier("savepoint name")?;
            return Ok(Statement::RollbackTo(name));
        }
        Ok(Statement::Rollback)
    }

    /// Parses a `SELECT` query (including compound queries).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut select = Select::new();
        select.distinct = self.consume_keyword("DISTINCT");
        loop {
            select.projections.push(self.parse_select_item()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.consume_keyword("FROM") {
            loop {
                select.from.push(self.parse_table_with_joins()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        if self.consume_keyword("WHERE") {
            select.where_clause = Some(self.parse_expr()?);
        }
        if self.consume_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                select.group_by.push(self.parse_expr()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        if self.consume_keyword("HAVING") {
            select.having = Some(self.parse_expr()?);
        }
        // Set operations bind before ORDER BY / LIMIT, which apply to the
        // whole compound query; the generator never mixes the two so we keep
        // the simple nesting where the tail query owns nothing.
        if let Some(op) = match self.peek_keyword().as_deref() {
            Some("UNION") => Some(SetOperator::Union),
            Some("INTERSECT") => Some(SetOperator::Intersect),
            Some("EXCEPT") => Some(SetOperator::Except),
            _ => None,
        } {
            self.pos += 1;
            let all = self.consume_keyword("ALL");
            let right = self.parse_select()?;
            select.set_op = Some(SetOperation {
                op,
                all,
                right: Box::new(right),
            });
        }
        if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let order = if self.consume_keyword("DESC") {
                    SortOrder::Desc
                } else {
                    self.consume_keyword("ASC");
                    SortOrder::Asc
                };
                select.order_by.push(OrderByItem { expr, order });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        if self.consume_keyword("LIMIT") {
            match self.advance() {
                Some(Token::Integer(n)) if n >= 0 => select.limit = Some(n as u64),
                other => return Err(self.error(format!("expected LIMIT count, found {other:?}"))),
            }
        }
        if self.consume_keyword("OFFSET") {
            match self.advance() {
                Some(Token::Integer(n)) if n >= 0 => select.offset = Some(n as u64),
                other => return Err(self.error(format!("expected OFFSET count, found {other:?}"))),
            }
        }
        Ok(select)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Some(Token::Word(w)), Some(Token::Dot), Some(Token::Star)) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let table = w.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(table));
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_keyword("AS") {
            Some(self.expect_identifier("alias")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_with_joins(&mut self) -> Result<TableWithJoins, ParseError> {
        let relation = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let join_type = match self.peek_keyword().as_deref() {
                Some("JOIN") => {
                    self.pos += 1;
                    JoinType::Inner
                }
                Some("INNER") => {
                    self.pos += 1;
                    self.expect_keyword("JOIN")?;
                    JoinType::Inner
                }
                Some("LEFT") => {
                    self.pos += 1;
                    self.consume_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinType::Left
                }
                Some("RIGHT") => {
                    self.pos += 1;
                    self.consume_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinType::Right
                }
                Some("FULL") => {
                    self.pos += 1;
                    self.consume_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinType::Full
                }
                Some("CROSS") => {
                    self.pos += 1;
                    self.expect_keyword("JOIN")?;
                    JoinType::Cross
                }
                Some("NATURAL") => {
                    self.pos += 1;
                    self.expect_keyword("JOIN")?;
                    JoinType::Natural
                }
                _ => break,
            };
            let relation = self.parse_table_factor()?;
            let on = if join_type.takes_constraint() && self.consume_keyword("ON") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join {
                join_type,
                relation,
                on,
            });
        }
        Ok(TableWithJoins { relation, joins })
    }

    fn parse_table_factor(&mut self) -> Result<TableFactor, ParseError> {
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let subquery = self.parse_select()?;
            self.expect_token(&Token::RParen, "')'")?;
            let alias = if self.consume_keyword("AS") {
                self.expect_identifier("alias")?
            } else {
                self.expect_identifier("derived-table alias")?
            };
            return Ok(TableFactor::Derived {
                subquery: Box::new(subquery),
                alias,
            });
        }
        let name = self.expect_identifier("table name")?;
        let alias = if self.consume_keyword("AS") {
            Some(self.expect_identifier("alias")?)
        } else {
            // A bare word that is not a clause keyword acts as an alias.
            match self.peek_keyword().as_deref() {
                Some(w)
                    if !is_clause_keyword(w)
                        && !matches!(
                            w,
                            "JOIN"
                                | "INNER"
                                | "LEFT"
                                | "RIGHT"
                                | "FULL"
                                | "CROSS"
                                | "NATURAL"
                                | "ON"
                        ) =>
                {
                    Some(self.expect_identifier("alias")?)
                }
                _ => None,
            }
        };
        Ok(TableFactor::Table { name, alias })
    }

    // ----- expressions ------------------------------------------------

    /// Parses a scalar expression.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.peek_keyword().as_deref() == Some("OR") {
            self.pos += 1;
            let right = self.parse_and()?;
            left = left.binary(BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.peek_keyword().as_deref() == Some("AND") {
            self.pos += 1;
            let right = self.parse_not()?;
            left = left.binary(BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.peek_keyword().as_deref() == Some("NOT")
            && self.peek_at(1).and_then(Token::keyword).as_deref() != Some("EXISTS")
        {
            self.pos += 1;
            let inner = self.parse_not()?;
            return Ok(inner.not());
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_bit_or()?;
        loop {
            // Postfix predicates: IS [NOT] ..., [NOT] BETWEEN/IN/LIKE.
            match self.peek_keyword().as_deref() {
                Some("IS") => {
                    self.pos += 1;
                    let negated = self.consume_keyword("NOT");
                    match self.peek_keyword().as_deref() {
                        Some("NULL") => {
                            self.pos += 1;
                            left = Expr::IsNull {
                                expr: Box::new(left),
                                negated,
                            };
                        }
                        Some("TRUE") => {
                            self.pos += 1;
                            left = Expr::IsBool {
                                expr: Box::new(left),
                                target: true,
                                negated,
                            };
                        }
                        Some("FALSE") => {
                            self.pos += 1;
                            left = Expr::IsBool {
                                expr: Box::new(left),
                                target: false,
                                negated,
                            };
                        }
                        Some("DISTINCT") => {
                            self.pos += 1;
                            self.expect_keyword("FROM")?;
                            let right = self.parse_bit_or()?;
                            let op = if negated {
                                BinaryOp::IsNotDistinctFrom
                            } else {
                                BinaryOp::IsDistinctFrom
                            };
                            left = left.binary(op, right);
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected NULL, TRUE, FALSE or DISTINCT after IS, found {other:?}"
                            )))
                        }
                    }
                    continue;
                }
                Some("NOT") => {
                    let next = self.peek_at(1).and_then(Token::keyword);
                    match next.as_deref() {
                        Some("BETWEEN") => {
                            self.pos += 2;
                            left = self.parse_between(left, true)?;
                            continue;
                        }
                        Some("IN") => {
                            self.pos += 2;
                            left = self.parse_in(left, true)?;
                            continue;
                        }
                        Some("LIKE") => {
                            self.pos += 2;
                            let pattern = self.parse_bit_or()?;
                            left = Expr::Like {
                                expr: Box::new(left),
                                pattern: Box::new(pattern),
                                negated: true,
                            };
                            continue;
                        }
                        _ => break,
                    }
                }
                Some("BETWEEN") => {
                    self.pos += 1;
                    left = self.parse_between(left, false)?;
                    continue;
                }
                Some("IN") => {
                    self.pos += 1;
                    left = self.parse_in(left, false)?;
                    continue;
                }
                Some("LIKE") => {
                    self.pos += 1;
                    let pattern = self.parse_bit_or()?;
                    left = Expr::Like {
                        expr: Box::new(left),
                        pattern: Box::new(pattern),
                        negated: false,
                    };
                    continue;
                }
                _ => {}
            }
            let op = match self.peek() {
                Some(Token::Eq) => BinaryOp::Eq,
                Some(Token::Neq) => BinaryOp::Neq,
                Some(Token::NeqLtGt) => BinaryOp::NeqLtGt,
                Some(Token::Lt) => BinaryOp::Lt,
                Some(Token::Le) => BinaryOp::Le,
                Some(Token::Gt) => BinaryOp::Gt,
                Some(Token::Ge) => BinaryOp::Ge,
                Some(Token::NullSafeEq) => BinaryOp::NullSafeEq,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_bit_or()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_between(&mut self, expr: Expr, negated: bool) -> Result<Expr, ParseError> {
        let low = self.parse_bit_or()?;
        self.expect_keyword("AND")?;
        let high = self.parse_bit_or()?;
        Ok(Expr::Between {
            expr: Box::new(expr),
            low: Box::new(low),
            high: Box::new(high),
            negated,
        })
    }

    fn parse_in(&mut self, expr: Expr, negated: bool) -> Result<Expr, ParseError> {
        self.expect_token(&Token::LParen, "'('")?;
        if self.peek_keyword().as_deref() == Some("SELECT") {
            let subquery = self.parse_select()?;
            self.expect_token(&Token::RParen, "')'")?;
            return Ok(Expr::InSubquery {
                expr: Box::new(expr),
                subquery: Box::new(subquery),
                negated,
            });
        }
        let mut list = Vec::new();
        loop {
            list.push(self.parse_expr()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_token(&Token::RParen, "')'")?;
        Ok(Expr::InList {
            expr: Box::new(expr),
            list,
            negated,
        })
    }

    fn parse_bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_bit_and()?;
        loop {
            let op = match self.peek() {
                Some(Token::Pipe) => BinaryOp::BitOr,
                Some(Token::Hash) => BinaryOp::BitXor,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_bit_and()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_shift()?;
        while self.peek() == Some(&Token::Amp) {
            self.pos += 1;
            let right = self.parse_shift()?;
            left = left.binary(BinaryOp::BitAnd, right);
        }
        Ok(left)
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_add_sub()?;
        loop {
            let op = match self.peek() {
                Some(Token::Shl) => BinaryOp::ShiftLeft,
                Some(Token::Shr) => BinaryOp::ShiftRight,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_add_sub()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_add_sub(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_mul_div()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_mul_div()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_mul_div(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_concat()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_concat()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_concat(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Token::DoublePipe) {
            self.pos += 1;
            let right = self.parse_unary()?;
            left = left.binary(BinaryOp::Concat, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Token::Minus) => Some(UnaryOp::Neg),
            Some(Token::Plus) => Some(UnaryOp::Plus),
            Some(Token::Tilde) => Some(UnaryOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let inner = self.parse_unary()?;
            // Fold a sign applied to a numeric literal into the literal so
            // that `-3` round-trips as the literal the AST rendering emits.
            if op == UnaryOp::Neg {
                match &inner {
                    Expr::Literal(Value::Integer(i)) => {
                        return Ok(Expr::Literal(Value::Integer(-i)))
                    }
                    Expr::Literal(Value::Real(r)) => return Ok(Expr::Literal(Value::Real(-r))),
                    _ => {}
                }
            }
            return Ok(Expr::Unary {
                op,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Integer(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Integer(v)))
            }
            Some(Token::Real(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Real(v)))
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek_keyword().as_deref() == Some("SELECT") {
                    let subquery = self.parse_select()?;
                    self.expect_token(&Token::RParen, "')'")?;
                    return Ok(Expr::ScalarSubquery(Box::new(subquery)));
                }
                let inner = self.parse_expr()?;
                self.expect_token(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Word(word)) => self.parse_word_primary(word),
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }

    fn parse_word_primary(&mut self, word: String) -> Result<Expr, ParseError> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => {
                self.pos += 1;
                return Ok(Expr::null());
            }
            "TRUE" => {
                self.pos += 1;
                return Ok(Expr::boolean(true));
            }
            "FALSE" => {
                self.pos += 1;
                return Ok(Expr::boolean(false));
            }
            "NOT" => {
                // `NOT EXISTS (...)` reaches the primary level.
                self.pos += 1;
                self.expect_keyword("EXISTS")?;
                self.expect_token(&Token::LParen, "'('")?;
                let subquery = self.parse_select()?;
                self.expect_token(&Token::RParen, "')'")?;
                return Ok(Expr::Exists {
                    subquery: Box::new(subquery),
                    negated: true,
                });
            }
            "EXISTS" => {
                self.pos += 1;
                self.expect_token(&Token::LParen, "'('")?;
                let subquery = self.parse_select()?;
                self.expect_token(&Token::RParen, "')'")?;
                return Ok(Expr::Exists {
                    subquery: Box::new(subquery),
                    negated: false,
                });
            }
            "CASE" => {
                self.pos += 1;
                return self.parse_case();
            }
            "CAST" => {
                self.pos += 1;
                self.expect_token(&Token::LParen, "'('")?;
                let inner = self.parse_expr()?;
                self.expect_keyword("AS")?;
                let ty_word = self.expect_identifier("data type")?;
                let data_type = DataType::from_keyword(&ty_word)
                    .ok_or_else(|| self.error(format!("unknown data type '{ty_word}'")))?;
                self.expect_token(&Token::RParen, "')'")?;
                return Ok(Expr::Cast {
                    expr: Box::new(inner),
                    data_type,
                });
            }
            _ => {}
        }
        // Function call?
        if self.peek_at(1) == Some(&Token::LParen) {
            self.pos += 2;
            if let Some(agg) = AggregateFunction::from_name(&upper) {
                let distinct = self.consume_keyword("DISTINCT");
                let arg = if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    None
                } else {
                    Some(Box::new(self.parse_expr()?))
                };
                self.expect_token(&Token::RParen, "')'")?;
                return Ok(Expr::Aggregate {
                    func: agg,
                    arg,
                    distinct,
                });
            }
            let func = ScalarFunction::from_name(&upper)
                .ok_or_else(|| self.error(format!("unknown function '{word}'")))?;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect_token(&Token::RParen, "')'")?;
            return Ok(Expr::Function { func, args });
        }
        // Column reference, possibly qualified.
        self.pos += 1;
        if self.peek() == Some(&Token::Dot) {
            if let Some(Token::Word(col)) = self.peek_at(1).cloned() {
                self.pos += 2;
                return Ok(Expr::Column(ColumnRef::qualified(word, col)));
            }
        }
        Ok(Expr::Column(ColumnRef::unqualified(word)))
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        let operand = if self.peek_keyword().as_deref() != Some("WHEN") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.consume_keyword("WHEN") {
            let when = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let then = self.parse_expr()?;
            branches.push(CaseBranch { when, then });
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.consume_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word,
        "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "OFFSET"
            | "UNION"
            | "INTERSECT"
            | "EXCEPT"
            | "AS"
            | "SELECT"
            | "FROM"
            | "ON"
            | "VALUES"
            | "SET"
    )
}

/// Parses a single SQL statement from text.
///
/// # Errors
///
/// Returns a [`ParseError`] if the text is not a single well-formed
/// statement.
///
/// # Examples
///
/// ```
/// let stmt = sql_parser::parse_statement("SELECT * FROM t0 WHERE c0 = 1").unwrap();
/// assert!(stmt.is_query());
/// ```
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    Parser::new(sql)?.parse_statement()
}

/// Parses a semicolon-separated script into statements.
///
/// # Errors
///
/// Returns a [`ParseError`] if any statement is malformed.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    Parser::new(sql)?.parse_statements()
}

/// Parses a scalar expression from text.
///
/// # Errors
///
/// Returns a [`ParseError`] if the text is not a well-formed expression.
pub fn parse_expression(sql: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(sql)?;
    let e = p.parse_expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::new("unexpected trailing input", p.offset()));
    }
    Ok(e)
}
