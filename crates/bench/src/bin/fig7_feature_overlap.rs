//! Figure 7 reproduction: overlap of scalar functions and operators between
//! the SQLancer++ generator universe and two dialects' supported sets
//! (SQLite-like and strictly-typed PostgreSQL-like).

use dbms_sim::preset_by_name;
use std::collections::BTreeSet;

fn filtered(set: &BTreeSet<String>, prefix: &str) -> BTreeSet<String> {
    set.iter()
        .filter(|f| f.starts_with(prefix))
        .cloned()
        .collect()
}

fn venn(label: &str, generator: &BTreeSet<String>, a: &BTreeSet<String>, b: &BTreeSet<String>) {
    let only_gen = generator
        .iter()
        .filter(|f| !a.contains(*f) && !b.contains(*f))
        .count();
    let gen_and_a = generator
        .iter()
        .filter(|f| a.contains(*f) && !b.contains(*f))
        .count();
    let gen_and_b = generator
        .iter()
        .filter(|f| !a.contains(*f) && b.contains(*f))
        .count();
    let all_three = generator
        .iter()
        .filter(|f| a.contains(*f) && b.contains(*f))
        .count();
    println!("## {label}");
    println!("| region | count |");
    println!("|---|---|");
    println!("| generator only | {only_gen} |");
    println!("| generator ∩ sqlite only | {gen_and_a} |");
    println!("| generator ∩ postgres-like only | {gen_and_b} |");
    println!("| shared by all three | {all_three} |");
    println!();
}

fn main() {
    let universe: BTreeSet<String> = sqlancer_core::feature_universe()
        .into_iter()
        .map(|f| f.name().to_string())
        .collect();
    let sqlite = preset_by_name("sqlite")
        .unwrap()
        .profile
        .supported_universe();
    let postgres_like = preset_by_name("umbra")
        .unwrap()
        .profile
        .supported_universe();

    println!(
        "# Figure 7 — feature overlap between the generator and dialect generators (reproduction)"
    );
    println!();
    venn(
        "Scalar functions",
        &filtered(&universe, "FN_"),
        &filtered(&sqlite, "FN_"),
        &filtered(&postgres_like, "FN_"),
    );
    venn(
        "Operators",
        &filtered(&universe, "OP_"),
        &filtered(&sqlite, "OP_"),
        &filtered(&postgres_like, "OP_"),
    );
    println!(
        "(Paper shape to check: the three sets overlap substantially but none subsumes \
         the others — the generator covers common features while each dialect also has \
         gaps the generator must learn to avoid.)"
    );
}
